//! Dataflow graphs: the programs of the machines that have no instruction
//! processor.
//!
//! "The data elements carry instructions which are then executed on the
//! arrival of the data at the inputs of the processing elements.  These
//! instructions may execute out of order, and totally depend on the
//! availability of the data."  A [`DataflowGraph`] is that program: a DAG
//! of operators fed by inputs and draining into outputs.

use crate::error::MachineError;
use crate::isa::Word;

/// Node identifier inside a graph.
pub type NodeId = usize;

/// Operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// External input number `k` (reads from data memory).
    Input(usize),
    /// A compile-time constant.
    Const(Word),
    /// Two-operand addition.
    Add,
    /// Two-operand subtraction (first minus second).
    Sub,
    /// Two-operand multiplication.
    Mul,
    /// Two-operand minimum.
    Min,
    /// Two-operand maximum.
    Max,
    /// External output number `k` (writes to data memory); passes its
    /// single operand through.
    Output(usize),
}

impl OpKind {
    /// Number of operands the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::Input(_) | OpKind::Const(_) => 0,
            OpKind::Output(_) => 1,
            _ => 2,
        }
    }

    /// Apply the operator to its operands.
    pub fn apply(&self, operands: &[Word]) -> Word {
        match *self {
            OpKind::Input(_) => operands.first().copied().unwrap_or(0),
            OpKind::Const(c) => c,
            OpKind::Add => operands[0].wrapping_add(operands[1]),
            OpKind::Sub => operands[0].wrapping_sub(operands[1]),
            OpKind::Mul => operands[0].wrapping_mul(operands[1]),
            OpKind::Min => operands[0].min(operands[1]),
            OpKind::Max => operands[0].max(operands[1]),
            OpKind::Output(_) => operands[0],
        }
    }

    /// Does firing this node count as an ALU operation?
    pub fn is_alu(&self) -> bool {
        matches!(
            self,
            OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Min | OpKind::Max
        )
    }
}

/// One node: operator plus its operand edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operator.
    pub op: OpKind,
    /// Producer nodes, in operand order.
    pub inputs: Vec<NodeId>,
}

/// A validated dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowGraph {
    nodes: Vec<Node>,
    input_count: usize,
    output_count: usize,
}

/// Incremental graph builder.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Start an empty graph.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// External input `k`.
    pub fn input(&mut self, k: usize) -> NodeId {
        self.push(OpKind::Input(k), vec![])
    }

    /// Constant node.
    pub fn constant(&mut self, value: Word) -> NodeId {
        self.push(OpKind::Const(value), vec![])
    }

    /// Binary operator node.
    pub fn op(&mut self, op: OpKind, a: NodeId, b: NodeId) -> NodeId {
        self.push(op, vec![a, b])
    }

    /// External output `k` fed by `src`.
    pub fn output(&mut self, k: usize, src: NodeId) -> NodeId {
        self.push(OpKind::Output(k), vec![src])
    }

    fn push(&mut self, op: OpKind, inputs: Vec<NodeId>) -> NodeId {
        self.nodes.push(Node { op, inputs });
        self.nodes.len() - 1
    }

    /// Validate and freeze the graph.
    pub fn build(self) -> Result<DataflowGraph, MachineError> {
        DataflowGraph::new(self.nodes)
    }
}

impl DataflowGraph {
    /// Validate a node list into a graph: operand ids must precede their
    /// consumers (which also guarantees acyclicity), arities must match,
    /// and input/output indices must be dense from 0.
    pub fn new(nodes: Vec<Node>) -> Result<DataflowGraph, MachineError> {
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for (id, node) in nodes.iter().enumerate() {
            if node.inputs.len() != node.op.arity() {
                return Err(MachineError::config(format!(
                    "node {id} ({:?}) expects {} operands, has {}",
                    node.op,
                    node.op.arity(),
                    node.inputs.len()
                )));
            }
            if let Some(&bad) = node.inputs.iter().find(|&&src| src >= id) {
                return Err(MachineError::config(format!(
                    "node {id} reads from node {bad}, which does not precede it \
                     (graphs must be in topological order)"
                )));
            }
            match node.op {
                OpKind::Input(k) => inputs.push(k),
                OpKind::Output(k) => outputs.push(k),
                _ => {}
            }
        }
        for (label, indices) in [("input", &mut inputs), ("output", &mut outputs)] {
            indices.sort_unstable();
            for (want, &got) in indices.iter().enumerate() {
                if want != got {
                    return Err(MachineError::config(format!(
                        "{label} indices must be dense from 0; missing {label} {want}"
                    )));
                }
            }
        }
        Ok(DataflowGraph {
            input_count: inputs.len(),
            output_count: outputs.len(),
            nodes,
        })
    }

    /// The nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of external inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of external outputs.
    pub fn output_count(&self) -> usize {
        self.output_count
    }

    /// Sequential reference evaluation (the ground truth the token engines
    /// are checked against).
    pub fn eval_reference(&self, inputs: &[Word]) -> Result<Vec<Word>, MachineError> {
        if inputs.len() != self.input_count {
            return Err(MachineError::config(format!(
                "graph expects {} inputs, got {}",
                self.input_count,
                inputs.len()
            )));
        }
        let mut values = vec![0; self.nodes.len()];
        let mut outputs = vec![0; self.output_count];
        for (id, node) in self.nodes.iter().enumerate() {
            let operands: Vec<Word> = node.inputs.iter().map(|&src| values[src]).collect();
            values[id] = match node.op {
                OpKind::Input(k) => inputs[k],
                other => other.apply(&operands),
            };
            if let OpKind::Output(k) = node.op {
                outputs[k] = values[id];
            }
        }
        Ok(outputs)
    }

    /// Consumers of each node (adjacency in the firing direction).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            for &src in &node.inputs {
                out[src].push(id);
            }
        }
        out
    }
}

/// A small library of ready-made graphs used by workloads and tests.
pub mod library {
    use super::*;

    /// `out[0] = (a + b) * (a - b)` over inputs `a, b`.
    pub fn poly2() -> DataflowGraph {
        let mut g = GraphBuilder::new();
        let a = g.input(0);
        let b = g.input(1);
        let sum = g.op(OpKind::Add, a, b);
        let diff = g.op(OpKind::Sub, a, b);
        let prod = g.op(OpKind::Mul, sum, diff);
        g.output(0, prod);
        g.build().expect("poly2 is well formed")
    }

    /// A `k`-tap FIR filter over `k` sample inputs and `k` constant taps:
    /// `out[0] = sum(tap[i] * x[i])`.
    pub fn fir(taps: &[Word]) -> DataflowGraph {
        let mut g = GraphBuilder::new();
        let mut acc: Option<NodeId> = None;
        for (i, &tap) in taps.iter().enumerate() {
            let x = g.input(i);
            let c = g.constant(tap);
            let prod = g.op(OpKind::Mul, x, c);
            acc = Some(match acc {
                None => prod,
                Some(a) => g.op(OpKind::Add, a, prod),
            });
        }
        let acc = acc.expect("fir needs at least one tap");
        g.output(0, acc);
        g.build().expect("fir is well formed")
    }

    /// Balanced-tree reduction summing `n` inputs into `out[0]`
    /// (`n` must be a power of two).
    pub fn tree_sum(n: usize) -> DataflowGraph {
        assert!(
            n.is_power_of_two() && n >= 2,
            "tree_sum needs a power of two >= 2"
        );
        let mut g = GraphBuilder::new();
        let mut layer: Vec<NodeId> = (0..n).map(|i| g.input(i)).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| g.op(OpKind::Add, pair[0], pair[1]))
                .collect();
        }
        g.output(0, layer[0]);
        g.build().expect("tree_sum is well formed")
    }

    /// `m` completely independent chains (`out[j] = x[j] * c_j + x[j]`),
    /// partitionable with no cross edges — runnable even on DMP-I.
    pub fn independent_chains(m: usize) -> DataflowGraph {
        let mut g = GraphBuilder::new();
        for j in 0..m {
            let x = g.input(j);
            let c = g.constant(j as Word + 2);
            let prod = g.op(OpKind::Mul, x, c);
            let sum = g.op(OpKind::Add, prod, x);
            g.output(j, sum);
        }
        g.build().expect("independent_chains is well formed")
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;

    #[test]
    fn poly2_reference_matches_algebra() {
        let g = poly2();
        assert_eq!(g.eval_reference(&[7, 3]).unwrap(), vec![(7 + 3) * (7 - 3)]);
        assert_eq!(g.input_count(), 2);
        assert_eq!(g.output_count(), 1);
    }

    #[test]
    fn fir_reference_is_a_dot_product() {
        let g = fir(&[1, -2, 3]);
        assert_eq!(g.eval_reference(&[10, 20, 30]).unwrap(), vec![10 - 40 + 90]);
    }

    #[test]
    fn tree_sum_reference() {
        let g = tree_sum(8);
        let inputs: Vec<Word> = (1..=8).collect();
        assert_eq!(g.eval_reference(&inputs).unwrap(), vec![36]);
    }

    #[test]
    fn independent_chains_have_per_chain_outputs() {
        let g = independent_chains(3);
        let out = g.eval_reference(&[1, 1, 1]).unwrap();
        assert_eq!(out, vec![3, 4, 5]); // x*(j+2) + x at x=1
    }

    #[test]
    fn arity_mismatch_rejected() {
        let nodes = vec![Node {
            op: OpKind::Add,
            inputs: vec![],
        }];
        assert!(DataflowGraph::new(nodes).is_err());
    }

    #[test]
    fn forward_references_rejected() {
        let nodes = vec![
            Node {
                op: OpKind::Input(0),
                inputs: vec![],
            },
            Node {
                op: OpKind::Add,
                inputs: vec![0, 2],
            }, // 2 does not precede
            Node {
                op: OpKind::Const(1),
                inputs: vec![],
            },
        ];
        assert!(DataflowGraph::new(nodes).is_err());
    }

    #[test]
    fn sparse_io_indices_rejected() {
        let mut g = GraphBuilder::new();
        let a = g.input(1); // missing input 0
        g.output(0, a);
        assert!(g.build().is_err());
    }

    #[test]
    fn wrong_input_arity_at_eval_rejected() {
        let g = poly2();
        assert!(g.eval_reference(&[1]).is_err());
    }

    #[test]
    fn consumers_invert_edges() {
        let g = poly2();
        let consumers = g.consumers();
        // Input a (node 0) feeds sum (2) and diff (3).
        assert_eq!(consumers[0], vec![2, 3]);
        // The product (4) feeds the output (5).
        assert_eq!(consumers[4], vec![5]);
    }
}

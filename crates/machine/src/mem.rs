//! Data memories: flat banks and the banked store with DP–DM topologies.
//!
//! The DP–DM relation of the taxonomy becomes concrete here: a *direct*
//! (`n-n`) relation gives each data processor a private bank it alone can
//! address; a *crossbar* (`nxn`) relation gives every processor access to
//! every bank through a global address space.  The paper's flexibility
//! difference between e.g. IAP-I and IAP-III is exactly this difference.

use crate::error::MachineError;
use crate::isa::Word;

/// How data processors reach data memory (the DP–DM switch kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataTopology {
    /// Direct: lane `i` owns bank `i`; addresses are bank-local.
    PrivateBanks,
    /// Crossbar: one global address space over all banks; any lane can
    /// reach any word.
    SharedCrossbar,
}

/// One memory bank.
#[derive(Debug, Clone)]
pub struct MemoryBank {
    words: Vec<Word>,
    reads: u64,
    writes: u64,
}

impl MemoryBank {
    /// A zeroed bank of `size` words.
    pub fn new(size: usize) -> MemoryBank {
        MemoryBank {
            words: vec![0; size],
            reads: 0,
            writes: 0,
        }
    }

    /// Bank size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Is the bank zero-sized?
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read a word.
    pub fn read(&mut self, addr: usize) -> Option<Word> {
        let v = self.words.get(addr).copied();
        if v.is_some() {
            self.reads += 1;
        }
        v
    }

    /// Write a word.
    pub fn write(&mut self, addr: usize, value: Word) -> bool {
        if let Some(slot) = self.words.get_mut(addr) {
            *slot = value;
            self.writes += 1;
            true
        } else {
            false
        }
    }

    /// (reads, writes) counters.
    pub fn traffic(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Raw contents (for loading workloads and checking results).
    pub fn contents(&self) -> &[Word] {
        &self.words
    }

    /// Overwrite a prefix of the bank.
    pub fn load(&mut self, data: &[Word]) {
        let n = data.len().min(self.words.len());
        self.words[..n].copy_from_slice(&data[..n]);
    }

    /// Zero every word and the traffic counters, keeping the capacity —
    /// a pooled machine scrubs tenant data without reallocating.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.reads = 0;
        self.writes = 0;
    }
}

/// A banked data memory shared by the lanes of a machine.
#[derive(Debug, Clone)]
pub struct BankedMemory {
    banks: Vec<MemoryBank>,
    bank_size: usize,
    topology: DataTopology,
    /// First global lane this (possibly shard-local) memory serves.
    lane_base: usize,
    /// Lane/bank count of the full machine this memory belongs to, so a
    /// shard split reports the same capacities and error values as the
    /// whole (see [`BankedMemory::split_lanes`]).
    logical_banks: usize,
}

impl BankedMemory {
    /// `banks` banks of `bank_size` words each under the given topology.
    pub fn new(banks: usize, bank_size: usize, topology: DataTopology) -> BankedMemory {
        BankedMemory {
            banks: (0..banks).map(|_| MemoryBank::new(bank_size)).collect(),
            bank_size,
            topology,
            lane_base: 0,
            logical_banks: banks,
        }
    }

    /// Carve the private banks of lanes `range` out into a shard-local
    /// memory (the banks are *moved*, leaving empty stand-ins behind).
    /// The split memory resolves the same global lane numbers and reports
    /// the same capacities and error values as the parent, so a shard
    /// worker observes bit-identical memory behaviour.  Only meaningful
    /// on [`DataTopology::PrivateBanks`]; restore with
    /// [`BankedMemory::absorb_lanes`].
    pub fn split_lanes(&mut self, range: std::ops::Range<usize>) -> BankedMemory {
        debug_assert_eq!(self.topology, DataTopology::PrivateBanks);
        debug_assert_eq!(self.lane_base, 0);
        let banks: Vec<MemoryBank> = self.banks[range.clone()]
            .iter_mut()
            .map(|b| std::mem::replace(b, MemoryBank::new(0)))
            .collect();
        BankedMemory {
            banks,
            bank_size: self.bank_size,
            topology: self.topology,
            lane_base: range.start,
            logical_banks: self.logical_banks,
        }
    }

    /// Return banks taken by [`BankedMemory::split_lanes`] to the parent.
    pub fn absorb_lanes(&mut self, child: BankedMemory) {
        for (i, bank) in child.banks.into_iter().enumerate() {
            self.banks[child.lane_base + i] = bank;
        }
    }

    /// The DP–DM topology.
    pub fn topology(&self) -> DataTopology {
        self.topology
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Words per bank.
    pub fn bank_size(&self) -> usize {
        self.bank_size
    }

    /// Total capacity in words (of the full machine, even on a shard
    /// split — so out-of-bounds errors quote identical sizes).
    pub fn capacity(&self) -> usize {
        self.logical_banks * self.bank_size
    }

    /// Resolve which bank + offset a `(lane, address)` pair touches, or an
    /// error if the topology forbids it.
    fn resolve(&self, lane: usize, address: Word) -> Result<(usize, usize), MachineError> {
        if address < 0 {
            return Err(MachineError::MemoryOutOfBounds {
                processor: lane,
                address,
                size: self.capacity(),
            });
        }
        let addr = address as usize;
        match self.topology {
            DataTopology::PrivateBanks => {
                if lane < self.lane_base || lane - self.lane_base >= self.banks.len() {
                    return Err(MachineError::BankAccessDenied {
                        processor: lane,
                        bank: lane,
                        reason: format!("machine has only {} banks", self.logical_banks),
                    });
                }
                if addr >= self.bank_size {
                    return Err(MachineError::MemoryOutOfBounds {
                        processor: lane,
                        address,
                        size: self.bank_size,
                    });
                }
                Ok((lane - self.lane_base, addr))
            }
            DataTopology::SharedCrossbar => {
                let bank = addr / self.bank_size;
                if bank >= self.banks.len() {
                    return Err(MachineError::MemoryOutOfBounds {
                        processor: lane,
                        address,
                        size: self.capacity(),
                    });
                }
                Ok((bank, addr % self.bank_size))
            }
        }
    }

    /// Load a word as seen by `lane`.
    pub fn read(&mut self, lane: usize, address: Word) -> Result<Word, MachineError> {
        let (bank, offset) = self.resolve(lane, address)?;
        self.banks[bank]
            .read(offset)
            .ok_or(MachineError::MemoryOutOfBounds {
                processor: lane,
                address,
                size: self.bank_size,
            })
    }

    /// Store a word as seen by `lane`.
    pub fn write(&mut self, lane: usize, address: Word, value: Word) -> Result<(), MachineError> {
        let (bank, offset) = self.resolve(lane, address)?;
        if self.banks[bank].write(offset, value) {
            Ok(())
        } else {
            Err(MachineError::MemoryOutOfBounds {
                processor: lane,
                address,
                size: self.bank_size,
            })
        }
    }

    /// Zero every bank in place (words and traffic counters), keeping
    /// all capacity — the pooled-machine scrub between tenants.
    pub fn clear(&mut self) {
        self.banks.iter_mut().for_each(MemoryBank::clear);
    }

    /// Direct bank access for workload setup and result checking.
    pub fn bank_mut(&mut self, bank: usize) -> &mut MemoryBank {
        &mut self.banks[bank]
    }

    /// Immutable bank access.
    pub fn bank(&self, bank: usize) -> &MemoryBank {
        &self.banks[bank]
    }

    /// Total (reads, writes) across banks.
    pub fn traffic(&self) -> (u64, u64) {
        self.banks.iter().fold((0, 0), |(r, w), b| {
            let (br, bw) = b.traffic();
            (r + br, w + bw)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_read_write_round_trip() {
        let mut b = MemoryBank::new(8);
        assert!(b.write(3, 42));
        assert_eq!(b.read(3), Some(42));
        assert_eq!(b.read(8), None);
        assert!(!b.write(8, 1));
        assert_eq!(b.traffic(), (1, 1));
    }

    #[test]
    fn private_banks_isolate_lanes() {
        let mut m = BankedMemory::new(4, 16, DataTopology::PrivateBanks);
        m.write(0, 5, 100).unwrap();
        m.write(1, 5, 200).unwrap();
        assert_eq!(m.read(0, 5).unwrap(), 100);
        assert_eq!(m.read(1, 5).unwrap(), 200);
        // Lane 0 cannot see beyond its bank.
        assert!(matches!(
            m.read(0, 20),
            Err(MachineError::MemoryOutOfBounds { .. })
        ));
    }

    #[test]
    fn shared_crossbar_exposes_global_address_space() {
        let mut m = BankedMemory::new(4, 16, DataTopology::SharedCrossbar);
        // Lane 3 writes into bank 0; lane 0 reads it back.
        m.write(3, 5, 7).unwrap();
        assert_eq!(m.read(0, 5).unwrap(), 7);
        // Global address 17 lands in bank 1, offset 1.
        m.write(0, 17, 9).unwrap();
        assert_eq!(m.bank(1).contents()[1], 9);
        assert!(m.read(0, 64).is_err());
    }

    #[test]
    fn negative_addresses_rejected() {
        let mut m = BankedMemory::new(2, 8, DataTopology::SharedCrossbar);
        assert!(m.read(0, -1).is_err());
        assert!(m.write(0, -5, 1).is_err());
    }

    #[test]
    fn out_of_range_lane_denied_on_private_topology() {
        let mut m = BankedMemory::new(2, 8, DataTopology::PrivateBanks);
        assert!(matches!(
            m.read(5, 0),
            Err(MachineError::BankAccessDenied { processor: 5, .. })
        ));
    }

    #[test]
    fn traffic_aggregates_across_banks() {
        let mut m = BankedMemory::new(2, 8, DataTopology::PrivateBanks);
        m.write(0, 0, 1).unwrap();
        m.write(1, 0, 2).unwrap();
        m.read(0, 0).unwrap();
        assert_eq!(m.traffic(), (1, 2));
    }

    #[test]
    fn load_helper_fills_prefix() {
        let mut b = MemoryBank::new(4);
        b.load(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(b.contents(), &[1, 2, 3, 4]);
    }
}

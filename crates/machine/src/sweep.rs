//! Parallel parameter sweeps over machine configurations.
//!
//! The benchmark harness evaluates many `(machine, size)` points; each
//! point is an independent simulation, so the sweep fans out over OS
//! threads with `std::thread::scope`.  Results come back in input order
//! regardless of completion order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over `items` in parallel (scoped threads, one lock-free work
/// queue, results in input order).  Falls back to sequential execution
/// for tiny inputs.
///
/// The worker count honours the `SKILLTAX_THREADS` environment override
/// (via [`crate::shard::configured_threads`]; `0`/unset =
/// `available_parallelism`).  Workers claim contiguous chunks of indices
/// with one `fetch_add` per chunk (chunk size `n / (threads * 8)`, min 1
/// — small enough to keep the tail balanced, large enough that the
/// shared counter is off the hot path) and buffer their results
/// thread-locally, so no shared lock is held around either `f` or the
/// result writes.  If any worker panics, the first panic payload is
/// re-raised verbatim on the caller's thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, f, crate::shard::configured_threads())
}

/// [`parallel_map`] with an explicit worker count (the testable core:
/// edge-case tests pin `threads` instead of racing on the process
/// environment).
pub(crate) fn parallel_map_with<T, R, F>(items: Vec<T>, f: F, threads: usize) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_ref(&items, f, threads)
}

/// The borrow-based core of [`parallel_map`]: callers that still need
/// their items afterwards ([`sweep`] pairs params with results) map over
/// a slice instead of cloning the whole parameter vector.
pub(crate) fn parallel_map_ref<T, R, F>(items: &[T], f: F, threads: usize) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = threads.min(n);
    let chunk = (n / (threads * 8)).max(1);
    let next = AtomicUsize::new(0);
    let items = &items;
    let f = &f;
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (index, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((index, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        let mut chunks = Vec::with_capacity(threads);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(chunk) => chunks.push(chunk),
                Err(payload) => {
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        chunks
    });
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (index, value) in chunks.into_iter().flatten() {
        results[index] = Some(value);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// A labelled sweep: run `f` over `params`, pairing each result with its
/// parameter.  Results come back in input order and worker panics
/// propagate verbatim, exactly as in [`parallel_map`] — the pairing is a
/// zip over the *original* parameter vector (no clone), so the
/// `(param, result)` association is positional and deterministic even
/// when many more params than worker threads race on the chunk queue.
pub fn sweep<T, R, F>(params: Vec<T>, f: F) -> Vec<(T, R)>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    sweep_with(params, f, crate::shard::configured_threads())
}

/// [`sweep`] with an explicit worker count (the testable core: the
/// deterministic-ordering and panic-propagation regression tests pin
/// `threads` instead of racing on the process environment).
pub(crate) fn sweep_with<T, R, F>(params: Vec<T>, f: F, threads: usize) -> Vec<(T, R)>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let results = parallel_map_ref(&params, f, threads);
    params.into_iter().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayMachine, ArraySubtype};
    use crate::workload::{run_vector_add_array, vector_add_reference};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map((0..257).collect::<Vec<i32>>(), |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = parallel_map(Vec::<u8>::new(), |&x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panics_propagate_verbatim() {
        // Regression: the old Mutex<&mut Vec<_>> version poisoned the slot
        // lock on panic and surfaced "sweep slots poisoned" instead of the
        // worker's own message.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map((0..64).collect::<Vec<i32>>(), |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .unwrap_err();
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .expect("panic payload is a string");
        assert_eq!(message, "boom at 13");
    }

    #[test]
    fn fewer_items_than_threads_still_covers_everything() {
        // n < threads: the thread count clamps to n and no worker spins
        // on an empty queue.
        let count = AtomicUsize::new(0);
        let out = parallel_map_with(
            (0..3).collect::<Vec<u64>>(),
            |&x| {
                count.fetch_add(1, Ordering::Relaxed);
                x + 100
            },
            16,
        );
        assert_eq!(out, vec![100, 101, 102]);
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn chunk_size_one_tail_stays_balanced() {
        // 9 items over 8 threads: chunk = max(9 / 64, 1) = 1, so the tail
        // item is claimed individually and exactly once.
        let count = AtomicUsize::new(0);
        let out = parallel_map_with(
            (0..9).collect::<Vec<usize>>(),
            |&x| {
                count.fetch_add(1, Ordering::Relaxed);
                x * 2
            },
            8,
        );
        assert_eq!(out, (0..9).map(|x| x * 2).collect::<Vec<usize>>());
        assert_eq!(count.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn panic_payload_survives_a_forced_two_thread_run() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map_with(
                (0..32).collect::<Vec<i32>>(),
                |&x| {
                    if x == 7 {
                        panic!("two-thread boom at {x}");
                    }
                    x
                },
                2,
            )
        }))
        .unwrap_err();
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a string");
        assert_eq!(message, "two-thread boom at 7");
    }

    #[test]
    fn input_order_preserved_under_forced_two_threads() {
        // The order contract the SKILLTAX_THREADS=2 CI leg relies on:
        // results land by input index no matter which worker ran them.
        let items: Vec<u64> = (0..101).rev().collect();
        let out = parallel_map_with(items.clone(), |&x| x * 3, 2);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn sweep_pairs_params_with_results() {
        let out = sweep(vec![1u32, 2, 3], |&x| x * 10);
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn sweep_ordering_deterministic_with_more_params_than_threads() {
        // Regression (ISSUE 9): many more params than workers, forced
        // onto 2 threads so chunks genuinely interleave.  Every result
        // must stay zipped to its own parameter, in input order.
        let params: Vec<u64> = (0..101).rev().collect();
        let out = sweep_with(params.clone(), |&x| x * x + 1, 2);
        assert_eq!(out.len(), params.len());
        for (expected, (param, result)) in params.into_iter().zip(out) {
            assert_eq!(param, expected);
            assert_eq!(result, param * param + 1);
        }
    }

    #[test]
    fn sweep_propagates_worker_panics_verbatim() {
        // Regression (ISSUE 9): a panic inside the sweep closure must
        // surface with its original payload, not a join/zip artifact.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sweep_with(
                (0..64).collect::<Vec<i32>>(),
                |&x| {
                    if x == 21 {
                        panic!("sweep boom at {x}");
                    }
                    x
                },
                2,
            )
        }))
        .unwrap_err();
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a string");
        assert_eq!(message, "sweep boom at 21");
    }

    #[test]
    fn sweep_accepts_non_clone_params() {
        // The zip-over-the-original rewrite dropped the `Clone` bound:
        // params move in, results pair positionally.
        struct Opaque(u32);
        let out = sweep(vec![Opaque(5), Opaque(9)], |p| p.0 * 2);
        assert_eq!(
            out.iter().map(|(p, r)| (p.0, *r)).collect::<Vec<_>>(),
            vec![(5, 10), (9, 18)]
        );
    }

    #[test]
    fn machine_simulations_parallelise() {
        // A realistic use: sweep array sizes in parallel and check every
        // simulation against the reference.
        let sizes: Vec<usize> = vec![2, 4, 8, 16, 32];
        let results = sweep(sizes, |&n| {
            let a: Vec<i64> = (0..n as i64).collect();
            let b: Vec<i64> = (0..n as i64).rev().collect();
            let got = run_vector_add_array(ArraySubtype::I, &a, &b).unwrap();
            (
                got.outputs == vector_add_reference(&a, &b),
                got.stats.cycles,
            )
        });
        for (n, (ok, cycles)) in results {
            assert!(ok, "size {n}");
            assert!(cycles > 0);
        }
        // Sanity: machines are constructible inside worker threads.
        let machines = parallel_map(vec![2usize, 3, 4], |&n| {
            ArrayMachine::new(ArraySubtype::II, n, 4).lane_count()
        });
        assert_eq!(machines, vec![2, 3, 4]);
    }
}

//! Typed errors for the executable machines.

use std::fmt;

/// Errors raised while assembling programs or running machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A program referenced an undefined label.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// An instruction used a register outside the register file.
    BadRegister {
        /// Instruction index.
        at: usize,
        /// Rendered instruction.
        instr: String,
    },
    /// A branch target points outside the program.
    BadBranchTarget {
        /// Instruction index.
        at: usize,
        /// The out-of-range target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// Data-memory access out of bounds.
    MemoryOutOfBounds {
        /// Processor index.
        processor: usize,
        /// The offending address.
        address: i64,
        /// Memory size in words.
        size: usize,
    },
    /// A memory bank access was denied by the DP–DM topology (e.g. a lane
    /// with a private bank touching another bank).
    BankAccessDenied {
        /// Processor index.
        processor: usize,
        /// Bank it tried to reach.
        bank: usize,
        /// Why the access is not routable.
        reason: String,
    },
    /// A DP–DP transfer was denied by the interconnect (no switch, or the
    /// destination is outside the window).
    RouteDenied {
        /// Source processor.
        from: usize,
        /// Destination processor.
        to: usize,
        /// Why.
        reason: String,
    },
    /// The machine cannot run this workload at all (the taxonomy-level
    /// inflexibility the paper discusses, surfaced as a typed error).
    WorkloadUnsupported {
        /// Machine description.
        machine: String,
        /// Why the workload does not fit.
        reason: String,
    },
    /// The machine exceeded its cycle budget (livelock/deadlock guard).
    CycleLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A `Recv` deadlocked (all runnable processors are blocked).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// Configuration error in a fabric (bad port, bad truth table, ...).
    BadConfiguration {
        /// Description.
        reason: String,
    },
}

impl MachineError {
    /// Convenience constructor for workload-unsupported errors.
    pub fn unsupported(machine: impl Into<String>, reason: impl Into<String>) -> Self {
        MachineError::WorkloadUnsupported { machine: machine.into(), reason: reason.into() }
    }

    /// Convenience constructor for configuration errors.
    pub fn config(reason: impl Into<String>) -> Self {
        MachineError::BadConfiguration { reason: reason.into() }
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UndefinedLabel { label } => write!(f, "undefined label {label:?}"),
            MachineError::DuplicateLabel { label } => write!(f, "duplicate label {label:?}"),
            MachineError::BadRegister { at, instr } => {
                write!(f, "instruction {at} uses an out-of-range register: {instr}")
            }
            MachineError::BadBranchTarget { at, target, len } => {
                write!(f, "instruction {at} branches to {target} but the program has {len} instructions")
            }
            MachineError::MemoryOutOfBounds { processor, address, size } => {
                write!(f, "processor {processor}: address {address} outside memory of {size} words")
            }
            MachineError::BankAccessDenied { processor, bank, reason } => {
                write!(f, "processor {processor}: cannot reach bank {bank}: {reason}")
            }
            MachineError::RouteDenied { from, to, reason } => {
                write!(f, "no route from processor {from} to {to}: {reason}")
            }
            MachineError::WorkloadUnsupported { machine, reason } => {
                write!(f, "{machine} cannot run this workload: {reason}")
            }
            MachineError::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit of {limit} exceeded (livelock?)")
            }
            MachineError::Deadlock { cycle } => {
                write!(f, "deadlock detected at cycle {cycle}: every processor blocked on recv")
            }
            MachineError::BadConfiguration { reason } => {
                write!(f, "bad configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

//! Typed errors for the executable machines.

use std::fmt;

use crate::exec::Stats;

/// Errors raised while assembling programs or running machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A program referenced an undefined label.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// An instruction used a register outside the register file.
    BadRegister {
        /// Instruction index.
        at: usize,
        /// Rendered instruction.
        instr: String,
    },
    /// A branch target points outside the program.
    BadBranchTarget {
        /// Instruction index.
        at: usize,
        /// The out-of-range target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// Data-memory access out of bounds.
    MemoryOutOfBounds {
        /// Processor index.
        processor: usize,
        /// The offending address.
        address: i64,
        /// Memory size in words.
        size: usize,
    },
    /// A memory bank access was denied by the DP–DM topology (e.g. a lane
    /// with a private bank touching another bank).
    BankAccessDenied {
        /// Processor index.
        processor: usize,
        /// Bank it tried to reach.
        bank: usize,
        /// Why the access is not routable.
        reason: String,
    },
    /// A DP–DP transfer was denied by the interconnect (no switch, or the
    /// destination is outside the window).
    RouteDenied {
        /// Source processor.
        from: usize,
        /// Destination processor.
        to: usize,
        /// Why.
        reason: String,
    },
    /// The machine cannot run this workload at all (the taxonomy-level
    /// inflexibility the paper discusses, surfaced as a typed error).
    WorkloadUnsupported {
        /// Machine description.
        machine: String,
        /// Why the workload does not fit.
        reason: String,
    },
    /// The machine exceeded its cycle budget (livelock/deadlock guard).
    CycleLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A `Recv` deadlocked (all runnable processors are blocked).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// Configuration error in a fabric (bad port, bad truth table, ...).
    BadConfiguration {
        /// Description.
        reason: String,
    },
    /// An injected fault has taken a link down (transiently or permanently).
    LinkDown {
        /// Source endpoint.
        from: usize,
        /// Destination endpoint.
        to: usize,
        /// Cycle at which the failed send was attempted.
        cycle: u64,
    },
    /// Bounded retry with exponential backoff gave up on a route.
    RetryExhausted {
        /// Source endpoint.
        from: usize,
        /// Destination endpoint.
        to: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The run-loop watchdog fired: the machine exceeded its cycle budget
    /// without completing, but the partial statistics survive.
    WatchdogTimeout {
        /// The budget that was exhausted.
        limit: u64,
        /// Statistics collected up to the timeout.
        partial: Stats,
    },
    /// The run was cancelled — by a deadline cycle or an asynchronous
    /// cancellation flag — before it completed; the partial statistics
    /// survive, exactly as they do for a watchdog timeout.
    Cancelled {
        /// Cycle at which the cancellation took effect.
        at_cycle: u64,
        /// Statistics collected up to the cancellation.
        partial: Stats,
    },
    /// A fault demanded remapping that this machine's switch kinds cannot
    /// express (the direct-switched `-` classes of the taxonomy).
    DegradationImpossible {
        /// Machine description.
        machine: String,
        /// Which structural constraint blocks the remap.
        reason: String,
    },
}

impl MachineError {
    /// Convenience constructor for workload-unsupported errors.
    pub fn unsupported(machine: impl Into<String>, reason: impl Into<String>) -> Self {
        MachineError::WorkloadUnsupported {
            machine: machine.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for configuration errors.
    pub fn config(reason: impl Into<String>) -> Self {
        MachineError::BadConfiguration {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UndefinedLabel { label } => write!(f, "undefined label {label:?}"),
            MachineError::DuplicateLabel { label } => write!(f, "duplicate label {label:?}"),
            MachineError::BadRegister { at, instr } => {
                write!(f, "instruction {at} uses an out-of-range register: {instr}")
            }
            MachineError::BadBranchTarget { at, target, len } => {
                write!(
                    f,
                    "instruction {at} branches to {target} but the program has {len} instructions"
                )
            }
            MachineError::MemoryOutOfBounds {
                processor,
                address,
                size,
            } => {
                write!(
                    f,
                    "processor {processor}: address {address} outside memory of {size} words"
                )
            }
            MachineError::BankAccessDenied {
                processor,
                bank,
                reason,
            } => {
                write!(
                    f,
                    "processor {processor}: cannot reach bank {bank}: {reason}"
                )
            }
            MachineError::RouteDenied { from, to, reason } => {
                write!(f, "no route from processor {from} to {to}: {reason}")
            }
            MachineError::WorkloadUnsupported { machine, reason } => {
                write!(f, "{machine} cannot run this workload: {reason}")
            }
            MachineError::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit of {limit} exceeded (livelock?)")
            }
            MachineError::Deadlock { cycle } => {
                write!(
                    f,
                    "deadlock detected at cycle {cycle}: every processor blocked on recv"
                )
            }
            MachineError::BadConfiguration { reason } => {
                write!(f, "bad configuration: {reason}")
            }
            MachineError::LinkDown { from, to, cycle } => {
                write!(f, "link {from} -> {to} down at cycle {cycle}")
            }
            MachineError::RetryExhausted { from, to, attempts } => {
                write!(
                    f,
                    "route {from} -> {to} still failing after {attempts} attempts"
                )
            }
            MachineError::WatchdogTimeout { limit, partial } => {
                write!(
                    f,
                    "watchdog fired after {limit} cycles (partial: {partial})"
                )
            }
            MachineError::Cancelled { at_cycle, partial } => {
                write!(f, "cancelled at cycle {at_cycle} (partial: {partial})")
            }
            MachineError::DegradationImpossible { machine, reason } => {
                write!(f, "{machine} cannot degrade around the fault: {reason}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every variant, paired with a fragment its rendered
    /// message must contain.
    fn all_variants() -> Vec<(MachineError, &'static str)> {
        vec![
            (
                MachineError::UndefinedLabel {
                    label: "loop".into(),
                },
                "undefined label",
            ),
            (
                MachineError::DuplicateLabel {
                    label: "loop".into(),
                },
                "duplicate label",
            ),
            (
                MachineError::BadRegister {
                    at: 3,
                    instr: "add r99, r0, r1".into(),
                },
                "out-of-range register",
            ),
            (
                MachineError::BadBranchTarget {
                    at: 2,
                    target: 9,
                    len: 4,
                },
                "branches to 9",
            ),
            (
                MachineError::MemoryOutOfBounds {
                    processor: 1,
                    address: -5,
                    size: 16,
                },
                "address -5 outside memory of 16 words",
            ),
            (
                MachineError::BankAccessDenied {
                    processor: 0,
                    bank: 2,
                    reason: "private banks".into(),
                },
                "cannot reach bank 2",
            ),
            (
                MachineError::RouteDenied {
                    from: 0,
                    to: 3,
                    reason: "no DP-DP switch".into(),
                },
                "no route from processor 0 to 3",
            ),
            (
                MachineError::unsupported("IUP-I", "needs more DPs"),
                "IUP-I cannot run this workload",
            ),
            (
                MachineError::CycleLimitExceeded { limit: 64 },
                "cycle limit of 64",
            ),
            (
                MachineError::Deadlock { cycle: 7 },
                "deadlock detected at cycle 7",
            ),
            (MachineError::config("LUT arity 0"), "bad configuration"),
            (
                MachineError::LinkDown {
                    from: 1,
                    to: 2,
                    cycle: 5,
                },
                "link 1 -> 2 down at cycle 5",
            ),
            (
                MachineError::RetryExhausted {
                    from: 1,
                    to: 2,
                    attempts: 4,
                },
                "route 1 -> 2 still failing after 4 attempts",
            ),
            (
                MachineError::WatchdogTimeout {
                    limit: 100,
                    partial: Stats::default(),
                },
                "watchdog fired after 100 cycles",
            ),
            (
                MachineError::Cancelled {
                    at_cycle: 12,
                    partial: Stats::default(),
                },
                "cancelled at cycle 12",
            ),
            (
                MachineError::DegradationImpossible {
                    machine: "IAP-I".into(),
                    reason: "direct DP-DM switch".into(),
                },
                "IAP-I cannot degrade around the fault",
            ),
        ]
    }

    #[test]
    fn every_variant_displays_its_key_facts() {
        for (err, fragment) in all_variants() {
            let text = err.to_string();
            assert!(text.contains(fragment), "{err:?} rendered as {text:?}");
        }
    }

    #[test]
    fn display_messages_are_distinct_per_variant() {
        let rendered: Vec<String> = all_variants()
            .into_iter()
            .map(|(e, _)| e.to_string())
            .collect();
        for (i, a) in rendered.iter().enumerate() {
            for b in rendered.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn watchdog_timeout_carries_its_partial_stats_in_the_message() {
        let partial = Stats {
            cycles: 100,
            stalls: 42,
            ..Stats::default()
        };
        let err = MachineError::WatchdogTimeout {
            limit: 100,
            partial,
        };
        let text = err.to_string();
        assert!(text.contains("partial:"), "message: {text}");
        assert!(text.contains("stalls=42"), "message: {text}");
    }

    #[test]
    fn variants_work_through_the_error_trait() {
        let err: Box<dyn std::error::Error> = Box::new(MachineError::LinkDown {
            from: 0,
            to: 1,
            cycle: 3,
        });
        assert_eq!(err.to_string(), "link 0 -> 1 down at cycle 3");
    }

    #[test]
    fn convenience_constructors_build_the_right_variants() {
        assert!(matches!(
            MachineError::unsupported("m", "r"),
            MachineError::WorkloadUnsupported { .. }
        ));
        assert!(matches!(
            MachineError::config("r"),
            MachineError::BadConfiguration { .. }
        ));
    }
}

//! Deterministic, seeded fault injection and the resilience report.
//!
//! The paper's flexibility argument (Section III) says flexible classes can
//! route *around* structural constraints that rigid classes cannot.  This
//! module makes that claim falsifiable: a [`FaultPlan`] schedules link
//! failures, dropped/corrupted messages, DP stalls, permanent DP failures
//! and transient memory bit-flips by cycle and component, and the machine
//! families react according to their switch kinds — crossbar (`x`) classes
//! degrade gracefully, direct (`-`) classes fail with a typed
//! [`MachineError::DegradationImpossible`].
//!
//! Everything is driven by the in-repo xorshift PRNG
//! ([`skilltax_model::rng::XorShift64`]); no external randomness, so every
//! storm is reproducible from its seed.

use std::collections::BTreeSet;

use skilltax_model::rng::XorShift64;

use crate::error::MachineError;
use crate::exec::Stats;
use crate::isa::Word;

/// Default bound on send retries after repeated link failures.
pub const DEFAULT_MAX_RETRIES: u32 = 8;

/// Default packet time-to-live in the NoC (cycles in flight before the
/// drain declares the packet lost).
pub const DEFAULT_PACKET_TTL: u64 = 1_024;

/// A scheduled window during which one directed link is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Source endpoint.
    pub from: usize,
    /// Destination endpoint.
    pub to: usize,
    /// First cycle of the outage (inclusive).
    pub from_cycle: u64,
    /// Last cycle of the outage (inclusive); `u64::MAX` = permanent.
    pub until_cycle: u64,
}

/// A deterministic fault schedule: permanent DP failures, link outage
/// windows, and seeded per-cycle probabilistic faults (drops, corruption,
/// stalls, bit-flips).
///
/// Cloning a plan clones the PRNG state, so two components holding clones
/// roll decorrelated-but-reproducible streams (each query sequence is
/// deterministic for a given seed).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: XorShift64,
    /// The construction seed, kept verbatim: per-cycle stall decisions
    /// hash it with `(cycle, dp)` so they are order-independent — every
    /// fork and clone of a plan agrees on the stall schedule no matter
    /// which scheduler (dense, event, sharded) asks, or in what order.
    stall_seed: u64,
    failed_dps: BTreeSet<usize>,
    outages: Vec<LinkOutage>,
    drop_rate: f64,
    corrupt_rate: f64,
    stall_rate: f64,
    bit_flip_rate: f64,
    max_retries: u32,
    injected: u64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: XorShift64::new(seed),
            stall_seed: seed,
            failed_dps: BTreeSet::new(),
            outages: Vec::new(),
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            bit_flip_rate: 0.0,
            max_retries: DEFAULT_MAX_RETRIES,
            injected: 0,
        }
    }

    /// Permanently fail data processor `dp`.
    pub fn fail_dp(mut self, dp: usize) -> FaultPlan {
        self.failed_dps.insert(dp);
        self
    }

    /// Schedule a directed link outage.
    pub fn fail_link(mut self, outage: LinkOutage) -> FaultPlan {
        self.outages.push(outage);
        self
    }

    /// Drop each in-flight message with probability `rate`.
    pub fn drop_messages(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Corrupt each delivered message payload with probability `rate`.
    pub fn corrupt_messages(mut self, rate: f64) -> FaultPlan {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Stall each DP on each cycle with probability `rate`.
    pub fn stall_dps(mut self, rate: f64) -> FaultPlan {
        self.stall_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Flip one memory bit per cycle with probability `rate`.
    pub fn flip_memory_bits(mut self, rate: f64) -> FaultPlan {
        self.bit_flip_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Override the retry bound used by hardened senders.
    pub fn with_max_retries(mut self, retries: u32) -> FaultPlan {
        self.max_retries = retries;
        self
    }

    /// The retry bound hardened senders should honour.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The set of permanently failed DPs.
    pub fn failed_dps(&self) -> &BTreeSet<usize> {
        &self.failed_dps
    }

    /// Is `dp` permanently failed?
    pub fn dp_failed(&self, dp: usize) -> bool {
        self.failed_dps.contains(&dp)
    }

    /// Faults actually injected so far (every query that fired counts).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Does this plan roll the PRNG on every simulated cycle?
    ///
    /// Memory bit-flips consume one random draw per cycle, so an
    /// event-driven scheduler that skips idle cycles would desynchronise
    /// the stream.  Engines use this to fall back to their dense
    /// reference loop.  DP stalls do *not* roll: they hash
    /// `(seed, cycle, dp)` and are therefore order-independent — dense,
    /// event and sharded interleavings all see the same stall schedule.
    /// Drops, corruption and link outages only roll on actual sends,
    /// which the event path replays at identical cycles in identical
    /// order.
    pub fn has_per_cycle_rolls(&self) -> bool {
        self.bit_flip_rate > 0.0
    }

    /// Does this plan roll the PRNG on message sends?
    ///
    /// Drops and corruption consume one random draw per send in global
    /// send order, which a shard-parallel runner (one forked plan per
    /// shard) cannot reproduce.  Link outages are schedule-driven and
    /// roll no randomness, so they shard fine.  Engines use this to fall
    /// back to the single-threaded scheduler.
    pub fn has_message_rolls(&self) -> bool {
        self.drop_rate > 0.0 || self.corrupt_rate > 0.0
    }

    /// Is the `from -> to` link down at `cycle`?
    pub fn link_down(&mut self, cycle: u64, from: usize, to: usize) -> bool {
        let down = self.outages.iter().any(|o| {
            o.from == from && o.to == to && cycle >= o.from_cycle && cycle <= o.until_cycle
        });
        if down {
            self.injected += 1;
        }
        down
    }

    /// Should the message in flight right now be dropped?
    pub fn should_drop(&mut self) -> bool {
        if self.drop_rate > 0.0 && self.rng.chance(self.drop_rate) {
            self.injected += 1;
            true
        } else {
            false
        }
    }

    /// Maybe corrupt a payload (single random bit-flip).
    pub fn corrupt(&mut self, value: Word) -> Word {
        if self.corrupt_rate > 0.0 && self.rng.chance(self.corrupt_rate) {
            self.injected += 1;
            value ^ (1 << self.rng.below(63))
        } else {
            value
        }
    }

    /// Is `dp` transiently stalled this cycle?
    ///
    /// The decision is a pure function of `(seed, cycle, dp)` — no PRNG
    /// stream is consumed — so stall outcomes are order-independent:
    /// identical under dense, event-driven and shard-parallel
    /// interleavings, and across forks of the same plan.  Only queries
    /// that actually fire count toward [`FaultPlan::injected`], so the
    /// totals agree too as long as every scheduler queries the same
    /// `(cycle, dp)` set (the run loops query exactly the processors
    /// that would otherwise act this cycle).
    pub fn dp_stalled(&mut self, cycle: u64, dp: usize) -> bool {
        if self.stall_rate > 0.0 && stall_hash(self.stall_seed, cycle, dp) < self.stall_rate {
            self.injected += 1;
            true
        } else {
            false
        }
    }

    /// Roll for a transient memory bit-flip this cycle: `(bank_choice,
    /// addr_choice, bit)` as raw draws for the caller to reduce modulo its
    /// own geometry.
    pub fn memory_bit_flip(&mut self) -> Option<(u64, u64, u32)> {
        if self.bit_flip_rate > 0.0 && self.rng.chance(self.bit_flip_rate) {
            self.injected += 1;
            Some((
                self.rng.next_u64(),
                self.rng.next_u64(),
                self.rng.below(63) as u32,
            ))
        } else {
            None
        }
    }

    /// Split off a child plan with the same schedule but a decorrelated
    /// RNG stream and a fresh injection counter, so several components
    /// (machine + interconnect) can each hold a plan for one run.
    pub fn fork(&mut self) -> FaultPlan {
        let mut child = self.clone();
        child.rng = self.rng.fork();
        child.injected = 0;
        child
    }

    /// Apply a pending transient bit-flip (if any) to `mem`, reducing the
    /// raw draws modulo the memory's geometry.  Returns `true` when a bit
    /// was actually flipped (so callers can trace the injection).
    pub fn maybe_flip_memory(&mut self, mem: &mut crate::mem::BankedMemory) -> bool {
        if let Some((bank_raw, addr_raw, bit)) = self.memory_bit_flip() {
            let banks = mem.bank_count();
            let words = mem.bank_size();
            if banks == 0 || words == 0 {
                return false;
            }
            let bank = (bank_raw % banks as u64) as usize;
            let addr = (addr_raw % words as u64) as usize;
            let old = mem.bank(bank).contents()[addr];
            mem.bank_mut(bank).write(addr, old ^ (1 << bit));
            return true;
        }
        false
    }
}

/// The order-independent stall draw: a splitmix64-style finalizer over
/// `(seed, cycle, dp)` reduced to `[0, 1)`.  Pure, so every scheduler
/// and every fork of a plan computes the same answer.
fn stall_hash(seed: u64, cycle: u64, dp: usize) -> f64 {
    let mut x = seed
        ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dp as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-core retry state for bounded exponential backoff on denied routes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryState {
    /// Attempts made so far.
    pub attempts: u32,
    /// Cycle before which no retry will be attempted.
    pub next_attempt: u64,
}

impl RetryState {
    /// Record a failed attempt at `cycle`; returns the backoff delay in
    /// cycles, or the error when the bound is exhausted.
    pub fn back_off(
        &mut self,
        cycle: u64,
        from: usize,
        to: usize,
        max_retries: u32,
    ) -> Result<u64, MachineError> {
        // A counter pegged at u32::MAX has lost count: treat saturation
        // as exhaustion rather than silently granting infinite retries.
        let saturated = self.attempts == u32::MAX;
        self.attempts = self.attempts.saturating_add(1);
        if saturated || self.attempts > max_retries {
            return Err(MachineError::RetryExhausted {
                from,
                to,
                attempts: self.attempts,
            });
        }
        // Exponential backoff: 1, 2, 4, ... cycles.  The exponent is
        // clamped (a shift of >= 64 would overflow; attempt 63+ must not
        // wrap back to short delays) and the wake cycle saturates so a
        // caller near the end of a u64 budget cannot overflow either.
        let delay = 1u64 << (self.attempts - 1).min(10);
        self.next_attempt = cycle.saturating_add(delay);
        Ok(delay)
    }

    /// May the caller retry at `cycle`?
    pub fn ready(&self, cycle: u64) -> bool {
        cycle >= self.next_attempt
    }
}

/// The report of a fault-injected run: what it cost and how the machine
/// coped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Execution statistics (including degraded-mode work).
    pub stats: Stats,
    /// Faults the plan actually injected.
    pub faults_injected: u64,
    /// Send retries performed (backoff round-trips).
    pub retries: u64,
    /// Did the machine have to remap work off failed components?
    pub degraded: bool,
}

impl RunOutcome {
    /// An outcome with no faults observed.
    pub fn clean(stats: Stats) -> RunOutcome {
        RunOutcome {
            stats,
            faults_injected: 0,
            retries: 0,
            degraded: false,
        }
    }
}

/// One row of the cross-family resilience experiment (rendered by
/// `skilltax-report`'s resilience table and asserted by the umbrella
/// integration tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceRow {
    /// Taxonomy class name (e.g. `IMP-IX`).
    pub class_name: String,
    /// The switch that decides the outcome, in row notation (e.g. `nxn`).
    pub deciding_switch: String,
    /// Faults injected during the trial.
    pub faults_injected: u64,
    /// Did the machine finish its workload?
    pub completed: bool,
    /// Did it have to degrade to finish?
    pub degraded: bool,
    /// The typed error when it could not finish.
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let mut a = FaultPlan::seeded(9).drop_messages(0.5);
        let mut b = FaultPlan::seeded(9).drop_messages(0.5);
        let da: Vec<bool> = (0..32).map(|_| a.should_drop()).collect();
        let db: Vec<bool> = (0..32).map(|_| b.should_drop()).collect();
        assert_eq!(da, db);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0);
    }

    #[test]
    fn link_outage_windows_are_inclusive() {
        let mut plan = FaultPlan::seeded(0).fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 5,
            until_cycle: 7,
        });
        assert!(!plan.link_down(4, 0, 1));
        assert!(plan.link_down(5, 0, 1));
        assert!(plan.link_down(7, 0, 1));
        assert!(!plan.link_down(8, 0, 1));
        assert!(!plan.link_down(6, 1, 0), "outages are directed");
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn retry_state_backs_off_exponentially_then_exhausts() {
        let mut r = RetryState::default();
        r.back_off(10, 0, 1, 3).unwrap();
        assert!(!r.ready(10));
        assert!(r.ready(11)); // +1
        r.back_off(11, 0, 1, 3).unwrap();
        assert!(r.ready(13)); // +2
        r.back_off(13, 0, 1, 3).unwrap();
        assert!(r.ready(17)); // +4
        let err = r.back_off(17, 0, 1, 3).unwrap_err();
        assert!(matches!(
            err,
            MachineError::RetryExhausted { attempts: 4, .. }
        ));
    }

    #[test]
    fn back_off_survives_huge_attempt_counts_without_overflow() {
        // Regression: with an unbounded retry budget the attempt counter
        // reaches the shift-width region (attempt >= 63).  The delay must
        // stay clamped at 2^10 and never overflow the shift or the wake
        // cycle.
        let mut r = RetryState::default();
        let mut cycle = 0u64;
        for attempt in 1..=200u32 {
            let delay = r.back_off(cycle, 0, 1, u32::MAX).unwrap();
            assert!(delay <= 1 << 10, "attempt {attempt}: delay {delay}");
            assert_eq!(r.attempts, attempt);
            cycle = r.next_attempt;
        }
        // Saturating wake cycle: backing off at the end of the u64 range
        // clamps instead of wrapping to a cycle in the past.
        let mut edge = RetryState {
            attempts: 62,
            next_attempt: 0,
        };
        edge.back_off(u64::MAX - 1, 0, 1, u32::MAX).unwrap();
        assert_eq!(edge.next_attempt, u64::MAX);
        assert!(!edge.ready(u64::MAX - 1));
        // Attempt-counter saturation: a state already at u32::MAX reports
        // exhaustion instead of wrapping to attempt 0.
        let mut maxed = RetryState {
            attempts: u32::MAX,
            next_attempt: 0,
        };
        let err = maxed.back_off(0, 0, 1, u32::MAX).unwrap_err();
        assert!(matches!(
            err,
            MachineError::RetryExhausted {
                attempts: u32::MAX,
                ..
            }
        ));
    }

    #[test]
    fn stall_decisions_are_order_independent() {
        // The same (cycle, dp) query answers identically regardless of
        // query order, interleaving, or fork lineage.
        let mut forward = FaultPlan::seeded(42).stall_dps(0.3);
        let mut backward = FaultPlan::seeded(42).stall_dps(0.3);
        let mut forked = forward.clone().fork();
        let queries: Vec<(u64, usize)> = (1..=32u64)
            .flat_map(|c| (0..4).map(move |d| (c, d)))
            .collect();
        let a: Vec<bool> = queries
            .iter()
            .map(|&(c, d)| forward.dp_stalled(c, d))
            .collect();
        let b: Vec<bool> = queries
            .iter()
            .rev()
            .map(|&(c, d)| backward.dp_stalled(c, d))
            .collect();
        let mut b = b;
        b.reverse();
        assert_eq!(a, b);
        assert_eq!(forward.injected(), backward.injected());
        let f: Vec<bool> = queries
            .iter()
            .map(|&(c, d)| forked.dp_stalled(c, d))
            .collect();
        assert_eq!(a, f, "forks share the stall schedule");
        assert!(
            a.iter().any(|&s| s),
            "a 30% rate fires somewhere in 128 draws"
        );
        assert!(!a.iter().all(|&s| s));
    }

    #[test]
    fn stall_plans_no_longer_force_the_dense_scheduler() {
        let stall_only = FaultPlan::seeded(1).stall_dps(0.5);
        assert!(!stall_only.has_per_cycle_rolls());
        let flips = FaultPlan::seeded(1).flip_memory_bits(0.01);
        assert!(flips.has_per_cycle_rolls());
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut plan = FaultPlan::seeded(3).corrupt_messages(1.0);
        let v = plan.corrupt(0);
        assert_eq!(v.count_ones(), 1);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn failed_dps_are_a_set() {
        let plan = FaultPlan::seeded(0).fail_dp(2).fail_dp(2).fail_dp(5);
        assert!(plan.dp_failed(2) && plan.dp_failed(5) && !plan.dp_failed(0));
        assert_eq!(plan.failed_dps().len(), 2);
    }

    #[test]
    fn clean_outcome_reports_no_faults() {
        let o = RunOutcome::clean(Stats::default());
        assert_eq!(o.faults_injected, 0);
        assert!(!o.degraded);
    }
}

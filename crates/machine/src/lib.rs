//! # skilltax-machine
//!
//! Executable cycle-level machines for every implementable class family of
//! the extended Skillicorn taxonomy — the substrate that turns the paper's
//! flexibility *claims* into observable behaviour:
//!
//! * [`uniprocessor`] — IUP, the Von Neumann baseline;
//! * [`mod@array`] — IAP-I..IV SIMD arrays (sub-types differ in DP–DM and
//!   DP–DP switches, observable as memory/exchange capabilities);
//! * [`multi`] — IMP-I..XVI MIMD machines (each crossbar bit is a runtime
//!   capability: shared memory, message passing, shared program store,
//!   IP→DP rebinding);
//! * [`spatial`] — ISP machines whose IPs fuse into bigger IPs;
//! * [`dataflow`] — DUP / DMP-I..IV token-firing engines;
//! * [`universal`] — the USP LUT fabric that implements either paradigm;
//! * [`workload`] — cross-family workloads with reference results;
//! * [`morph`] — the emulation partial order, validated by running it;
//! * [`sweep`] — parallel parameter sweeps for the benchmark harness;
//! * [`fault`] — deterministic fault injection and graceful degradation,
//!   which turns the flexibility ordering into a resilience experiment;
//! * [`cancel`] — cooperative cancellation (deadline cycles and
//!   asynchronous flags) composed with the watchdog budgets, so a
//!   long-running service can stop compute mid-slice with partial stats;
//! * [`telemetry`] — cycle-level tracing and metrics, zero-cost when
//!   disabled, threaded through every run loop;
//! * [`profile`] — hierarchical phase spans (decode / slice / warp /
//!   lanes …) layered on the same tracer hooks: zero-cost when disabled,
//!   leaf extents reconcile exactly with `Stats` cycle totals.
//!
//! ```
//! use skilltax_machine::array::{ArrayMachine, ArraySubtype};
//! use skilltax_machine::workload::{run_vector_add_array, vector_add_reference};
//!
//! let a = vec![1, 2, 3, 4];
//! let b = vec![10, 20, 30, 40];
//! let run = run_vector_add_array(ArraySubtype::I, &a, &b).unwrap();
//! assert_eq!(run.outputs, vector_add_reference(&a, &b));
//! ```

#![warn(missing_docs)]
// Unsafe code is forbidden everywhere except the feature-gated wide
// lane kernels in `fleet::kernel::wide`, which need `std::arch`
// intrinsics behind runtime CPU detection.  Without `--features simd`
// the historical crate-wide forbid is back in force; with it, the lint
// is `deny` so only that module's scoped `allow` may opt in.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]

pub mod array;
pub mod cancel;
pub mod dataflow;
pub mod dp;
pub mod energy;
pub mod error;
pub mod exec;
pub mod fault;
pub mod fleet;
pub mod interconnect;
pub mod isa;
pub mod mem;
pub mod morph;
pub mod multi;
pub mod noc;
pub mod profile;
pub mod program;
pub mod reconfig;
pub mod shard;
pub mod spatial;
pub mod sweep;
pub mod telemetry;
pub mod uniprocessor;
pub mod universal;
pub mod vliw;
pub mod workload;

pub use cancel::CancelToken;
pub use error::MachineError;
pub use exec::Stats;
pub use fault::{FaultPlan, LinkOutage, ResilienceRow, RunOutcome};
pub use isa::{Instr, Reg, Word};
pub use profile::{Mark, NullProfiler, Phase, Profiled, Span, SpanProfile};
pub use program::{Assembler, Program};
pub use shard::configured_threads;
pub use telemetry::{
    EventClass, EventKind, EventTrace, FaultKind, Histogram, MetricsRegistry, NullTracer,
    Telemetry, TraceEvent, Tracer,
};

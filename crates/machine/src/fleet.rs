//! Fleet-scale structure-of-arrays batch execution (DESIGN.md §14).
//!
//! The shard runner (§10) scales **one big machine** across threads; this
//! module is the complementary axis: **thousands of small machine
//! instances** of the *same* architecture advancing in lockstep, the
//! workload class of parameter sweeps and Monte-Carlo fault studies.
//!
//! Instead of `Vec<Machine>` (one decode, one scheduler pass and one
//! fault hook *per instance per cycle*), fleet state is laid out as
//! structure-of-arrays: one `Vec<Word>` lane per register column and per
//! memory word, indexed `[column * n + instance]`.  While every active
//! instance sits at the same program counter — the common case for
//! data-independent control flow — one fetch+decode drives a tight,
//! vectorizable loop over all instances.  When control flow diverges
//! (data-dependent branches, per-instance stalls), instances are
//! regrouped into pc-cohorts and each cohort keeps the amortized path;
//! the **divergence mask** is the shrinking active list plus the
//! per-instance result slots that retire instances on halt, watchdog,
//! deadline or typed error.
//!
//! The hard contract carried from the scheduler/shard identity work
//! (§9/§10): per-instance [`Stats`], telemetry class totals, and error
//! values are **bit-identical** to running the `n` instances
//! sequentially on the dense reference machines
//! ([`crate::uniprocessor::UniProcessor`], [`crate::array::ArrayMachine`]),
//! for clean runs, watchdog/deadline trips, memory/routing errors, and
//! transient fault plans alike.  `tests/fleet_identity.rs` pins this
//! differentially; the `*/fleet` bench twins gate the counters hard.
//!
//! Fleet×thread composition: instances are independent, so a fleet
//! splits into contiguous instance ranges, one sub-fleet per worker
//! thread ([`run_uni_fleet_chunked`]), honouring `SKILLTAX_FLEET_THREADS`
//! (default: the shared `SKILLTAX_THREADS` resolution).  This composes
//! with `with_shards` rather than replacing it: a sweep of *big*
//! machines shards each machine across threads, a fleet of *small*
//! machines chunks instances across threads.

use std::ops::Range;

use crate::array::ArraySubtype;
use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::fault::FaultPlan;
use crate::isa::{Instr, Word, NUM_REGS};
use crate::mem::DataTopology;
use crate::program::Program;
use crate::telemetry::{EventKind, FaultKind, NullTracer, Tracer};
use crate::uniprocessor::DEFAULT_CYCLE_LIMIT;

/// Per-instance result of a fleet run: the same values a sequential run
/// of that instance on the dense machine would produce.
pub type InstanceResult = Result<Stats, MachineError>;

/// Which batched per-opcode kernels sweep the unit-stride column runs.
///
/// Both selections are **bit-identical** in per-instance [`Stats`],
/// telemetry class totals and error values — the ISA is exact integer
/// arithmetic, so only elements-per-step differs.  [`Default`] picks
/// `Wide` when the crate is built with `--features simd` and `Scalar`
/// otherwise, so callers never need feature gates of their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKernels {
    /// Plain unit-stride loops (the auto-vectorizer's job).
    Scalar,
    /// Explicit wide kernels: an 8-wide manual unroll on the portable
    /// path, `std::arch` SSE2/AVX2 behind runtime detection on x86_64.
    /// Compiled only under `--features simd`; without the feature this
    /// selection degrades to `Scalar`.
    Wide,
}

impl Default for LaneKernels {
    fn default() -> LaneKernels {
        if cfg!(feature = "simd") {
            LaneKernels::Wide
        } else {
            LaneKernels::Scalar
        }
    }
}

/// How a swarm workload executes its `n` instances — the twin switch
/// the §14 identity suite and the `*/fleet` bench twins compare across.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetExec {
    /// `n` independent runs on the dense reference machines — the
    /// semantics oracle.
    Sequential,
    /// One structure-of-arrays fleet with the given lane kernels.
    Fleet(LaneKernels),
}

impl FleetExec {
    /// The fleet path with the build's default kernel selection.
    pub fn fleet() -> FleetExec {
        FleetExec::Fleet(LaneKernels::default())
    }
}

/// Maximal consecutive ranges of a sorted index list — the range-run
/// classification that turns a dense active list into a handful of
/// unit-stride kernel calls instead of a per-index gather.
struct Runs<'a> {
    idx: &'a [usize],
}

impl Iterator for Runs<'_> {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        let &first = self.idx.first()?;
        let mut len = 1;
        while len < self.idx.len() && self.idx[len] == first + len {
            len += 1;
        }
        self.idx = &self.idx[len..];
        Some(first..first + len)
    }
}

/// Iterate `idx` (ascending, as the executors maintain their active
/// lists) as maximal `start..end` runs.
fn runs(idx: &[usize]) -> Runs<'_> {
    Runs { idx }
}

/// Batched per-opcode kernels over unit-stride column runs.
///
/// A kernel call covers one contiguous run `lo..hi` of the instance
/// axis within flat column storage: destination base `bd`, source bases
/// `ba`/`bb`.  Column bases are multiples of the instance count, so two
/// columns are either the *same* slice or fully disjoint — and every op
/// is elementwise, which makes load-before-store within a block safe
/// under that aliasing.
pub(crate) mod kernel {
    use super::{LaneKernels, Word};

    /// The three-register ALU ops with batched kernels.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum BinOp {
        /// `wrapping_add`
        Add,
        /// `wrapping_sub`
        Sub,
        /// `wrapping_mul`
        Mul,
        /// `Ord::min`
        Min,
        /// `Ord::max`
        Max,
    }

    impl BinOp {
        #[inline(always)]
        pub(crate) fn apply(self, x: Word, y: Word) -> Word {
            match self {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            }
        }
    }

    /// `regs[bd+i] = op(regs[ba+i], regs[bb+i])` for `i` in `run`.
    #[inline]
    pub(crate) fn binop(
        kernels: LaneKernels,
        regs: &mut [Word],
        bd: usize,
        ba: usize,
        bb: usize,
        run: std::ops::Range<usize>,
        op: BinOp,
    ) {
        match kernels {
            LaneKernels::Scalar => binop_scalar(regs, bd, ba, bb, run, op),
            LaneKernels::Wide => wide::binop(regs, bd, ba, bb, run, op),
        }
    }

    /// `regs[bd+i] = regs[bs+i].wrapping_add(imm)` for `i` in `run`.
    #[inline]
    pub(crate) fn addi(
        kernels: LaneKernels,
        regs: &mut [Word],
        bd: usize,
        bs: usize,
        run: std::ops::Range<usize>,
        imm: Word,
    ) {
        match kernels {
            LaneKernels::Scalar => addi_scalar(regs, bd, bs, run, imm),
            LaneKernels::Wide => wide::addi(regs, bd, bs, run, imm),
        }
    }

    fn binop_scalar(
        regs: &mut [Word],
        bd: usize,
        ba: usize,
        bb: usize,
        run: std::ops::Range<usize>,
        op: BinOp,
    ) {
        for i in run {
            regs[bd + i] = op.apply(regs[ba + i], regs[bb + i]);
        }
    }

    fn addi_scalar(
        regs: &mut [Word],
        bd: usize,
        bs: usize,
        run: std::ops::Range<usize>,
        imm: Word,
    ) {
        for i in run {
            regs[bd + i] = regs[bs + i].wrapping_add(imm);
        }
    }

    /// Without `--features simd` the `Wide` selection degrades to the
    /// scalar loops, keeping the public API feature-free.
    #[cfg(not(feature = "simd"))]
    mod wide {
        use super::{BinOp, Word};

        #[inline]
        pub(super) fn binop(
            regs: &mut [Word],
            bd: usize,
            ba: usize,
            bb: usize,
            run: std::ops::Range<usize>,
            op: BinOp,
        ) {
            super::binop_scalar(regs, bd, ba, bb, run, op);
        }

        #[inline]
        pub(super) fn addi(
            regs: &mut [Word],
            bd: usize,
            bs: usize,
            run: std::ops::Range<usize>,
            imm: Word,
        ) {
            super::addi_scalar(regs, bd, bs, run, imm);
        }
    }

    /// Explicit wide kernels (`--features simd`): an 8-wide manual
    /// unroll everywhere, plus `std::arch` SSE2/AVX2 behind runtime CPU
    /// detection on x86_64 for the ops packed 64-bit lanes can express
    /// (add/sub; min/max via compare+blend on AVX2).  `Mul` keeps the
    /// unroll — there is no packed 64-bit multiply below AVX-512.
    ///
    /// Safety contract for the scoped `allow(unsafe_code)` (the crate
    /// is otherwise `deny(unsafe_code)`): every unsafe block is an
    /// intrinsics body guarded by `is_x86_feature_detected!`, and each
    /// raw-pointer kernel asserts `base + hi <= regs.len()` for all of
    /// its columns before touching memory.
    #[cfg(feature = "simd")]
    #[allow(unsafe_code)]
    mod wide {
        use super::{BinOp, Word};

        /// Portable block width: two AVX2 vectors' worth of i64 lanes.
        const W: usize = 8;

        #[inline]
        pub(super) fn binop(
            regs: &mut [Word],
            bd: usize,
            ba: usize,
            bb: usize,
            run: std::ops::Range<usize>,
            op: BinOp,
        ) {
            #[cfg(target_arch = "x86_64")]
            {
                let packed = matches!(op, BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max);
                if packed && run.len() >= 4 {
                    if std::arch::is_x86_feature_detected!("avx2") {
                        // SAFETY: AVX2 confirmed at runtime; bounds
                        // asserted inside the kernel.
                        unsafe { binop_avx2(regs, bd, ba, bb, run, op) };
                        return;
                    }
                    if matches!(op, BinOp::Add | BinOp::Sub)
                        && std::arch::is_x86_feature_detected!("sse2")
                    {
                        // SAFETY: SSE2 confirmed at runtime; bounds
                        // asserted inside the kernel.
                        unsafe { binop_sse2(regs, bd, ba, bb, run, op) };
                        return;
                    }
                }
            }
            binop_unrolled(regs, bd, ba, bb, run, op);
        }

        #[inline]
        pub(super) fn addi(
            regs: &mut [Word],
            bd: usize,
            bs: usize,
            run: std::ops::Range<usize>,
            imm: Word,
        ) {
            #[cfg(target_arch = "x86_64")]
            {
                if run.len() >= 4 {
                    if std::arch::is_x86_feature_detected!("avx2") {
                        // SAFETY: AVX2 confirmed at runtime; bounds
                        // asserted inside the kernel.
                        unsafe { addi_avx2(regs, bd, bs, run, imm) };
                        return;
                    }
                    if std::arch::is_x86_feature_detected!("sse2") {
                        // SAFETY: SSE2 confirmed at runtime; bounds
                        // asserted inside the kernel.
                        unsafe { addi_sse2(regs, bd, bs, run, imm) };
                        return;
                    }
                }
            }
            addi_unrolled(regs, bd, bs, run, imm);
        }

        /// 8-wide manual unroll.  Source blocks are copied to locals
        /// before the destination block is stored, so identical columns
        /// (`bd == ba`/`bd == bb`) behave exactly like the scalar loop.
        fn binop_unrolled(
            regs: &mut [Word],
            bd: usize,
            ba: usize,
            bb: usize,
            run: std::ops::Range<usize>,
            op: BinOp,
        ) {
            let (lo, hi) = (run.start, run.end);
            let mut i = lo;
            while i + W <= hi {
                let mut xa = [0 as Word; W];
                let mut xb = [0 as Word; W];
                xa.copy_from_slice(&regs[ba + i..ba + i + W]);
                xb.copy_from_slice(&regs[bb + i..bb + i + W]);
                let mut out = [0 as Word; W];
                for k in 0..W {
                    out[k] = op.apply(xa[k], xb[k]);
                }
                regs[bd + i..bd + i + W].copy_from_slice(&out);
                i += W;
            }
            for j in i..hi {
                regs[bd + j] = op.apply(regs[ba + j], regs[bb + j]);
            }
        }

        fn addi_unrolled(
            regs: &mut [Word],
            bd: usize,
            bs: usize,
            run: std::ops::Range<usize>,
            imm: Word,
        ) {
            let (lo, hi) = (run.start, run.end);
            let mut i = lo;
            while i + W <= hi {
                let mut xs = [0 as Word; W];
                xs.copy_from_slice(&regs[bs + i..bs + i + W]);
                let mut out = [0 as Word; W];
                for k in 0..W {
                    out[k] = xs[k].wrapping_add(imm);
                }
                regs[bd + i..bd + i + W].copy_from_slice(&out);
                i += W;
            }
            for j in i..hi {
                regs[bd + j] = regs[bs + j].wrapping_add(imm);
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn binop_avx2(
            regs: &mut [Word],
            bd: usize,
            ba: usize,
            bb: usize,
            run: std::ops::Range<usize>,
            op: BinOp,
        ) {
            use std::arch::x86_64::*;
            let (lo, hi) = (run.start, run.end);
            assert!(bd + hi <= regs.len() && ba + hi <= regs.len() && bb + hi <= regs.len());
            let p = regs.as_mut_ptr();
            let mut i = lo;
            while i + 4 <= hi {
                // SAFETY: in-bounds by the assert above; unaligned
                // load/store intrinsics carry no alignment requirement,
                // and loads complete before the store so identical
                // columns alias harmlessly.
                unsafe {
                    let va = _mm256_loadu_si256(p.add(ba + i).cast::<__m256i>());
                    let vb = _mm256_loadu_si256(p.add(bb + i).cast::<__m256i>());
                    let vr = match op {
                        BinOp::Add => _mm256_add_epi64(va, vb),
                        BinOp::Sub => _mm256_sub_epi64(va, vb),
                        BinOp::Min => {
                            let gt = _mm256_cmpgt_epi64(va, vb);
                            _mm256_blendv_epi8(va, vb, gt)
                        }
                        BinOp::Max => {
                            let gt = _mm256_cmpgt_epi64(va, vb);
                            _mm256_blendv_epi8(vb, va, gt)
                        }
                        BinOp::Mul => unreachable!("mul has no packed i64 form below AVX-512"),
                    };
                    _mm256_storeu_si256(p.add(bd + i).cast::<__m256i>(), vr);
                }
                i += 4;
            }
            for j in i..hi {
                regs[bd + j] = op.apply(regs[ba + j], regs[bb + j]);
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "sse2")]
        unsafe fn binop_sse2(
            regs: &mut [Word],
            bd: usize,
            ba: usize,
            bb: usize,
            run: std::ops::Range<usize>,
            op: BinOp,
        ) {
            use std::arch::x86_64::*;
            let (lo, hi) = (run.start, run.end);
            assert!(bd + hi <= regs.len() && ba + hi <= regs.len() && bb + hi <= regs.len());
            let p = regs.as_mut_ptr();
            let mut i = lo;
            while i + 2 <= hi {
                // SAFETY: in-bounds by the assert above (see
                // `binop_avx2` for the aliasing argument).
                unsafe {
                    let va = _mm_loadu_si128(p.add(ba + i).cast::<__m128i>());
                    let vb = _mm_loadu_si128(p.add(bb + i).cast::<__m128i>());
                    let vr = match op {
                        BinOp::Add => _mm_add_epi64(va, vb),
                        BinOp::Sub => _mm_sub_epi64(va, vb),
                        _ => unreachable!("only add/sub take the sse2 path"),
                    };
                    _mm_storeu_si128(p.add(bd + i).cast::<__m128i>(), vr);
                }
                i += 2;
            }
            for j in i..hi {
                regs[bd + j] = op.apply(regs[ba + j], regs[bb + j]);
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn addi_avx2(
            regs: &mut [Word],
            bd: usize,
            bs: usize,
            run: std::ops::Range<usize>,
            imm: Word,
        ) {
            use std::arch::x86_64::*;
            let (lo, hi) = (run.start, run.end);
            assert!(bd + hi <= regs.len() && bs + hi <= regs.len());
            let p = regs.as_mut_ptr();
            let vimm = _mm256_set1_epi64x(imm);
            let mut i = lo;
            while i + 4 <= hi {
                // SAFETY: in-bounds by the assert above (see
                // `binop_avx2` for the aliasing argument).
                unsafe {
                    let vs = _mm256_loadu_si256(p.add(bs + i).cast::<__m256i>());
                    _mm256_storeu_si256(
                        p.add(bd + i).cast::<__m256i>(),
                        _mm256_add_epi64(vs, vimm),
                    );
                }
                i += 4;
            }
            for j in i..hi {
                regs[bd + j] = regs[bs + j].wrapping_add(imm);
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "sse2")]
        unsafe fn addi_sse2(
            regs: &mut [Word],
            bd: usize,
            bs: usize,
            run: std::ops::Range<usize>,
            imm: Word,
        ) {
            use std::arch::x86_64::*;
            let (lo, hi) = (run.start, run.end);
            assert!(bd + hi <= regs.len() && bs + hi <= regs.len());
            let p = regs.as_mut_ptr();
            let vimm = _mm_set1_epi64x(imm);
            let mut i = lo;
            while i + 2 <= hi {
                // SAFETY: in-bounds by the assert above (see
                // `binop_avx2` for the aliasing argument).
                unsafe {
                    let vs = _mm_loadu_si128(p.add(bs + i).cast::<__m128i>());
                    _mm_storeu_si128(p.add(bd + i).cast::<__m128i>(), _mm_add_epi64(vs, vimm));
                }
                i += 2;
            }
            for j in i..hi {
                regs[bd + j] = regs[bs + j].wrapping_add(imm);
            }
        }
    }
}

/// Worker-thread count for fleet chunking: `SKILLTAX_FLEET_THREADS` if
/// set to a positive value, else the shared [`crate::configured_threads`]
/// resolution (`SKILLTAX_THREADS` / `available_parallelism`).
pub fn fleet_threads() -> usize {
    match std::env::var("SKILLTAX_FLEET_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => crate::shard::configured_threads(),
    }
}

/// Minimum instances per worker chunk before a fleet fans out
/// (`SKILLTAX_FLEET_MIN_PER_THREAD`, default 32): tiny fleets stay
/// single-threaded so thread spawn cost never dominates the run.
pub fn fleet_min_per_thread() -> usize {
    match std::env::var("SKILLTAX_FLEET_MIN_PER_THREAD")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => 32,
    }
}

/// Split `n` instances into at most `threads` contiguous ranges of at
/// least `min_per_chunk` instances each (the last range takes the
/// remainder).  Deterministic: depends only on the arguments.
pub fn chunk_ranges(n: usize, threads: usize, min_per_chunk: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let max_chunks = (n / min_per_chunk.max(1)).max(1);
    let k = threads.max(1).min(max_chunks);
    let base = n / k;
    let rem = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for c in 0..k {
        let len = base + usize::from(c < rem);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Per-instance run state shared by the fleet executors: the divergence
/// mask's backing store.  `results[i]` doubles as the retirement flag —
/// an instance leaves the active list the step its slot is written.
struct LaneState {
    pc: Vec<usize>,
    cycles: Vec<u64>,
    instructions: Vec<u64>,
    messages: Vec<u64>,
    stalls: Vec<u64>,
    /// Per-(lane, instance) ALU counter, `[lane * n + i]` (uni: one lane).
    alu: Vec<u64>,
    mem_reads: Vec<u64>,
    mem_writes: Vec<u64>,
    results: Vec<Option<InstanceResult>>,
}

impl LaneState {
    fn new(n: usize, lanes: usize) -> LaneState {
        LaneState {
            pc: vec![0; n],
            cycles: vec![0; n],
            instructions: vec![0; n],
            messages: vec![0; n],
            stalls: vec![0; n],
            alu: vec![0; lanes * n],
            mem_reads: vec![0; lanes * n],
            mem_writes: vec![0; lanes * n],
            results: (0..n).map(|_| None).collect(),
        }
    }

    /// Partial stats exactly as the sequential loops carry them into a
    /// watchdog/cancel error: cycles, instructions, messages and stalls
    /// are live; the ALU/memory counters are only folded in on success.
    fn partial(&self, i: usize) -> Stats {
        Stats {
            cycles: self.cycles[i],
            instructions: self.instructions[i],
            messages: self.messages[i],
            stalls: self.stalls[i],
            ..Stats::default()
        }
    }

    /// Full stats for a cleanly finished instance (`lanes` counter rows).
    fn finish(&self, i: usize, n: usize, lanes: usize) -> Stats {
        let mut stats = self.partial(i);
        for l in 0..lanes {
            stats.alu_ops += self.alu[l * n + i];
            stats.mem_reads += self.mem_reads[l * n + i];
            stats.mem_writes += self.mem_writes[l * n + i];
        }
        stats
    }

    /// Retire every active instance with the asynchronous-flag error,
    /// mirroring the per-cycle flag poll of the sequential loops.
    fn flag_all<T: Tracer>(&mut self, active: &[usize], tracer: &mut T) {
        for &i in active {
            let partial = self.partial(i);
            self.results[i] = Some(Err(flag_trip(self.cycles[i], partial, tracer)));
        }
    }

    /// Regroup `active` into pc-cohorts (stable, ascending instances
    /// within a cohort), run `step` on each, then rebuild the active
    /// list in ascending instance order.  The cohorts partition an
    /// already-ascending list, so the rebuild is one linear `retain`
    /// over the retirement slots — no O(n log n) re-sort per
    /// divergence step.
    fn step_cohorts(
        &mut self,
        active: &mut Vec<usize>,
        mut step: impl FnMut(&mut Self, &mut Vec<usize>),
    ) {
        let mut cohorts: Vec<(usize, Vec<usize>)> = Vec::new();
        for &i in active.iter() {
            match cohorts.iter_mut().find(|(p, _)| *p == self.pc[i]) {
                Some((_, group)) => group.push(i),
                None => cohorts.push((self.pc[i], vec![i])),
            }
        }
        for (_, mut group) in cohorts {
            step(self, &mut group);
        }
        active.retain(|&i| self.results[i].is_none());
    }
}

// ---------------------------------------------------------------------------
// Uni-processor fleet
// ---------------------------------------------------------------------------

/// A fleet of `n` lockstep [`crate::uniprocessor::UniProcessor`]
/// instances in structure-of-arrays layout: register column `r` lives at
/// `regs[r * n ..]`, memory word `a` at `mem[a * n ..]`, so a uniform-pc
/// step touches contiguous lanes.
pub struct UniFleet {
    n: usize,
    mem_words: usize,
    cycle_limit: u64,
    cancel: CancelToken,
    kernels: LaneKernels,
    regs: Vec<Word>,
    mem: Vec<Word>,
}

impl std::fmt::Debug for UniFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniFleet")
            .field("instances", &self.n)
            .field("mem_words", &self.mem_words)
            .finish()
    }
}

impl UniFleet {
    /// A fleet of `n` zeroed uni-processors, each with `mem_words` of
    /// private data memory.
    pub fn new(n: usize, mem_words: usize) -> UniFleet {
        assert!(n >= 1, "a fleet needs at least one instance");
        UniFleet {
            n,
            mem_words,
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            cancel: CancelToken::new(),
            kernels: LaneKernels::default(),
            regs: vec![0; NUM_REGS * n],
            mem: vec![0; mem_words * n],
        }
    }

    /// Select the batched lane-kernel flavour (default:
    /// [`LaneKernels::default`] for this build).  Results are
    /// bit-identical across selections; only throughput differs.
    pub fn with_kernels(mut self, kernels: LaneKernels) -> UniFleet {
        self.kernels = kernels;
        self
    }

    /// Override the livelock guard (applied per instance, exactly like
    /// the sequential machine's watchdog).
    pub fn with_cycle_limit(mut self, limit: u64) -> UniFleet {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token: the deadline stops every instance
    /// deterministically at its own cycle count; the flag stops the
    /// whole fleet promptly.
    pub fn with_cancel(mut self, cancel: CancelToken) -> UniFleet {
        self.cancel = cancel;
        self
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.n
    }

    /// A fleet is never empty (the constructor asserts `n >= 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Words of data memory per instance.
    pub fn mem_words(&self) -> usize {
        self.mem_words
    }

    /// Instance `i`'s register `r` (for workload setup / result checks).
    pub fn reg(&self, i: usize, r: u8) -> Word {
        self.regs[usize::from(r) * self.n + i]
    }

    /// Write instance `i`'s register `r`.
    pub fn set_reg(&mut self, i: usize, r: u8, value: Word) {
        self.regs[usize::from(r) * self.n + i] = value;
    }

    /// Instance `i`'s memory word at `addr`.
    pub fn mem_word(&self, i: usize, addr: usize) -> Word {
        self.mem[addr * self.n + i]
    }

    /// Write instance `i`'s memory word at `addr`.
    pub fn write_mem(&mut self, i: usize, addr: usize, value: Word) {
        self.mem[addr * self.n + i] = value;
    }

    /// Load a prefix of instance `i`'s memory (strided column writes —
    /// setup cost, off the run loop).
    pub fn load_mem(&mut self, i: usize, data: &[Word]) {
        for (addr, &v) in data.iter().enumerate().take(self.mem_words) {
            self.mem[addr * self.n + i] = v;
        }
    }

    /// Run `program` on every instance; per-instance results in instance
    /// order, each bit-identical to a sequential
    /// [`crate::uniprocessor::UniProcessor::run`] of that instance.
    pub fn run(&mut self, program: &Program) -> Vec<InstanceResult> {
        self.run_traced(program, &mut NullTracer)
    }

    /// [`UniFleet::run`] with observation hooks.  Events carry each
    /// instance's own cycle stamp; class totals equal the sum of the `n`
    /// sequential traced runs.  (Fleet runs do not emit phase spans —
    /// profile a single instance on the dense machine instead.)
    pub fn run_traced<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
    ) -> Vec<InstanceResult> {
        let n = self.n;
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let mut st = LaneState::new(n, 1);
        let mut active: Vec<usize> = (0..n).collect();
        let mut exec: Vec<usize> = Vec::with_capacity(n);
        while !active.is_empty() {
            if self.cancel.flag_raised() {
                st.flag_all(&active, tracer);
                break;
            }
            let pc0 = st.pc[active[0]];
            if active.iter().all(|&i| st.pc[i] == pc0) {
                self.lockstep_step(program, &budget, &mut active, &mut exec, &mut st, tracer);
            } else {
                let (fleet, budget) = (&mut *self, &budget);
                st.step_cohorts(&mut active, |st, group| {
                    let mut exec = Vec::with_capacity(group.len());
                    fleet.lockstep_step(program, budget, group, &mut exec, st, tracer);
                });
            }
        }
        st.results
            .into_iter()
            .map(|r| r.expect("every instance retires"))
            .collect()
    }

    /// One lockstep step for a pc-uniform `group`: per instance, the
    /// exact sequential iteration order — flag (hoisted to the caller),
    /// budget, fetch, cycle increment, fabric check, issue, execute.
    fn lockstep_step<T: Tracer>(
        &mut self,
        program: &Program,
        budget: &RunBudget,
        group: &mut Vec<usize>,
        exec: &mut Vec<usize>,
        st: &mut LaneState,
        tracer: &mut T,
    ) {
        let n = self.n;
        let pc0 = st.pc[group[0]];
        let fetched = program.fetch(pc0);
        let enabled = tracer.enabled();
        exec.clear();
        for &i in group.iter() {
            if st.cycles[i] >= budget.limit() {
                let partial = st.partial(i);
                st.results[i] = Some(Err(budget.trip(st.cycles[i], partial, tracer)));
                continue;
            }
            let Some(instr) = fetched else {
                // Running off the end is a clean stop.
                let stats = st.finish(i, n, 1);
                if enabled {
                    tracer.sample("dp.alu_ops", stats.alu_ops);
                    tracer.sample("dp.mem_ops", stats.mem_reads + stats.mem_writes);
                }
                st.results[i] = Some(Ok(stats));
                continue;
            };
            st.cycles[i] += 1;
            if instr.uses_dp_dp() {
                st.results[i] = Some(Err(MachineError::RouteDenied {
                    from: 0,
                    to: 0,
                    reason: "a uni-processor has no DP-DP fabric".to_owned(),
                }));
                continue;
            }
            st.instructions[i] += 1;
            if enabled {
                tracer.record(st.cycles[i], EventKind::Issue);
            }
            exec.push(i);
        }
        if let Some(instr) = fetched {
            self.execute(instr, pc0, exec, st, enabled, tracer);
        }
        group.retain(|&i| st.results[i].is_none());
    }

    /// The decoded-once lane loops, batched per opcode: `exec` is
    /// classified into maximal consecutive instance runs (one run when
    /// the active list is dense), and each opcode sweeps its column
    /// slices with a unit-stride [`kernel`] call per run instead of an
    /// index gather.
    fn execute<T: Tracer>(
        &mut self,
        instr: Instr,
        pc0: usize,
        exec: &[usize],
        st: &mut LaneState,
        enabled: bool,
        tracer: &mut T,
    ) {
        let n = self.n;
        let kernels = self.kernels;
        let col = |r: u8| usize::from(r) * n;
        let next = pc0 + 1;
        macro_rules! alu_runs {
            ($body:expr) => {{
                #[allow(clippy::redundant_closure_call)]
                for run in runs(exec) {
                    $body(run.clone());
                    for i in run.clone() {
                        st.alu[i] += 1;
                        if enabled {
                            tracer.record(st.cycles[i], EventKind::AluOp);
                        }
                    }
                    st.pc[run].fill(next);
                }
            }};
        }
        match instr {
            Instr::Nop => {
                for run in runs(exec) {
                    st.pc[run].fill(next);
                }
            }
            Instr::Halt => {
                for &i in exec {
                    let stats = st.finish(i, n, 1);
                    if enabled {
                        tracer.sample("dp.alu_ops", stats.alu_ops);
                        tracer.sample("dp.mem_ops", stats.mem_reads + stats.mem_writes);
                    }
                    st.results[i] = Some(Ok(stats));
                }
            }
            Instr::MovI(rd, imm) => {
                let bd = col(rd);
                for run in runs(exec) {
                    self.regs[bd + run.start..bd + run.end].fill(imm);
                    st.pc[run].fill(next);
                }
            }
            Instr::Mov(rd, rs) => {
                let (bd, bs) = (col(rd), col(rs));
                for run in runs(exec) {
                    self.regs
                        .copy_within(bs + run.start..bs + run.end, bd + run.start);
                    st.pc[run].fill(next);
                }
            }
            Instr::Add(rd, a, b) => {
                let (bd, ba, bb) = (col(rd), col(a), col(b));
                alu_runs!(|run| kernel::binop(
                    kernels,
                    &mut self.regs,
                    bd,
                    ba,
                    bb,
                    run,
                    kernel::BinOp::Add
                ));
            }
            Instr::Sub(rd, a, b) => {
                let (bd, ba, bb) = (col(rd), col(a), col(b));
                alu_runs!(|run| kernel::binop(
                    kernels,
                    &mut self.regs,
                    bd,
                    ba,
                    bb,
                    run,
                    kernel::BinOp::Sub
                ));
            }
            Instr::Mul(rd, a, b) => {
                let (bd, ba, bb) = (col(rd), col(a), col(b));
                alu_runs!(|run| kernel::binop(
                    kernels,
                    &mut self.regs,
                    bd,
                    ba,
                    bb,
                    run,
                    kernel::BinOp::Mul
                ));
            }
            Instr::Min(rd, a, b) => {
                let (bd, ba, bb) = (col(rd), col(a), col(b));
                alu_runs!(|run| kernel::binop(
                    kernels,
                    &mut self.regs,
                    bd,
                    ba,
                    bb,
                    run,
                    kernel::BinOp::Min
                ));
            }
            Instr::Max(rd, a, b) => {
                let (bd, ba, bb) = (col(rd), col(a), col(b));
                alu_runs!(|run| kernel::binop(
                    kernels,
                    &mut self.regs,
                    bd,
                    ba,
                    bb,
                    run,
                    kernel::BinOp::Max
                ));
            }
            Instr::AddI(rd, rs, imm) => {
                let (bd, bs) = (col(rd), col(rs));
                alu_runs!(|run| kernel::addi(kernels, &mut self.regs, bd, bs, run, imm));
            }
            Instr::Load(rd, rs) => {
                let (bd, bs) = (col(rd), col(rs));
                for &i in exec {
                    let address = self.regs[bs + i];
                    if address < 0 || address as usize >= self.mem_words {
                        st.results[i] = Some(Err(MachineError::MemoryOutOfBounds {
                            processor: 0,
                            address,
                            size: self.mem_words,
                        }));
                        continue;
                    }
                    self.regs[bd + i] = self.mem[address as usize * n + i];
                    st.mem_reads[i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::MemRead);
                    }
                    st.pc[i] = next;
                }
            }
            Instr::Store(ra, rs) => {
                let (ba, bs) = (col(ra), col(rs));
                for &i in exec {
                    let address = self.regs[ba + i];
                    if address < 0 || address as usize >= self.mem_words {
                        st.results[i] = Some(Err(MachineError::MemoryOutOfBounds {
                            processor: 0,
                            address,
                            size: self.mem_words,
                        }));
                        continue;
                    }
                    self.mem[address as usize * n + i] = self.regs[bs + i];
                    st.mem_writes[i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::MemWrite);
                    }
                    st.pc[i] = next;
                }
            }
            Instr::LaneId(rd) => {
                let bd = col(rd);
                for run in runs(exec) {
                    self.regs[bd + run.start..bd + run.end].fill(0);
                    st.pc[run].fill(next);
                }
            }
            Instr::Beq(a, b, t) => {
                let (ba, bb) = (col(a), col(b));
                for &i in exec {
                    st.pc[i] = if self.regs[ba + i] == self.regs[bb + i] {
                        t
                    } else {
                        next
                    };
                }
            }
            Instr::Bne(a, b, t) => {
                let (ba, bb) = (col(a), col(b));
                for &i in exec {
                    st.pc[i] = if self.regs[ba + i] != self.regs[bb + i] {
                        t
                    } else {
                        next
                    };
                }
            }
            Instr::Blt(a, b, t) => {
                let (ba, bb) = (col(a), col(b));
                for &i in exec {
                    st.pc[i] = if self.regs[ba + i] < self.regs[bb + i] {
                        t
                    } else {
                        next
                    };
                }
            }
            Instr::Jmp(t) => {
                for run in runs(exec) {
                    st.pc[run].fill(t);
                }
            }
            Instr::Send(..) | Instr::Recv(..) | Instr::GetLane(..) => {
                unreachable!("fabric instructions are intercepted before execute")
            }
        }
    }
}

/// One worker chunk of a fleet run: its instance range, the sub-fleet
/// (for post-run register/memory inspection) and the per-instance
/// results for that range.
#[derive(Debug)]
pub struct FleetChunk {
    /// Global instance range this chunk covered.
    pub range: Range<usize>,
    /// The sub-fleet, post-run (instance `range.start + k` is local `k`).
    pub fleet: UniFleet,
    /// Per-instance results, local order.
    pub results: Vec<InstanceResult>,
}

/// Run `n` uni-processor instances of `program` as contiguous sub-fleet
/// chunks across worker threads (`threads == 0` resolves via
/// [`fleet_threads`]).  `init(global_index, fleet, local_index)` seeds
/// each instance before its chunk runs.  Instances are independent, so
/// the chunked run is deterministic and bit-identical to one big fleet —
/// the fleet×thread analog of `with_shards`.
#[allow(clippy::too_many_arguments)]
pub fn run_uni_fleet_chunked<I>(
    n: usize,
    mem_words: usize,
    cycle_limit: u64,
    cancel: &CancelToken,
    program: &Program,
    kernels: LaneKernels,
    init: I,
    threads: usize,
) -> Vec<FleetChunk>
where
    I: Fn(usize, &mut UniFleet, usize) + Sync,
{
    let threads = if threads == 0 {
        fleet_threads()
    } else {
        threads
    };
    let ranges = chunk_ranges(n, threads, fleet_min_per_thread());
    let workers = ranges.len();
    crate::sweep::parallel_map_with(
        ranges,
        |range| {
            let mut fleet = UniFleet::new(range.len(), mem_words)
                .with_cycle_limit(cycle_limit)
                .with_cancel(cancel.clone())
                .with_kernels(kernels);
            for local in 0..range.len() {
                init(range.start + local, &mut fleet, local);
            }
            let results = fleet.run(program);
            FleetChunk {
                range: range.clone(),
                fleet,
                results,
            }
        },
        workers,
    )
}

/// Flatten chunked results back into one per-instance vector in global
/// instance order.
pub fn chunked_results(chunks: Vec<FleetChunk>) -> Vec<InstanceResult> {
    chunks.into_iter().flat_map(|c| c.results).collect()
}

// ---------------------------------------------------------------------------
// Array-machine fleet
// ---------------------------------------------------------------------------

/// A fleet of `n` lockstep [`crate::array::ArrayMachine`] instances
/// (same sub-type, lane count and bank size) in structure-of-arrays
/// layout: lane `l`'s register `r` lives at
/// `regs[(l * NUM_REGS + r) * n ..]`, global memory word `g` at
/// `mem[g * n ..]`.
pub struct ArrayFleet {
    subtype: ArraySubtype,
    lanes: usize,
    bank_words: usize,
    n: usize,
    cycle_limit: u64,
    cancel: CancelToken,
    kernels: LaneKernels,
    regs: Vec<Word>,
    mem: Vec<Word>,
}

impl std::fmt::Debug for ArrayFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayFleet")
            .field("subtype", &self.subtype.class_name())
            .field("lanes", &self.lanes)
            .field("instances", &self.n)
            .finish()
    }
}

impl ArrayFleet {
    /// A fleet of `n` zeroed `lanes`-lane array machines with
    /// `bank_words` words per memory bank.
    pub fn new(subtype: ArraySubtype, lanes: usize, bank_words: usize, n: usize) -> ArrayFleet {
        assert!(n >= 1, "a fleet needs at least one instance");
        assert!(lanes >= 1, "an array machine needs at least one lane");
        assert!(bank_words >= 1, "banks need at least one word");
        ArrayFleet {
            subtype,
            lanes,
            bank_words,
            n,
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            cancel: CancelToken::new(),
            kernels: LaneKernels::default(),
            regs: vec![0; lanes * NUM_REGS * n],
            mem: vec![0; lanes * bank_words * n],
        }
    }

    /// Select the batched lane-kernel flavour (default:
    /// [`LaneKernels::default`] for this build).  Results are
    /// bit-identical across selections; only throughput differs.
    pub fn with_kernels(mut self, kernels: LaneKernels) -> ArrayFleet {
        self.kernels = kernels;
        self
    }

    /// Override the livelock guard (per instance).
    pub fn with_cycle_limit(mut self, limit: u64) -> ArrayFleet {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token (deadline deterministic per
    /// instance, flag prompt for the whole fleet).
    pub fn with_cancel(mut self, cancel: CancelToken) -> ArrayFleet {
        self.cancel = cancel;
        self
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.n
    }

    /// A fleet is never empty (the constructor asserts `n >= 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lanes per instance.
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Instance `i`, lane `l`, register `r`.
    pub fn lane_reg(&self, i: usize, l: usize, r: u8) -> Word {
        self.regs[(l * NUM_REGS + usize::from(r)) * self.n + i]
    }

    /// Instance `i`'s memory word at global address `g`
    /// (`bank * bank_words + offset`).
    pub fn mem_word(&self, i: usize, g: usize) -> Word {
        self.mem[g * self.n + i]
    }

    /// Load a prefix of instance `i`'s bank `bank`.
    pub fn load_bank(&mut self, i: usize, bank: usize, data: &[Word]) {
        for (offset, &v) in data.iter().enumerate().take(self.bank_words) {
            self.mem[(bank * self.bank_words + offset) * self.n + i] = v;
        }
    }

    /// Run `program` on every instance; per-instance results in instance
    /// order, bit-identical to sequential
    /// [`crate::array::ArrayMachine::run`] runs.
    pub fn run(&mut self, program: &Program) -> Vec<InstanceResult> {
        self.run_traced(program, &mut NullTracer)
    }

    /// [`ArrayFleet::run`] with observation hooks (see
    /// [`UniFleet::run_traced`] for the event-total contract).
    pub fn run_traced<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
    ) -> Vec<InstanceResult> {
        self.run_inner(program, None, tracer)
            .into_iter()
            .map(|r| r.map(|o| o.stats))
            .collect()
    }

    /// Monte-Carlo entry point: run every instance under its own
    /// transient-fault plan (stalls, memory bit-flips), one plan per
    /// instance.  Results are bit-identical to sequential
    /// [`crate::array::ArrayMachine::run_resilient`] runs with the same
    /// plans.  Plans with permanently failed DPs are rejected per
    /// instance: private-bank sub-types with the same
    /// [`MachineError::DegradationImpossible`] the sequential machine
    /// raises, shared-crossbar sub-types with a typed
    /// `WorkloadUnsupported` (the degraded-replay path is inherently
    /// per-instance — use `run_resilient` for those studies).
    pub fn run_faulted(
        &mut self,
        program: &Program,
        plans: Vec<FaultPlan>,
    ) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
        self.run_faulted_traced(program, plans, &mut NullTracer)
    }

    /// [`ArrayFleet::run_faulted`] with observation hooks.
    pub fn run_faulted_traced<T: Tracer>(
        &mut self,
        program: &Program,
        mut plans: Vec<FaultPlan>,
        tracer: &mut T,
    ) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
        assert_eq!(plans.len(), self.n, "one fault plan per instance");
        // Mirror `run_resilient`: reject permanent failures up front,
        // then fork each plan so the run consumes a decorrelated stream
        // with a fresh injection counter.
        let mut rejected: Vec<Option<MachineError>> = (0..self.n).map(|_| None).collect();
        let mut forks: Vec<FaultPlan> = Vec::with_capacity(self.n);
        for (i, plan) in plans.iter_mut().enumerate() {
            if !plan.failed_dps().is_empty() {
                rejected[i] = Some(match self.subtype.data_topology() {
                    DataTopology::PrivateBanks => MachineError::DegradationImpossible {
                        machine: format!("{} array machine", self.subtype.class_name()),
                        reason: "DP-DM is a direct switch: a failed lane's private bank is \
                                 unreachable from any substitute DP"
                            .to_owned(),
                    },
                    DataTopology::SharedCrossbar => MachineError::unsupported(
                        format!("{} array fleet", self.subtype.class_name()),
                        "degraded replay of failed DPs is per-instance work; \
                         run run_resilient on a sequential machine",
                    ),
                });
            }
            forks.push(plan.fork());
        }
        let results = self.run_inner(program, Some(&mut forks), tracer);
        results
            .into_iter()
            .zip(rejected)
            .map(|(result, rejection)| match rejection {
                Some(e) => Err(e),
                None => result,
            })
            .collect()
    }

    fn run_inner<T: Tracer>(
        &mut self,
        program: &Program,
        mut plans: Option<&mut Vec<FaultPlan>>,
        tracer: &mut T,
    ) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
        let n = self.n;
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let mut st = LaneState::new(n, self.lanes);
        let mut active: Vec<usize> = (0..n).collect();
        // Instances whose plan was rejected never start.
        let mut exec: Vec<usize> = Vec::with_capacity(n);
        let mut snapshot: Vec<Word> = Vec::with_capacity(self.lanes);
        while !active.is_empty() {
            if self.cancel.flag_raised() {
                st.flag_all(&active, tracer);
                break;
            }
            let pc0 = st.pc[active[0]];
            if active.iter().all(|&i| st.pc[i] == pc0) {
                self.array_step(
                    program,
                    &budget,
                    &mut active,
                    &mut exec,
                    &mut snapshot,
                    &mut st,
                    plans.as_deref_mut(),
                    tracer,
                );
            } else {
                let (fleet, budget) = (&mut *self, &budget);
                let plans = &mut plans;
                let snapshot = &mut snapshot;
                st.step_cohorts(&mut active, |st, group| {
                    let mut exec = Vec::with_capacity(group.len());
                    fleet.array_step(
                        program,
                        budget,
                        group,
                        &mut exec,
                        snapshot,
                        st,
                        plans.as_deref_mut(),
                        tracer,
                    );
                });
            }
        }
        st.results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let faults_injected = plans.as_ref().map_or(0, |p| p[i].injected());
                r.expect("every instance retires")
                    .map(|stats| crate::fault::RunOutcome {
                        stats,
                        faults_injected,
                        retries: 0,
                        degraded: false,
                    })
            })
            .collect()
    }

    /// One lockstep step for a pc-uniform group of array instances.
    #[allow(clippy::too_many_arguments)]
    fn array_step<T: Tracer>(
        &mut self,
        program: &Program,
        budget: &RunBudget,
        group: &mut Vec<usize>,
        exec: &mut Vec<usize>,
        snapshot: &mut Vec<Word>,
        st: &mut LaneState,
        mut plans: Option<&mut Vec<FaultPlan>>,
        tracer: &mut T,
    ) {
        let n = self.n;
        let lanes = self.lanes;
        let live = lanes as u64;
        let pc0 = st.pc[group[0]];
        let fetched = program.fetch(pc0);
        let enabled = tracer.enabled();
        exec.clear();
        for &i in group.iter() {
            if st.cycles[i] >= budget.limit() {
                let partial = st.partial(i);
                st.results[i] = Some(Err(budget.trip(st.cycles[i], partial, tracer)));
                continue;
            }
            let Some(_) = fetched else {
                let stats = st.finish(i, n, lanes);
                if enabled {
                    for l in 0..lanes {
                        tracer.sample("dp.alu_ops", st.alu[l * n + i]);
                        tracer.sample(
                            "dp.mem_ops",
                            st.mem_reads[l * n + i] + st.mem_writes[l * n + i],
                        );
                    }
                }
                st.results[i] = Some(Ok(stats));
                continue;
            };
            st.cycles[i] += 1;
            let mut stalled = false;
            if let Some(plans) = plans.as_deref_mut() {
                let plan = &mut plans[i];
                // Mirror `FaultPlan::maybe_flip_memory` against the SoA
                // memory: same draws, same geometry reduction, same
                // trace event.
                if let Some((bank_raw, addr_raw, bit)) = plan.memory_bit_flip() {
                    let bank = (bank_raw % lanes as u64) as usize;
                    let addr = (addr_raw % self.bank_words as u64) as usize;
                    let g = bank * self.bank_words + addr;
                    self.mem[g * n + i] ^= 1 << bit;
                    tracer.record(st.cycles[i], EventKind::FaultInjected(FaultKind::BitFlip));
                }
                // Lockstep SIMD: one stalled lane holds back the whole
                // broadcast.  Ascending short-circuit order matches the
                // sequential live-lane scan (injection counts depend on
                // it).
                stalled = (0..lanes).any(|l| plan.dp_stalled(st.cycles[i], l));
                if stalled {
                    st.stalls[i] += 1;
                    tracer.record(st.cycles[i], EventKind::Stall);
                }
            }
            if !stalled {
                exec.push(i);
            }
        }
        if let Some(instr) = fetched {
            if !exec.is_empty() {
                self.array_execute(instr, pc0, exec, snapshot, st, live, enabled, tracer);
            }
        }
        group.retain(|&i| st.results[i].is_none());
    }

    /// Global-word address resolution mirroring
    /// `BankedMemory::resolve` for this machine's geometry (same typed
    /// error values).
    fn resolve(&self, lane: usize, address: Word) -> Result<usize, MachineError> {
        if address < 0 {
            return Err(MachineError::MemoryOutOfBounds {
                processor: lane,
                address,
                size: self.lanes * self.bank_words,
            });
        }
        let addr = address as usize;
        match self.subtype.data_topology() {
            DataTopology::PrivateBanks => {
                if addr >= self.bank_words {
                    return Err(MachineError::MemoryOutOfBounds {
                        processor: lane,
                        address,
                        size: self.bank_words,
                    });
                }
                Ok(lane * self.bank_words + addr)
            }
            DataTopology::SharedCrossbar => {
                if addr / self.bank_words >= self.lanes {
                    return Err(MachineError::MemoryOutOfBounds {
                        processor: lane,
                        address,
                        size: self.lanes * self.bank_words,
                    });
                }
                Ok(addr)
            }
        }
    }

    /// The decoded-once broadcast: lanes outer, instances inner, so each
    /// `(lane, register)` column is walked contiguously.
    #[allow(clippy::too_many_arguments)]
    fn array_execute<T: Tracer>(
        &mut self,
        instr: Instr,
        pc0: usize,
        exec: &[usize],
        snapshot: &mut Vec<Word>,
        st: &mut LaneState,
        live: u64,
        enabled: bool,
        tracer: &mut T,
    ) {
        let n = self.n;
        let lanes = self.lanes;
        let col = |l: usize, r: u8| (l * NUM_REGS + usize::from(r)) * n;
        let next = pc0 + 1;
        match instr {
            Instr::Send(..) | Instr::Recv(..) => {
                for &i in exec {
                    st.results[i] = Some(Err(MachineError::unsupported(
                        format!("{} array machine", self.subtype.class_name()),
                        "array lanes have no independent control to exchange \
                         asynchronous messages; use getlane",
                    )));
                }
            }
            Instr::GetLane(rd, lane_reg, rs) => {
                let fabric = self.subtype.lane_fabric();
                for &i in exec {
                    // SIMD semantics: every lane reads the
                    // *pre-instruction* value of its source lane.
                    snapshot.clear();
                    for l in 0..lanes {
                        snapshot.push(self.regs[col(l, rs) + i]);
                    }
                    let mut failed = false;
                    for l in 0..lanes {
                        let src = self.regs[col(l, lane_reg) + i];
                        if src < 0 || src as usize >= lanes {
                            st.results[i] = Some(Err(MachineError::RouteDenied {
                                from: l,
                                to: src.max(0) as usize,
                                reason: format!("source lane {src} out of range"),
                            }));
                            failed = true;
                            break;
                        }
                        let src = src as usize;
                        if src != l {
                            if let Err(e) = fabric.route(src, l, lanes) {
                                st.results[i] = Some(Err(e));
                                failed = true;
                                break;
                            }
                            st.messages[i] += 1;
                            if enabled {
                                tracer
                                    .record(st.cycles[i], EventKind::Message { from: src, to: l });
                                tracer.record(st.cycles[i], EventKind::CrossbarTraversal);
                            }
                        }
                        self.regs[col(l, rd) + i] = snapshot[src];
                    }
                    if failed {
                        continue;
                    }
                    st.instructions[i] += live;
                    if enabled {
                        tracer.record_many(st.cycles[i], EventKind::Issue, live);
                    }
                    st.pc[i] = next;
                }
            }
            _ if instr.is_control() => {
                // The IP resolves control flow against the control lane
                // (lane 0 — every lane is alive in a fleet run).
                for &i in exec {
                    st.instructions[i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::Issue);
                    }
                    match instr {
                        Instr::Halt => {
                            let stats = st.finish(i, n, lanes);
                            if enabled {
                                for l in 0..lanes {
                                    tracer.sample("dp.alu_ops", st.alu[l * n + i]);
                                    tracer.sample(
                                        "dp.mem_ops",
                                        st.mem_reads[l * n + i] + st.mem_writes[l * n + i],
                                    );
                                }
                            }
                            st.results[i] = Some(Ok(stats));
                        }
                        Instr::Jmp(t) => st.pc[i] = t,
                        Instr::Beq(a, b, t) => {
                            st.pc[i] = if self.regs[col(0, a) + i] == self.regs[col(0, b) + i] {
                                t
                            } else {
                                next
                            };
                        }
                        Instr::Bne(a, b, t) => {
                            st.pc[i] = if self.regs[col(0, a) + i] != self.regs[col(0, b) + i] {
                                t
                            } else {
                                next
                            };
                        }
                        Instr::Blt(a, b, t) => {
                            st.pc[i] = if self.regs[col(0, a) + i] < self.regs[col(0, b) + i] {
                                t
                            } else {
                                next
                            };
                        }
                        _ => unreachable!("is_control covers halt, jumps and branches"),
                    }
                }
            }
            _ => {
                // Broadcast a local instruction to every lane.  Lanes
                // ascend per instance, so an instance that faults on
                // lane `l` keeps lanes `< l` applied and skips the rest
                // — the sequential `?` propagation, SoA-shaped.
                match instr {
                    Instr::Nop => {}
                    Instr::MovI(rd, imm) => {
                        for l in 0..lanes {
                            let bd = col(l, rd);
                            for run in runs(exec) {
                                self.regs[bd + run.start..bd + run.end].fill(imm);
                            }
                        }
                    }
                    Instr::Mov(rd, rs) => {
                        for l in 0..lanes {
                            let (bd, bs) = (col(l, rd), col(l, rs));
                            for run in runs(exec) {
                                self.regs
                                    .copy_within(bs + run.start..bs + run.end, bd + run.start);
                            }
                        }
                    }
                    Instr::Add(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, kernel::BinOp::Add)
                    }
                    Instr::Sub(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, kernel::BinOp::Sub)
                    }
                    Instr::Mul(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, kernel::BinOp::Mul)
                    }
                    Instr::Min(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, kernel::BinOp::Min)
                    }
                    Instr::Max(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, kernel::BinOp::Max)
                    }
                    Instr::AddI(rd, rs, imm) => {
                        let kernels = self.kernels;
                        for l in 0..lanes {
                            let (bd, bs) = (col(l, rd), col(l, rs));
                            let ac = l * n;
                            for run in runs(exec) {
                                kernel::addi(kernels, &mut self.regs, bd, bs, run.clone(), imm);
                                for i in run {
                                    st.alu[ac + i] += 1;
                                    if enabled {
                                        tracer.record(st.cycles[i], EventKind::AluOp);
                                    }
                                }
                            }
                        }
                    }
                    Instr::LaneId(rd) => {
                        for l in 0..lanes {
                            let bd = col(l, rd);
                            for run in runs(exec) {
                                self.regs[bd + run.start..bd + run.end].fill(l as Word);
                            }
                        }
                    }
                    Instr::Load(rd, rs) => {
                        for l in 0..lanes {
                            let (bd, bs) = (col(l, rd), col(l, rs));
                            let rc = l * n;
                            for &i in exec {
                                if st.results[i].is_some() {
                                    continue;
                                }
                                let address = self.regs[bs + i];
                                match self.resolve(l, address) {
                                    Ok(g) => {
                                        self.regs[bd + i] = self.mem[g * n + i];
                                        st.mem_reads[rc + i] += 1;
                                        if enabled {
                                            tracer.record(st.cycles[i], EventKind::MemRead);
                                        }
                                    }
                                    Err(e) => st.results[i] = Some(Err(e)),
                                }
                            }
                        }
                    }
                    Instr::Store(ra, rs) => {
                        for l in 0..lanes {
                            let (ba, bs) = (col(l, ra), col(l, rs));
                            let wc = l * n;
                            for &i in exec {
                                if st.results[i].is_some() {
                                    continue;
                                }
                                let address = self.regs[ba + i];
                                match self.resolve(l, address) {
                                    Ok(g) => {
                                        self.mem[g * n + i] = self.regs[bs + i];
                                        st.mem_writes[wc + i] += 1;
                                        if enabled {
                                            tracer.record(st.cycles[i], EventKind::MemWrite);
                                        }
                                    }
                                    Err(e) => st.results[i] = Some(Err(e)),
                                }
                            }
                        }
                    }
                    _ => unreachable!("control and fabric instructions handled above"),
                }
                for &i in exec {
                    if st.results[i].is_none() {
                        st.instructions[i] += live;
                        if enabled {
                            tracer.record_many(st.cycles[i], EventKind::Issue, live);
                        }
                        st.pc[i] = next;
                    }
                }
            }
        }
    }

    /// A three-register ALU broadcast over every lane column, swept as
    /// unit-stride kernel runs.
    #[allow(clippy::too_many_arguments)]
    fn lane_alu<T: Tracer>(
        &mut self,
        exec: &[usize],
        st: &mut LaneState,
        enabled: bool,
        tracer: &mut T,
        rd: u8,
        a: u8,
        b: u8,
        op: kernel::BinOp,
    ) {
        let n = self.n;
        let kernels = self.kernels;
        for l in 0..self.lanes {
            let base = l * NUM_REGS * n;
            let (bd, ba, bb) = (
                base + usize::from(rd) * n,
                base + usize::from(a) * n,
                base + usize::from(b) * n,
            );
            let ac = l * n;
            for run in runs(exec) {
                kernel::binop(kernels, &mut self.regs, bd, ba, bb, run.clone(), op);
                for i in run {
                    st.alu[ac + i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::AluOp);
                    }
                }
            }
        }
    }
}

/// One worker chunk of a faulted array-fleet run: its instance range,
/// the sub-fleet (for post-run register/memory inspection) and the
/// per-instance fault-run outcomes for that range.
#[derive(Debug)]
pub struct ArrayFleetChunk {
    /// Global instance range this chunk covered.
    pub range: Range<usize>,
    /// The sub-fleet, post-run (instance `range.start + k` is local `k`).
    pub fleet: ArrayFleet,
    /// Per-instance fault-run outcomes, local order.
    pub outcomes: Vec<Result<crate::fault::RunOutcome, MachineError>>,
}

/// Run `n` faulted array-machine instances as contiguous sub-fleet
/// chunks across worker threads — the [`run_uni_fleet_chunked`] analog
/// for the Monte-Carlo axis.  `threads == 0` resolves via
/// [`fleet_threads`] (with the same `SKILLTAX_FLEET_THREADS` /
/// `SKILLTAX_FLEET_MIN_PER_THREAD` knobs); `init(global, fleet, local)`
/// seeds instance state before the chunk runs and `plan_for(global)`
/// supplies each instance's [`FaultPlan`].  Instances are independent,
/// so chunked ≡ one fleet ≡ `n` sequential
/// [`crate::array::ArrayMachine::run_resilient`] runs, bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn run_array_fleet_chunked<I, P>(
    subtype: ArraySubtype,
    lanes: usize,
    bank_words: usize,
    n: usize,
    cycle_limit: u64,
    cancel: &CancelToken,
    program: &Program,
    kernels: LaneKernels,
    init: I,
    plan_for: P,
    threads: usize,
) -> Vec<ArrayFleetChunk>
where
    I: Fn(usize, &mut ArrayFleet, usize) + Sync,
    P: Fn(usize) -> FaultPlan + Sync,
{
    let threads = if threads == 0 {
        fleet_threads()
    } else {
        threads
    };
    let ranges = chunk_ranges(n, threads, fleet_min_per_thread());
    let workers = ranges.len();
    crate::sweep::parallel_map_with(
        ranges,
        |range| {
            let mut fleet = ArrayFleet::new(subtype, lanes, bank_words, range.len())
                .with_cycle_limit(cycle_limit)
                .with_cancel(cancel.clone())
                .with_kernels(kernels);
            for local in 0..range.len() {
                init(range.start + local, &mut fleet, local);
            }
            let plans = range.clone().map(&plan_for).collect();
            let outcomes = fleet.run_faulted(program, plans);
            ArrayFleetChunk {
                range: range.clone(),
                fleet,
                outcomes,
            }
        },
        workers,
    )
}

/// Flatten chunked Monte-Carlo outcomes back into one per-instance
/// vector in global instance order.
pub fn array_chunked_outcomes(
    chunks: Vec<ArrayFleetChunk>,
) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
    chunks.into_iter().flat_map(|c| c.outcomes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;
    use crate::uniprocessor::UniProcessor;

    fn spin(iters: Word) -> Program {
        let mut asm = Assembler::new();
        asm.movi(0, 0).movi(1, iters);
        asm.label("loop").unwrap();
        asm.emit(Instr::AddI(0, 0, 1));
        asm.blt(0, 1, "loop");
        asm.emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    #[test]
    fn uni_fleet_matches_sequential_spin() {
        let prog = spin(37);
        let mut fleet = UniFleet::new(8, 4);
        let results = fleet.run(&prog);
        let mut seq = UniProcessor::new(4);
        let expected = seq.run(&prog).unwrap();
        for r in results {
            assert_eq!(r.unwrap(), expected);
        }
    }

    #[test]
    fn divergent_branches_regroup_into_cohorts() {
        // Each instance spins for its own bound, read from memory —
        // control flow diverges and re-converges at halt.
        let mut asm = Assembler::new();
        asm.movi(0, 0).movi(2, 0).emit(Instr::Load(1, 2));
        asm.label("loop").unwrap();
        asm.emit(Instr::AddI(0, 0, 1));
        asm.blt(0, 1, "loop");
        asm.emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        let bounds: Vec<Word> = vec![1, 9, 4, 30, 2, 17];
        let mut fleet = UniFleet::new(bounds.len(), 4);
        for (i, &b) in bounds.iter().enumerate() {
            fleet.write_mem(i, 0, b);
        }
        let results = fleet.run(&prog);
        for (i, &b) in bounds.iter().enumerate() {
            let mut m = UniProcessor::new(4);
            m.memory_mut().bank_mut(0).load(&[b]);
            let expected = m.run(&prog).unwrap();
            assert_eq!(results[i].as_ref().unwrap(), &expected, "instance {i}");
            assert_eq!(fleet.reg(i, 0), b, "instance {i} final counter");
        }
    }

    #[test]
    fn watchdog_and_memory_errors_match_sequential() {
        let mut asm = Assembler::new();
        asm.emit(Instr::Jmp(0));
        let forever = asm.assemble().unwrap();
        let mut fleet = UniFleet::new(3, 4).with_cycle_limit(100);
        for r in fleet.run(&forever) {
            match r {
                Err(MachineError::WatchdogTimeout {
                    limit: 100,
                    partial,
                }) => {
                    assert_eq!(partial.cycles, 100);
                }
                other => panic!("expected watchdog, got {other:?}"),
            }
        }
        let mut asm = Assembler::new();
        asm.movi(0, 99).emit(Instr::Load(1, 0)).emit(Instr::Halt);
        let oob = asm.assemble().unwrap();
        let mut fleet = UniFleet::new(2, 4);
        let mut seq = UniProcessor::new(4);
        let expected = seq.run(&oob).unwrap_err();
        for r in fleet.run(&oob) {
            assert_eq!(r.unwrap_err(), expected);
        }
    }

    #[test]
    fn runs_classify_sorted_indices() {
        let idx = [0usize, 1, 2, 5, 6, 9];
        let got: Vec<_> = runs(&idx).collect();
        assert_eq!(got, vec![0..3, 5..7, 9..10]);
        assert!(runs(&[]).next().is_none());
        let dense: Vec<usize> = (0..33).collect();
        assert_eq!(runs(&dense).collect::<Vec<_>>(), vec![0..33]);
        let sparse = [4usize, 8, 12];
        assert_eq!(runs(&sparse).collect::<Vec<_>>(), vec![4..5, 8..9, 12..13]);
    }

    #[test]
    fn wide_kernels_match_scalar_kernels() {
        use super::kernel::{self, BinOp};
        let n = 37usize;
        let seed = |k: usize| (k as Word).wrapping_mul(-0x61c8_8647) ^ ((k as Word) << 3);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max] {
            // Disjoint columns plus every aliasing shape (dst==a,
            // dst==b, all equal): the wide path must match scalar on
            // each, including the sub-block run tail.
            for (bd, ba, bb) in [(0, n, 2 * n), (0, 0, n), (n, n, n), (2 * n, 0, 2 * n)] {
                let mut scalar: Vec<Word> = (0..3 * n).map(seed).collect();
                let mut wide = scalar.clone();
                kernel::binop(LaneKernels::Scalar, &mut scalar, bd, ba, bb, 1..n - 2, op);
                kernel::binop(LaneKernels::Wide, &mut wide, bd, ba, bb, 1..n - 2, op);
                assert_eq!(scalar, wide, "{op:?} bd={bd} ba={ba} bb={bb}");
            }
        }
        let mut scalar: Vec<Word> = (0..2 * n).map(seed).collect();
        let mut wide = scalar.clone();
        kernel::addi(LaneKernels::Scalar, &mut scalar, n, 0, 0..n, -7);
        kernel::addi(LaneKernels::Wide, &mut wide, n, 0, 0..n, -7);
        assert_eq!(scalar, wide);
        kernel::addi(LaneKernels::Scalar, &mut scalar, 0, 0, 3..n, 11);
        kernel::addi(LaneKernels::Wide, &mut wide, 0, 0, 3..n, 11);
        assert_eq!(scalar, wide, "aliased dst==src addi");
    }

    #[test]
    fn scalar_and_wide_fleets_agree() {
        let prog = spin(29);
        let run = |kernels: LaneKernels| {
            let mut fleet = UniFleet::new(24, 2).with_kernels(kernels);
            fleet.run(&prog)
        };
        let scalar = run(LaneKernels::Scalar);
        let wide = run(LaneKernels::Wide);
        for (a, b) in scalar.iter().zip(&wide) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for (n, threads, min) in [(100, 4, 1), (7, 16, 2), (64, 3, 32), (1, 8, 32), (5, 2, 8)] {
            let ranges = chunk_ranges(n, threads, min);
            let mut covered = 0;
            let mut expect_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_start);
                expect_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, n, "n={n} threads={threads} min={min}");
            assert!(ranges.len() <= threads.max(1));
        }
        assert!(chunk_ranges(0, 4, 1).is_empty());
    }

    #[test]
    fn chunked_run_matches_single_fleet() {
        let prog = spin(19);
        let chunks = run_uni_fleet_chunked(
            70,
            4,
            DEFAULT_CYCLE_LIMIT,
            &CancelToken::new(),
            &prog,
            LaneKernels::default(),
            |_, _, _| {},
            4,
        );
        let chunked = chunked_results(chunks);
        let mut fleet = UniFleet::new(70, 4);
        let whole = fleet.run(&prog);
        assert_eq!(chunked.len(), whole.len());
        for (a, b) in chunked.iter().zip(&whole) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn array_fleet_matches_sequential_vector_add() {
        use crate::array::ArrayMachine;
        let mut asm = Assembler::new();
        asm.movi(0, 0)
            .movi(1, 1)
            .movi(2, 2)
            .emit(Instr::Load(3, 0))
            .emit(Instr::Load(4, 1))
            .emit(Instr::Add(5, 3, 4))
            .emit(Instr::Store(2, 5))
            .emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        let mut fleet = ArrayFleet::new(ArraySubtype::I, 4, 4, 6);
        for i in 0..6 {
            for lane in 0..4 {
                fleet.load_bank(i, lane, &[(i * 10 + lane) as Word, 3, 0, 0]);
            }
        }
        let results = fleet.run(&prog);
        for (i, result) in results.iter().enumerate() {
            let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4);
            for lane in 0..4 {
                m.memory_mut()
                    .bank_mut(lane)
                    .load(&[(i * 10 + lane) as Word, 3, 0, 0]);
            }
            let expected = m.run(&prog).unwrap();
            assert_eq!(result.as_ref().unwrap(), &expected, "instance {i}");
            for lane in 0..4 {
                assert_eq!(
                    fleet.mem_word(i, lane * 4 + 2),
                    (i * 10 + lane) as Word + 3,
                    "instance {i} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn faulted_array_fleet_matches_run_resilient() {
        use crate::array::ArrayMachine;
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 100)
            .emit(Instr::Add(1, 1, 0))
            .emit(Instr::Store(0, 1))
            .emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        let seeds = [3u64, 11, 42, 77];
        let plans: Vec<FaultPlan> = seeds
            .iter()
            .map(|&s| FaultPlan::seeded(s).stall_dps(0.3).flip_memory_bits(0.05))
            .collect();
        let mut fleet =
            ArrayFleet::new(ArraySubtype::III, 4, 4, seeds.len()).with_cycle_limit(10_000);
        let outcomes = fleet.run_faulted(&prog, plans.clone());
        for (i, &seed) in seeds.iter().enumerate() {
            let mut m = ArrayMachine::new(ArraySubtype::III, 4, 4).with_cycle_limit(10_000);
            let expected = m
                .run_resilient(
                    &prog,
                    FaultPlan::seeded(seed)
                        .stall_dps(0.3)
                        .flip_memory_bits(0.05),
                )
                .unwrap();
            assert_eq!(outcomes[i].as_ref().unwrap(), &expected, "seed {seed}");
        }
    }
}

//! Fleet-scale structure-of-arrays batch execution (DESIGN.md §14).
//!
//! The shard runner (§10) scales **one big machine** across threads; this
//! module is the complementary axis: **thousands of small machine
//! instances** of the *same* architecture advancing in lockstep, the
//! workload class of parameter sweeps and Monte-Carlo fault studies.
//!
//! Instead of `Vec<Machine>` (one decode, one scheduler pass and one
//! fault hook *per instance per cycle*), fleet state is laid out as
//! structure-of-arrays: one `Vec<Word>` lane per register column and per
//! memory word, indexed `[column * n + instance]`.  While every active
//! instance sits at the same program counter — the common case for
//! data-independent control flow — one fetch+decode drives a tight,
//! vectorizable loop over all instances.  When control flow diverges
//! (data-dependent branches, per-instance stalls), instances are
//! regrouped into pc-cohorts and each cohort keeps the amortized path;
//! the **divergence mask** is the shrinking active list plus the
//! per-instance result slots that retire instances on halt, watchdog,
//! deadline or typed error.
//!
//! The hard contract carried from the scheduler/shard identity work
//! (§9/§10): per-instance [`Stats`], telemetry class totals, and error
//! values are **bit-identical** to running the `n` instances
//! sequentially on the dense reference machines
//! ([`crate::uniprocessor::UniProcessor`], [`crate::array::ArrayMachine`]),
//! for clean runs, watchdog/deadline trips, memory/routing errors, and
//! transient fault plans alike.  `tests/fleet_identity.rs` pins this
//! differentially; the `*/fleet` bench twins gate the counters hard.
//!
//! Fleet×thread composition: instances are independent, so a fleet
//! splits into contiguous instance ranges, one sub-fleet per worker
//! thread ([`run_uni_fleet_chunked`]), honouring `SKILLTAX_FLEET_THREADS`
//! (default: the shared `SKILLTAX_THREADS` resolution).  This composes
//! with `with_shards` rather than replacing it: a sweep of *big*
//! machines shards each machine across threads, a fleet of *small*
//! machines chunks instances across threads.

use std::ops::Range;

use crate::array::ArraySubtype;
use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::fault::FaultPlan;
use crate::isa::{Instr, Word, NUM_REGS};
use crate::mem::DataTopology;
use crate::program::Program;
use crate::telemetry::{EventKind, FaultKind, NullTracer, Tracer};
use crate::uniprocessor::DEFAULT_CYCLE_LIMIT;

/// Per-instance result of a fleet run: the same values a sequential run
/// of that instance on the dense machine would produce.
pub type InstanceResult = Result<Stats, MachineError>;

/// Worker-thread count for fleet chunking: `SKILLTAX_FLEET_THREADS` if
/// set to a positive value, else the shared [`crate::configured_threads`]
/// resolution (`SKILLTAX_THREADS` / `available_parallelism`).
pub fn fleet_threads() -> usize {
    match std::env::var("SKILLTAX_FLEET_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => crate::shard::configured_threads(),
    }
}

/// Minimum instances per worker chunk before a fleet fans out
/// (`SKILLTAX_FLEET_MIN_PER_THREAD`, default 32): tiny fleets stay
/// single-threaded so thread spawn cost never dominates the run.
pub fn fleet_min_per_thread() -> usize {
    match std::env::var("SKILLTAX_FLEET_MIN_PER_THREAD")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => 32,
    }
}

/// Split `n` instances into at most `threads` contiguous ranges of at
/// least `min_per_chunk` instances each (the last range takes the
/// remainder).  Deterministic: depends only on the arguments.
pub fn chunk_ranges(n: usize, threads: usize, min_per_chunk: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let max_chunks = (n / min_per_chunk.max(1)).max(1);
    let k = threads.max(1).min(max_chunks);
    let base = n / k;
    let rem = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for c in 0..k {
        let len = base + usize::from(c < rem);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Per-instance run state shared by the fleet executors: the divergence
/// mask's backing store.  `results[i]` doubles as the retirement flag —
/// an instance leaves the active list the step its slot is written.
struct LaneState {
    pc: Vec<usize>,
    cycles: Vec<u64>,
    instructions: Vec<u64>,
    messages: Vec<u64>,
    stalls: Vec<u64>,
    /// Per-(lane, instance) ALU counter, `[lane * n + i]` (uni: one lane).
    alu: Vec<u64>,
    mem_reads: Vec<u64>,
    mem_writes: Vec<u64>,
    results: Vec<Option<InstanceResult>>,
}

impl LaneState {
    fn new(n: usize, lanes: usize) -> LaneState {
        LaneState {
            pc: vec![0; n],
            cycles: vec![0; n],
            instructions: vec![0; n],
            messages: vec![0; n],
            stalls: vec![0; n],
            alu: vec![0; lanes * n],
            mem_reads: vec![0; lanes * n],
            mem_writes: vec![0; lanes * n],
            results: (0..n).map(|_| None).collect(),
        }
    }

    /// Partial stats exactly as the sequential loops carry them into a
    /// watchdog/cancel error: cycles, instructions, messages and stalls
    /// are live; the ALU/memory counters are only folded in on success.
    fn partial(&self, i: usize) -> Stats {
        Stats {
            cycles: self.cycles[i],
            instructions: self.instructions[i],
            messages: self.messages[i],
            stalls: self.stalls[i],
            ..Stats::default()
        }
    }

    /// Full stats for a cleanly finished instance (`lanes` counter rows).
    fn finish(&self, i: usize, n: usize, lanes: usize) -> Stats {
        let mut stats = self.partial(i);
        for l in 0..lanes {
            stats.alu_ops += self.alu[l * n + i];
            stats.mem_reads += self.mem_reads[l * n + i];
            stats.mem_writes += self.mem_writes[l * n + i];
        }
        stats
    }

    /// Retire every active instance with the asynchronous-flag error,
    /// mirroring the per-cycle flag poll of the sequential loops.
    fn flag_all<T: Tracer>(&mut self, active: &[usize], tracer: &mut T) {
        for &i in active {
            let partial = self.partial(i);
            self.results[i] = Some(Err(flag_trip(self.cycles[i], partial, tracer)));
        }
    }

    /// Regroup `active` into pc-cohorts (stable, ascending instances
    /// within a cohort), run `step` on each, then rebuild the active
    /// list in ascending instance order.
    fn step_cohorts(
        &mut self,
        active: &mut Vec<usize>,
        mut step: impl FnMut(&mut Self, &mut Vec<usize>),
    ) {
        let mut cohorts: Vec<(usize, Vec<usize>)> = Vec::new();
        for &i in active.iter() {
            match cohorts.iter_mut().find(|(p, _)| *p == self.pc[i]) {
                Some((_, group)) => group.push(i),
                None => cohorts.push((self.pc[i], vec![i])),
            }
        }
        active.clear();
        for (_, mut group) in cohorts {
            step(self, &mut group);
            active.extend(group);
        }
        active.sort_unstable();
    }
}

// ---------------------------------------------------------------------------
// Uni-processor fleet
// ---------------------------------------------------------------------------

/// A fleet of `n` lockstep [`crate::uniprocessor::UniProcessor`]
/// instances in structure-of-arrays layout: register column `r` lives at
/// `regs[r * n ..]`, memory word `a` at `mem[a * n ..]`, so a uniform-pc
/// step touches contiguous lanes.
pub struct UniFleet {
    n: usize,
    mem_words: usize,
    cycle_limit: u64,
    cancel: CancelToken,
    regs: Vec<Word>,
    mem: Vec<Word>,
}

impl std::fmt::Debug for UniFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniFleet")
            .field("instances", &self.n)
            .field("mem_words", &self.mem_words)
            .finish()
    }
}

impl UniFleet {
    /// A fleet of `n` zeroed uni-processors, each with `mem_words` of
    /// private data memory.
    pub fn new(n: usize, mem_words: usize) -> UniFleet {
        assert!(n >= 1, "a fleet needs at least one instance");
        UniFleet {
            n,
            mem_words,
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            cancel: CancelToken::new(),
            regs: vec![0; NUM_REGS * n],
            mem: vec![0; mem_words * n],
        }
    }

    /// Override the livelock guard (applied per instance, exactly like
    /// the sequential machine's watchdog).
    pub fn with_cycle_limit(mut self, limit: u64) -> UniFleet {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token: the deadline stops every instance
    /// deterministically at its own cycle count; the flag stops the
    /// whole fleet promptly.
    pub fn with_cancel(mut self, cancel: CancelToken) -> UniFleet {
        self.cancel = cancel;
        self
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.n
    }

    /// A fleet is never empty (the constructor asserts `n >= 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Words of data memory per instance.
    pub fn mem_words(&self) -> usize {
        self.mem_words
    }

    /// Instance `i`'s register `r` (for workload setup / result checks).
    pub fn reg(&self, i: usize, r: u8) -> Word {
        self.regs[usize::from(r) * self.n + i]
    }

    /// Write instance `i`'s register `r`.
    pub fn set_reg(&mut self, i: usize, r: u8, value: Word) {
        self.regs[usize::from(r) * self.n + i] = value;
    }

    /// Instance `i`'s memory word at `addr`.
    pub fn mem_word(&self, i: usize, addr: usize) -> Word {
        self.mem[addr * self.n + i]
    }

    /// Write instance `i`'s memory word at `addr`.
    pub fn write_mem(&mut self, i: usize, addr: usize, value: Word) {
        self.mem[addr * self.n + i] = value;
    }

    /// Load a prefix of instance `i`'s memory (strided column writes —
    /// setup cost, off the run loop).
    pub fn load_mem(&mut self, i: usize, data: &[Word]) {
        for (addr, &v) in data.iter().enumerate().take(self.mem_words) {
            self.mem[addr * self.n + i] = v;
        }
    }

    /// Run `program` on every instance; per-instance results in instance
    /// order, each bit-identical to a sequential
    /// [`crate::uniprocessor::UniProcessor::run`] of that instance.
    pub fn run(&mut self, program: &Program) -> Vec<InstanceResult> {
        self.run_traced(program, &mut NullTracer)
    }

    /// [`UniFleet::run`] with observation hooks.  Events carry each
    /// instance's own cycle stamp; class totals equal the sum of the `n`
    /// sequential traced runs.  (Fleet runs do not emit phase spans —
    /// profile a single instance on the dense machine instead.)
    pub fn run_traced<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
    ) -> Vec<InstanceResult> {
        let n = self.n;
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let mut st = LaneState::new(n, 1);
        let mut active: Vec<usize> = (0..n).collect();
        let mut exec: Vec<usize> = Vec::with_capacity(n);
        while !active.is_empty() {
            if self.cancel.flag_raised() {
                st.flag_all(&active, tracer);
                break;
            }
            let pc0 = st.pc[active[0]];
            if active.iter().all(|&i| st.pc[i] == pc0) {
                self.lockstep_step(program, &budget, &mut active, &mut exec, &mut st, tracer);
            } else {
                let (fleet, budget) = (&mut *self, &budget);
                st.step_cohorts(&mut active, |st, group| {
                    let mut exec = Vec::with_capacity(group.len());
                    fleet.lockstep_step(program, budget, group, &mut exec, st, tracer);
                });
            }
        }
        st.results
            .into_iter()
            .map(|r| r.expect("every instance retires"))
            .collect()
    }

    /// One lockstep step for a pc-uniform `group`: per instance, the
    /// exact sequential iteration order — flag (hoisted to the caller),
    /// budget, fetch, cycle increment, fabric check, issue, execute.
    fn lockstep_step<T: Tracer>(
        &mut self,
        program: &Program,
        budget: &RunBudget,
        group: &mut Vec<usize>,
        exec: &mut Vec<usize>,
        st: &mut LaneState,
        tracer: &mut T,
    ) {
        let n = self.n;
        let pc0 = st.pc[group[0]];
        let fetched = program.fetch(pc0);
        let enabled = tracer.enabled();
        exec.clear();
        for &i in group.iter() {
            if st.cycles[i] >= budget.limit() {
                let partial = st.partial(i);
                st.results[i] = Some(Err(budget.trip(st.cycles[i], partial, tracer)));
                continue;
            }
            let Some(instr) = fetched else {
                // Running off the end is a clean stop.
                let stats = st.finish(i, n, 1);
                if enabled {
                    tracer.sample("dp.alu_ops", stats.alu_ops);
                    tracer.sample("dp.mem_ops", stats.mem_reads + stats.mem_writes);
                }
                st.results[i] = Some(Ok(stats));
                continue;
            };
            st.cycles[i] += 1;
            if instr.uses_dp_dp() {
                st.results[i] = Some(Err(MachineError::RouteDenied {
                    from: 0,
                    to: 0,
                    reason: "a uni-processor has no DP-DP fabric".to_owned(),
                }));
                continue;
            }
            st.instructions[i] += 1;
            if enabled {
                tracer.record(st.cycles[i], EventKind::Issue);
            }
            exec.push(i);
        }
        if let Some(instr) = fetched {
            self.execute(instr, pc0, exec, st, enabled, tracer);
        }
        group.retain(|&i| st.results[i].is_none());
    }

    /// The decoded-once lane loops.  Column bases are hoisted so the
    /// inner loops are flat strided accesses over the instance axis.
    fn execute<T: Tracer>(
        &mut self,
        instr: Instr,
        pc0: usize,
        exec: &[usize],
        st: &mut LaneState,
        enabled: bool,
        tracer: &mut T,
    ) {
        let n = self.n;
        let col = |r: u8| usize::from(r) * n;
        let next = pc0 + 1;
        macro_rules! alu_op {
            ($rd:expr, $body:expr) => {{
                let bd = col($rd);
                #[allow(clippy::redundant_closure_call)]
                for &i in exec {
                    self.regs[bd + i] = $body(i);
                    st.alu[i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::AluOp);
                    }
                    st.pc[i] = next;
                }
            }};
        }
        match instr {
            Instr::Nop => {
                for &i in exec {
                    st.pc[i] = next;
                }
            }
            Instr::Halt => {
                for &i in exec {
                    let stats = st.finish(i, n, 1);
                    if enabled {
                        tracer.sample("dp.alu_ops", stats.alu_ops);
                        tracer.sample("dp.mem_ops", stats.mem_reads + stats.mem_writes);
                    }
                    st.results[i] = Some(Ok(stats));
                }
            }
            Instr::MovI(rd, imm) => {
                let bd = col(rd);
                for &i in exec {
                    self.regs[bd + i] = imm;
                    st.pc[i] = next;
                }
            }
            Instr::Mov(rd, rs) => {
                let (bd, bs) = (col(rd), col(rs));
                for &i in exec {
                    self.regs[bd + i] = self.regs[bs + i];
                    st.pc[i] = next;
                }
            }
            Instr::Add(rd, a, b) => {
                let (ba, bb) = (col(a), col(b));
                alu_op!(rd, |i: usize| self.regs[ba + i]
                    .wrapping_add(self.regs[bb + i]));
            }
            Instr::Sub(rd, a, b) => {
                let (ba, bb) = (col(a), col(b));
                alu_op!(rd, |i: usize| self.regs[ba + i]
                    .wrapping_sub(self.regs[bb + i]));
            }
            Instr::Mul(rd, a, b) => {
                let (ba, bb) = (col(a), col(b));
                alu_op!(rd, |i: usize| self.regs[ba + i]
                    .wrapping_mul(self.regs[bb + i]));
            }
            Instr::Min(rd, a, b) => {
                let (ba, bb) = (col(a), col(b));
                alu_op!(rd, |i: usize| self.regs[ba + i].min(self.regs[bb + i]));
            }
            Instr::Max(rd, a, b) => {
                let (ba, bb) = (col(a), col(b));
                alu_op!(rd, |i: usize| self.regs[ba + i].max(self.regs[bb + i]));
            }
            Instr::AddI(rd, rs, imm) => {
                let bs = col(rs);
                alu_op!(rd, |i: usize| self.regs[bs + i].wrapping_add(imm));
            }
            Instr::Load(rd, rs) => {
                let (bd, bs) = (col(rd), col(rs));
                for &i in exec {
                    let address = self.regs[bs + i];
                    if address < 0 || address as usize >= self.mem_words {
                        st.results[i] = Some(Err(MachineError::MemoryOutOfBounds {
                            processor: 0,
                            address,
                            size: self.mem_words,
                        }));
                        continue;
                    }
                    self.regs[bd + i] = self.mem[address as usize * n + i];
                    st.mem_reads[i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::MemRead);
                    }
                    st.pc[i] = next;
                }
            }
            Instr::Store(ra, rs) => {
                let (ba, bs) = (col(ra), col(rs));
                for &i in exec {
                    let address = self.regs[ba + i];
                    if address < 0 || address as usize >= self.mem_words {
                        st.results[i] = Some(Err(MachineError::MemoryOutOfBounds {
                            processor: 0,
                            address,
                            size: self.mem_words,
                        }));
                        continue;
                    }
                    self.mem[address as usize * n + i] = self.regs[bs + i];
                    st.mem_writes[i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::MemWrite);
                    }
                    st.pc[i] = next;
                }
            }
            Instr::LaneId(rd) => {
                let bd = col(rd);
                for &i in exec {
                    self.regs[bd + i] = 0;
                    st.pc[i] = next;
                }
            }
            Instr::Beq(a, b, t) => {
                let (ba, bb) = (col(a), col(b));
                for &i in exec {
                    st.pc[i] = if self.regs[ba + i] == self.regs[bb + i] {
                        t
                    } else {
                        next
                    };
                }
            }
            Instr::Bne(a, b, t) => {
                let (ba, bb) = (col(a), col(b));
                for &i in exec {
                    st.pc[i] = if self.regs[ba + i] != self.regs[bb + i] {
                        t
                    } else {
                        next
                    };
                }
            }
            Instr::Blt(a, b, t) => {
                let (ba, bb) = (col(a), col(b));
                for &i in exec {
                    st.pc[i] = if self.regs[ba + i] < self.regs[bb + i] {
                        t
                    } else {
                        next
                    };
                }
            }
            Instr::Jmp(t) => {
                for &i in exec {
                    st.pc[i] = t;
                }
            }
            Instr::Send(..) | Instr::Recv(..) | Instr::GetLane(..) => {
                unreachable!("fabric instructions are intercepted before execute")
            }
        }
    }
}

/// One worker chunk of a fleet run: its instance range, the sub-fleet
/// (for post-run register/memory inspection) and the per-instance
/// results for that range.
#[derive(Debug)]
pub struct FleetChunk {
    /// Global instance range this chunk covered.
    pub range: Range<usize>,
    /// The sub-fleet, post-run (instance `range.start + k` is local `k`).
    pub fleet: UniFleet,
    /// Per-instance results, local order.
    pub results: Vec<InstanceResult>,
}

/// Run `n` uni-processor instances of `program` as contiguous sub-fleet
/// chunks across worker threads (`threads == 0` resolves via
/// [`fleet_threads`]).  `init(global_index, fleet, local_index)` seeds
/// each instance before its chunk runs.  Instances are independent, so
/// the chunked run is deterministic and bit-identical to one big fleet —
/// the fleet×thread analog of `with_shards`.
pub fn run_uni_fleet_chunked<I>(
    n: usize,
    mem_words: usize,
    cycle_limit: u64,
    cancel: &CancelToken,
    program: &Program,
    init: I,
    threads: usize,
) -> Vec<FleetChunk>
where
    I: Fn(usize, &mut UniFleet, usize) + Sync,
{
    let threads = if threads == 0 {
        fleet_threads()
    } else {
        threads
    };
    let ranges = chunk_ranges(n, threads, fleet_min_per_thread());
    let workers = ranges.len();
    crate::sweep::parallel_map_with(
        ranges,
        |range| {
            let mut fleet = UniFleet::new(range.len(), mem_words)
                .with_cycle_limit(cycle_limit)
                .with_cancel(cancel.clone());
            for local in 0..range.len() {
                init(range.start + local, &mut fleet, local);
            }
            let results = fleet.run(program);
            FleetChunk {
                range: range.clone(),
                fleet,
                results,
            }
        },
        workers,
    )
}

/// Flatten chunked results back into one per-instance vector in global
/// instance order.
pub fn chunked_results(chunks: Vec<FleetChunk>) -> Vec<InstanceResult> {
    chunks.into_iter().flat_map(|c| c.results).collect()
}

// ---------------------------------------------------------------------------
// Array-machine fleet
// ---------------------------------------------------------------------------

/// A fleet of `n` lockstep [`crate::array::ArrayMachine`] instances
/// (same sub-type, lane count and bank size) in structure-of-arrays
/// layout: lane `l`'s register `r` lives at
/// `regs[(l * NUM_REGS + r) * n ..]`, global memory word `g` at
/// `mem[g * n ..]`.
pub struct ArrayFleet {
    subtype: ArraySubtype,
    lanes: usize,
    bank_words: usize,
    n: usize,
    cycle_limit: u64,
    cancel: CancelToken,
    regs: Vec<Word>,
    mem: Vec<Word>,
}

impl std::fmt::Debug for ArrayFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayFleet")
            .field("subtype", &self.subtype.class_name())
            .field("lanes", &self.lanes)
            .field("instances", &self.n)
            .finish()
    }
}

impl ArrayFleet {
    /// A fleet of `n` zeroed `lanes`-lane array machines with
    /// `bank_words` words per memory bank.
    pub fn new(subtype: ArraySubtype, lanes: usize, bank_words: usize, n: usize) -> ArrayFleet {
        assert!(n >= 1, "a fleet needs at least one instance");
        assert!(lanes >= 1, "an array machine needs at least one lane");
        assert!(bank_words >= 1, "banks need at least one word");
        ArrayFleet {
            subtype,
            lanes,
            bank_words,
            n,
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            cancel: CancelToken::new(),
            regs: vec![0; lanes * NUM_REGS * n],
            mem: vec![0; lanes * bank_words * n],
        }
    }

    /// Override the livelock guard (per instance).
    pub fn with_cycle_limit(mut self, limit: u64) -> ArrayFleet {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token (deadline deterministic per
    /// instance, flag prompt for the whole fleet).
    pub fn with_cancel(mut self, cancel: CancelToken) -> ArrayFleet {
        self.cancel = cancel;
        self
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.n
    }

    /// A fleet is never empty (the constructor asserts `n >= 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lanes per instance.
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Instance `i`, lane `l`, register `r`.
    pub fn lane_reg(&self, i: usize, l: usize, r: u8) -> Word {
        self.regs[(l * NUM_REGS + usize::from(r)) * self.n + i]
    }

    /// Instance `i`'s memory word at global address `g`
    /// (`bank * bank_words + offset`).
    pub fn mem_word(&self, i: usize, g: usize) -> Word {
        self.mem[g * self.n + i]
    }

    /// Load a prefix of instance `i`'s bank `bank`.
    pub fn load_bank(&mut self, i: usize, bank: usize, data: &[Word]) {
        for (offset, &v) in data.iter().enumerate().take(self.bank_words) {
            self.mem[(bank * self.bank_words + offset) * self.n + i] = v;
        }
    }

    /// Run `program` on every instance; per-instance results in instance
    /// order, bit-identical to sequential
    /// [`crate::array::ArrayMachine::run`] runs.
    pub fn run(&mut self, program: &Program) -> Vec<InstanceResult> {
        self.run_traced(program, &mut NullTracer)
    }

    /// [`ArrayFleet::run`] with observation hooks (see
    /// [`UniFleet::run_traced`] for the event-total contract).
    pub fn run_traced<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
    ) -> Vec<InstanceResult> {
        self.run_inner(program, None, tracer)
            .into_iter()
            .map(|r| r.map(|o| o.stats))
            .collect()
    }

    /// Monte-Carlo entry point: run every instance under its own
    /// transient-fault plan (stalls, memory bit-flips), one plan per
    /// instance.  Results are bit-identical to sequential
    /// [`crate::array::ArrayMachine::run_resilient`] runs with the same
    /// plans.  Plans with permanently failed DPs are rejected per
    /// instance: private-bank sub-types with the same
    /// [`MachineError::DegradationImpossible`] the sequential machine
    /// raises, shared-crossbar sub-types with a typed
    /// `WorkloadUnsupported` (the degraded-replay path is inherently
    /// per-instance — use `run_resilient` for those studies).
    pub fn run_faulted(
        &mut self,
        program: &Program,
        plans: Vec<FaultPlan>,
    ) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
        self.run_faulted_traced(program, plans, &mut NullTracer)
    }

    /// [`ArrayFleet::run_faulted`] with observation hooks.
    pub fn run_faulted_traced<T: Tracer>(
        &mut self,
        program: &Program,
        mut plans: Vec<FaultPlan>,
        tracer: &mut T,
    ) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
        assert_eq!(plans.len(), self.n, "one fault plan per instance");
        // Mirror `run_resilient`: reject permanent failures up front,
        // then fork each plan so the run consumes a decorrelated stream
        // with a fresh injection counter.
        let mut rejected: Vec<Option<MachineError>> = (0..self.n).map(|_| None).collect();
        let mut forks: Vec<FaultPlan> = Vec::with_capacity(self.n);
        for (i, plan) in plans.iter_mut().enumerate() {
            if !plan.failed_dps().is_empty() {
                rejected[i] = Some(match self.subtype.data_topology() {
                    DataTopology::PrivateBanks => MachineError::DegradationImpossible {
                        machine: format!("{} array machine", self.subtype.class_name()),
                        reason: "DP-DM is a direct switch: a failed lane's private bank is \
                                 unreachable from any substitute DP"
                            .to_owned(),
                    },
                    DataTopology::SharedCrossbar => MachineError::unsupported(
                        format!("{} array fleet", self.subtype.class_name()),
                        "degraded replay of failed DPs is per-instance work; \
                         run run_resilient on a sequential machine",
                    ),
                });
            }
            forks.push(plan.fork());
        }
        let results = self.run_inner(program, Some(&mut forks), tracer);
        results
            .into_iter()
            .zip(rejected)
            .map(|(result, rejection)| match rejection {
                Some(e) => Err(e),
                None => result,
            })
            .collect()
    }

    fn run_inner<T: Tracer>(
        &mut self,
        program: &Program,
        mut plans: Option<&mut Vec<FaultPlan>>,
        tracer: &mut T,
    ) -> Vec<Result<crate::fault::RunOutcome, MachineError>> {
        let n = self.n;
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let mut st = LaneState::new(n, self.lanes);
        let mut active: Vec<usize> = (0..n).collect();
        // Instances whose plan was rejected never start.
        let mut exec: Vec<usize> = Vec::with_capacity(n);
        let mut snapshot: Vec<Word> = Vec::with_capacity(self.lanes);
        while !active.is_empty() {
            if self.cancel.flag_raised() {
                st.flag_all(&active, tracer);
                break;
            }
            let pc0 = st.pc[active[0]];
            if active.iter().all(|&i| st.pc[i] == pc0) {
                self.array_step(
                    program,
                    &budget,
                    &mut active,
                    &mut exec,
                    &mut snapshot,
                    &mut st,
                    plans.as_deref_mut(),
                    tracer,
                );
            } else {
                let (fleet, budget) = (&mut *self, &budget);
                let plans = &mut plans;
                let snapshot = &mut snapshot;
                st.step_cohorts(&mut active, |st, group| {
                    let mut exec = Vec::with_capacity(group.len());
                    fleet.array_step(
                        program,
                        budget,
                        group,
                        &mut exec,
                        snapshot,
                        st,
                        plans.as_deref_mut(),
                        tracer,
                    );
                });
            }
        }
        st.results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let faults_injected = plans.as_ref().map_or(0, |p| p[i].injected());
                r.expect("every instance retires")
                    .map(|stats| crate::fault::RunOutcome {
                        stats,
                        faults_injected,
                        retries: 0,
                        degraded: false,
                    })
            })
            .collect()
    }

    /// One lockstep step for a pc-uniform group of array instances.
    #[allow(clippy::too_many_arguments)]
    fn array_step<T: Tracer>(
        &mut self,
        program: &Program,
        budget: &RunBudget,
        group: &mut Vec<usize>,
        exec: &mut Vec<usize>,
        snapshot: &mut Vec<Word>,
        st: &mut LaneState,
        mut plans: Option<&mut Vec<FaultPlan>>,
        tracer: &mut T,
    ) {
        let n = self.n;
        let lanes = self.lanes;
        let live = lanes as u64;
        let pc0 = st.pc[group[0]];
        let fetched = program.fetch(pc0);
        let enabled = tracer.enabled();
        exec.clear();
        for &i in group.iter() {
            if st.cycles[i] >= budget.limit() {
                let partial = st.partial(i);
                st.results[i] = Some(Err(budget.trip(st.cycles[i], partial, tracer)));
                continue;
            }
            let Some(_) = fetched else {
                let stats = st.finish(i, n, lanes);
                if enabled {
                    for l in 0..lanes {
                        tracer.sample("dp.alu_ops", st.alu[l * n + i]);
                        tracer.sample(
                            "dp.mem_ops",
                            st.mem_reads[l * n + i] + st.mem_writes[l * n + i],
                        );
                    }
                }
                st.results[i] = Some(Ok(stats));
                continue;
            };
            st.cycles[i] += 1;
            let mut stalled = false;
            if let Some(plans) = plans.as_deref_mut() {
                let plan = &mut plans[i];
                // Mirror `FaultPlan::maybe_flip_memory` against the SoA
                // memory: same draws, same geometry reduction, same
                // trace event.
                if let Some((bank_raw, addr_raw, bit)) = plan.memory_bit_flip() {
                    let bank = (bank_raw % lanes as u64) as usize;
                    let addr = (addr_raw % self.bank_words as u64) as usize;
                    let g = bank * self.bank_words + addr;
                    self.mem[g * n + i] ^= 1 << bit;
                    tracer.record(st.cycles[i], EventKind::FaultInjected(FaultKind::BitFlip));
                }
                // Lockstep SIMD: one stalled lane holds back the whole
                // broadcast.  Ascending short-circuit order matches the
                // sequential live-lane scan (injection counts depend on
                // it).
                stalled = (0..lanes).any(|l| plan.dp_stalled(st.cycles[i], l));
                if stalled {
                    st.stalls[i] += 1;
                    tracer.record(st.cycles[i], EventKind::Stall);
                }
            }
            if !stalled {
                exec.push(i);
            }
        }
        if let Some(instr) = fetched {
            if !exec.is_empty() {
                self.array_execute(instr, pc0, exec, snapshot, st, live, enabled, tracer);
            }
        }
        group.retain(|&i| st.results[i].is_none());
    }

    /// Global-word address resolution mirroring
    /// `BankedMemory::resolve` for this machine's geometry (same typed
    /// error values).
    fn resolve(&self, lane: usize, address: Word) -> Result<usize, MachineError> {
        if address < 0 {
            return Err(MachineError::MemoryOutOfBounds {
                processor: lane,
                address,
                size: self.lanes * self.bank_words,
            });
        }
        let addr = address as usize;
        match self.subtype.data_topology() {
            DataTopology::PrivateBanks => {
                if addr >= self.bank_words {
                    return Err(MachineError::MemoryOutOfBounds {
                        processor: lane,
                        address,
                        size: self.bank_words,
                    });
                }
                Ok(lane * self.bank_words + addr)
            }
            DataTopology::SharedCrossbar => {
                if addr / self.bank_words >= self.lanes {
                    return Err(MachineError::MemoryOutOfBounds {
                        processor: lane,
                        address,
                        size: self.lanes * self.bank_words,
                    });
                }
                Ok(addr)
            }
        }
    }

    /// The decoded-once broadcast: lanes outer, instances inner, so each
    /// `(lane, register)` column is walked contiguously.
    #[allow(clippy::too_many_arguments)]
    fn array_execute<T: Tracer>(
        &mut self,
        instr: Instr,
        pc0: usize,
        exec: &[usize],
        snapshot: &mut Vec<Word>,
        st: &mut LaneState,
        live: u64,
        enabled: bool,
        tracer: &mut T,
    ) {
        let n = self.n;
        let lanes = self.lanes;
        let col = |l: usize, r: u8| (l * NUM_REGS + usize::from(r)) * n;
        let next = pc0 + 1;
        match instr {
            Instr::Send(..) | Instr::Recv(..) => {
                for &i in exec {
                    st.results[i] = Some(Err(MachineError::unsupported(
                        format!("{} array machine", self.subtype.class_name()),
                        "array lanes have no independent control to exchange \
                         asynchronous messages; use getlane",
                    )));
                }
            }
            Instr::GetLane(rd, lane_reg, rs) => {
                let fabric = self.subtype.lane_fabric();
                for &i in exec {
                    // SIMD semantics: every lane reads the
                    // *pre-instruction* value of its source lane.
                    snapshot.clear();
                    for l in 0..lanes {
                        snapshot.push(self.regs[col(l, rs) + i]);
                    }
                    let mut failed = false;
                    for l in 0..lanes {
                        let src = self.regs[col(l, lane_reg) + i];
                        if src < 0 || src as usize >= lanes {
                            st.results[i] = Some(Err(MachineError::RouteDenied {
                                from: l,
                                to: src.max(0) as usize,
                                reason: format!("source lane {src} out of range"),
                            }));
                            failed = true;
                            break;
                        }
                        let src = src as usize;
                        if src != l {
                            if let Err(e) = fabric.route(src, l, lanes) {
                                st.results[i] = Some(Err(e));
                                failed = true;
                                break;
                            }
                            st.messages[i] += 1;
                            if enabled {
                                tracer
                                    .record(st.cycles[i], EventKind::Message { from: src, to: l });
                                tracer.record(st.cycles[i], EventKind::CrossbarTraversal);
                            }
                        }
                        self.regs[col(l, rd) + i] = snapshot[src];
                    }
                    if failed {
                        continue;
                    }
                    st.instructions[i] += live;
                    if enabled {
                        tracer.record_many(st.cycles[i], EventKind::Issue, live);
                    }
                    st.pc[i] = next;
                }
            }
            _ if instr.is_control() => {
                // The IP resolves control flow against the control lane
                // (lane 0 — every lane is alive in a fleet run).
                for &i in exec {
                    st.instructions[i] += 1;
                    if enabled {
                        tracer.record(st.cycles[i], EventKind::Issue);
                    }
                    match instr {
                        Instr::Halt => {
                            let stats = st.finish(i, n, lanes);
                            if enabled {
                                for l in 0..lanes {
                                    tracer.sample("dp.alu_ops", st.alu[l * n + i]);
                                    tracer.sample(
                                        "dp.mem_ops",
                                        st.mem_reads[l * n + i] + st.mem_writes[l * n + i],
                                    );
                                }
                            }
                            st.results[i] = Some(Ok(stats));
                        }
                        Instr::Jmp(t) => st.pc[i] = t,
                        Instr::Beq(a, b, t) => {
                            st.pc[i] = if self.regs[col(0, a) + i] == self.regs[col(0, b) + i] {
                                t
                            } else {
                                next
                            };
                        }
                        Instr::Bne(a, b, t) => {
                            st.pc[i] = if self.regs[col(0, a) + i] != self.regs[col(0, b) + i] {
                                t
                            } else {
                                next
                            };
                        }
                        Instr::Blt(a, b, t) => {
                            st.pc[i] = if self.regs[col(0, a) + i] < self.regs[col(0, b) + i] {
                                t
                            } else {
                                next
                            };
                        }
                        _ => unreachable!("is_control covers halt, jumps and branches"),
                    }
                }
            }
            _ => {
                // Broadcast a local instruction to every lane.  Lanes
                // ascend per instance, so an instance that faults on
                // lane `l` keeps lanes `< l` applied and skips the rest
                // — the sequential `?` propagation, SoA-shaped.
                match instr {
                    Instr::Nop => {}
                    Instr::MovI(rd, imm) => {
                        for l in 0..lanes {
                            let bd = col(l, rd);
                            for &i in exec {
                                self.regs[bd + i] = imm;
                            }
                        }
                    }
                    Instr::Mov(rd, rs) => {
                        for l in 0..lanes {
                            let (bd, bs) = (col(l, rd), col(l, rs));
                            for &i in exec {
                                self.regs[bd + i] = self.regs[bs + i];
                            }
                        }
                    }
                    Instr::Add(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, i64::wrapping_add)
                    }
                    Instr::Sub(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, i64::wrapping_sub)
                    }
                    Instr::Mul(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, i64::wrapping_mul)
                    }
                    Instr::Min(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, |x, y| x.min(y))
                    }
                    Instr::Max(rd, a, b) => {
                        self.lane_alu(exec, st, enabled, tracer, rd, a, b, |x, y| x.max(y))
                    }
                    Instr::AddI(rd, rs, imm) => {
                        for l in 0..lanes {
                            let (bd, bs) = (col(l, rd), col(l, rs));
                            let ac = l * n;
                            for &i in exec {
                                self.regs[bd + i] = self.regs[bs + i].wrapping_add(imm);
                                st.alu[ac + i] += 1;
                                if enabled {
                                    tracer.record(st.cycles[i], EventKind::AluOp);
                                }
                            }
                        }
                    }
                    Instr::LaneId(rd) => {
                        for l in 0..lanes {
                            let bd = col(l, rd);
                            for &i in exec {
                                self.regs[bd + i] = l as Word;
                            }
                        }
                    }
                    Instr::Load(rd, rs) => {
                        for l in 0..lanes {
                            let (bd, bs) = (col(l, rd), col(l, rs));
                            let rc = l * n;
                            for &i in exec {
                                if st.results[i].is_some() {
                                    continue;
                                }
                                let address = self.regs[bs + i];
                                match self.resolve(l, address) {
                                    Ok(g) => {
                                        self.regs[bd + i] = self.mem[g * n + i];
                                        st.mem_reads[rc + i] += 1;
                                        if enabled {
                                            tracer.record(st.cycles[i], EventKind::MemRead);
                                        }
                                    }
                                    Err(e) => st.results[i] = Some(Err(e)),
                                }
                            }
                        }
                    }
                    Instr::Store(ra, rs) => {
                        for l in 0..lanes {
                            let (ba, bs) = (col(l, ra), col(l, rs));
                            let wc = l * n;
                            for &i in exec {
                                if st.results[i].is_some() {
                                    continue;
                                }
                                let address = self.regs[ba + i];
                                match self.resolve(l, address) {
                                    Ok(g) => {
                                        self.mem[g * n + i] = self.regs[bs + i];
                                        st.mem_writes[wc + i] += 1;
                                        if enabled {
                                            tracer.record(st.cycles[i], EventKind::MemWrite);
                                        }
                                    }
                                    Err(e) => st.results[i] = Some(Err(e)),
                                }
                            }
                        }
                    }
                    _ => unreachable!("control and fabric instructions handled above"),
                }
                for &i in exec {
                    if st.results[i].is_none() {
                        st.instructions[i] += live;
                        if enabled {
                            tracer.record_many(st.cycles[i], EventKind::Issue, live);
                        }
                        st.pc[i] = next;
                    }
                }
            }
        }
    }

    /// A three-register ALU broadcast over every lane column.
    #[allow(clippy::too_many_arguments)]
    fn lane_alu<T: Tracer>(
        &mut self,
        exec: &[usize],
        st: &mut LaneState,
        enabled: bool,
        tracer: &mut T,
        rd: u8,
        a: u8,
        b: u8,
        op: impl Fn(Word, Word) -> Word,
    ) {
        let n = self.n;
        for l in 0..self.lanes {
            let base = l * NUM_REGS * n;
            let (bd, ba, bb) = (
                base + usize::from(rd) * n,
                base + usize::from(a) * n,
                base + usize::from(b) * n,
            );
            let ac = l * n;
            for &i in exec {
                self.regs[bd + i] = op(self.regs[ba + i], self.regs[bb + i]);
                st.alu[ac + i] += 1;
                if enabled {
                    tracer.record(st.cycles[i], EventKind::AluOp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;
    use crate::uniprocessor::UniProcessor;

    fn spin(iters: Word) -> Program {
        let mut asm = Assembler::new();
        asm.movi(0, 0).movi(1, iters);
        asm.label("loop").unwrap();
        asm.emit(Instr::AddI(0, 0, 1));
        asm.blt(0, 1, "loop");
        asm.emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    #[test]
    fn uni_fleet_matches_sequential_spin() {
        let prog = spin(37);
        let mut fleet = UniFleet::new(8, 4);
        let results = fleet.run(&prog);
        let mut seq = UniProcessor::new(4);
        let expected = seq.run(&prog).unwrap();
        for r in results {
            assert_eq!(r.unwrap(), expected);
        }
    }

    #[test]
    fn divergent_branches_regroup_into_cohorts() {
        // Each instance spins for its own bound, read from memory —
        // control flow diverges and re-converges at halt.
        let mut asm = Assembler::new();
        asm.movi(0, 0).movi(2, 0).emit(Instr::Load(1, 2));
        asm.label("loop").unwrap();
        asm.emit(Instr::AddI(0, 0, 1));
        asm.blt(0, 1, "loop");
        asm.emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        let bounds: Vec<Word> = vec![1, 9, 4, 30, 2, 17];
        let mut fleet = UniFleet::new(bounds.len(), 4);
        for (i, &b) in bounds.iter().enumerate() {
            fleet.write_mem(i, 0, b);
        }
        let results = fleet.run(&prog);
        for (i, &b) in bounds.iter().enumerate() {
            let mut m = UniProcessor::new(4);
            m.memory_mut().bank_mut(0).load(&[b]);
            let expected = m.run(&prog).unwrap();
            assert_eq!(results[i].as_ref().unwrap(), &expected, "instance {i}");
            assert_eq!(fleet.reg(i, 0), b, "instance {i} final counter");
        }
    }

    #[test]
    fn watchdog_and_memory_errors_match_sequential() {
        let mut asm = Assembler::new();
        asm.emit(Instr::Jmp(0));
        let forever = asm.assemble().unwrap();
        let mut fleet = UniFleet::new(3, 4).with_cycle_limit(100);
        for r in fleet.run(&forever) {
            match r {
                Err(MachineError::WatchdogTimeout {
                    limit: 100,
                    partial,
                }) => {
                    assert_eq!(partial.cycles, 100);
                }
                other => panic!("expected watchdog, got {other:?}"),
            }
        }
        let mut asm = Assembler::new();
        asm.movi(0, 99).emit(Instr::Load(1, 0)).emit(Instr::Halt);
        let oob = asm.assemble().unwrap();
        let mut fleet = UniFleet::new(2, 4);
        let mut seq = UniProcessor::new(4);
        let expected = seq.run(&oob).unwrap_err();
        for r in fleet.run(&oob) {
            assert_eq!(r.unwrap_err(), expected);
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for (n, threads, min) in [(100, 4, 1), (7, 16, 2), (64, 3, 32), (1, 8, 32), (5, 2, 8)] {
            let ranges = chunk_ranges(n, threads, min);
            let mut covered = 0;
            let mut expect_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_start);
                expect_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, n, "n={n} threads={threads} min={min}");
            assert!(ranges.len() <= threads.max(1));
        }
        assert!(chunk_ranges(0, 4, 1).is_empty());
    }

    #[test]
    fn chunked_run_matches_single_fleet() {
        let prog = spin(19);
        let chunks = run_uni_fleet_chunked(
            70,
            4,
            DEFAULT_CYCLE_LIMIT,
            &CancelToken::new(),
            &prog,
            |_, _, _| {},
            4,
        );
        let chunked = chunked_results(chunks);
        let mut fleet = UniFleet::new(70, 4);
        let whole = fleet.run(&prog);
        assert_eq!(chunked.len(), whole.len());
        for (a, b) in chunked.iter().zip(&whole) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn array_fleet_matches_sequential_vector_add() {
        use crate::array::ArrayMachine;
        let mut asm = Assembler::new();
        asm.movi(0, 0)
            .movi(1, 1)
            .movi(2, 2)
            .emit(Instr::Load(3, 0))
            .emit(Instr::Load(4, 1))
            .emit(Instr::Add(5, 3, 4))
            .emit(Instr::Store(2, 5))
            .emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        let mut fleet = ArrayFleet::new(ArraySubtype::I, 4, 4, 6);
        for i in 0..6 {
            for lane in 0..4 {
                fleet.load_bank(i, lane, &[(i * 10 + lane) as Word, 3, 0, 0]);
            }
        }
        let results = fleet.run(&prog);
        for i in 0..6 {
            let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4);
            for lane in 0..4 {
                m.memory_mut()
                    .bank_mut(lane)
                    .load(&[(i * 10 + lane) as Word, 3, 0, 0]);
            }
            let expected = m.run(&prog).unwrap();
            assert_eq!(results[i].as_ref().unwrap(), &expected, "instance {i}");
            for lane in 0..4 {
                assert_eq!(
                    fleet.mem_word(i, lane * 4 + 2),
                    (i * 10 + lane) as Word + 3,
                    "instance {i} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn faulted_array_fleet_matches_run_resilient() {
        use crate::array::ArrayMachine;
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 100)
            .emit(Instr::Add(1, 1, 0))
            .emit(Instr::Store(0, 1))
            .emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        let seeds = [3u64, 11, 42, 77];
        let plans: Vec<FaultPlan> = seeds
            .iter()
            .map(|&s| FaultPlan::seeded(s).stall_dps(0.3).flip_memory_bits(0.05))
            .collect();
        let mut fleet =
            ArrayFleet::new(ArraySubtype::III, 4, 4, seeds.len()).with_cycle_limit(10_000);
        let outcomes = fleet.run_faulted(&prog, plans.clone());
        for (i, &seed) in seeds.iter().enumerate() {
            let mut m = ArrayMachine::new(ArraySubtype::III, 4, 4).with_cycle_limit(10_000);
            let expected = m
                .run_resilient(
                    &prog,
                    FaultPlan::seeded(seed)
                        .stall_dps(0.3)
                        .flip_memory_bits(0.05),
                )
                .unwrap();
            assert_eq!(outcomes[i].as_ref().unwrap(), &expected, "seed {seed}");
        }
    }
}

//! The data processor: a register file plus an ALU that executes the
//! non-fabric instructions against a banked memory.

use crate::error::MachineError;
use crate::isa::{Instr, Reg, Word, NUM_REGS};
use crate::mem::BankedMemory;
use crate::telemetry::{EventKind, Tracer};

/// What the processor should do after executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalOutcome {
    /// Advance to the next instruction.
    Next,
    /// Jump to the given instruction index.
    Branch(usize),
    /// Stop.
    Halt,
}

/// A data processor: registers, ALU, and its lane identity.
#[derive(Debug, Clone)]
pub struct DataProcessor {
    regs: [Word; NUM_REGS],
    lane: usize,
    alu_ops: u64,
    mem_reads: u64,
    mem_writes: u64,
}

impl DataProcessor {
    /// A zeroed processor with the given lane index.
    pub fn new(lane: usize) -> DataProcessor {
        DataProcessor {
            regs: [0; NUM_REGS],
            lane,
            alu_ops: 0,
            mem_reads: 0,
            mem_writes: 0,
        }
    }

    /// This processor's lane index.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Read a register.
    pub fn reg(&self, r: Reg) -> Word {
        self.regs[usize::from(r)]
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: Reg, value: Word) {
        self.regs[usize::from(r)] = value;
    }

    /// (alu, mem reads, mem writes) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.alu_ops, self.mem_reads, self.mem_writes)
    }

    /// Zero the register file and operation counters, keeping the lane
    /// identity — a pooled machine reuses the processor across requests.
    pub fn reset(&mut self) {
        self.regs = [0; NUM_REGS];
        self.alu_ops = 0;
        self.mem_reads = 0;
        self.mem_writes = 0;
    }

    /// Execute one *local* instruction (everything except the DP–DP fabric
    /// instructions, which need machine-level context).
    ///
    /// # Panics
    /// Panics if handed a fabric instruction (`Send`/`Recv`/`GetLane`);
    /// machines must intercept those first.
    pub fn execute_local(
        &mut self,
        instr: Instr,
        mem: &mut BankedMemory,
    ) -> Result<LocalOutcome, MachineError> {
        debug_assert!(
            !instr.uses_dp_dp(),
            "fabric instruction reached execute_local"
        );
        match instr {
            Instr::Nop => Ok(LocalOutcome::Next),
            Instr::Halt => Ok(LocalOutcome::Halt),
            Instr::MovI(rd, imm) => {
                self.set_reg(rd, imm);
                Ok(LocalOutcome::Next)
            }
            Instr::Mov(rd, rs) => {
                self.set_reg(rd, self.reg(rs));
                Ok(LocalOutcome::Next)
            }
            Instr::Add(rd, a, b) => self.alu(rd, self.reg(a).wrapping_add(self.reg(b))),
            Instr::Sub(rd, a, b) => self.alu(rd, self.reg(a).wrapping_sub(self.reg(b))),
            Instr::Mul(rd, a, b) => self.alu(rd, self.reg(a).wrapping_mul(self.reg(b))),
            Instr::Min(rd, a, b) => self.alu(rd, self.reg(a).min(self.reg(b))),
            Instr::Max(rd, a, b) => self.alu(rd, self.reg(a).max(self.reg(b))),
            Instr::AddI(rd, rs, imm) => self.alu(rd, self.reg(rs).wrapping_add(imm)),
            Instr::Load(rd, rs) => {
                let value = mem.read(self.lane, self.reg(rs))?;
                self.mem_reads += 1;
                self.set_reg(rd, value);
                Ok(LocalOutcome::Next)
            }
            Instr::Store(ra, rs) => {
                mem.write(self.lane, self.reg(ra), self.reg(rs))?;
                self.mem_writes += 1;
                Ok(LocalOutcome::Next)
            }
            Instr::LaneId(rd) => {
                self.set_reg(rd, self.lane as Word);
                Ok(LocalOutcome::Next)
            }
            Instr::Beq(a, b, t) => Ok(if self.reg(a) == self.reg(b) {
                LocalOutcome::Branch(t)
            } else {
                LocalOutcome::Next
            }),
            Instr::Bne(a, b, t) => Ok(if self.reg(a) != self.reg(b) {
                LocalOutcome::Branch(t)
            } else {
                LocalOutcome::Next
            }),
            Instr::Blt(a, b, t) => Ok(if self.reg(a) < self.reg(b) {
                LocalOutcome::Branch(t)
            } else {
                LocalOutcome::Next
            }),
            Instr::Jmp(t) => Ok(LocalOutcome::Branch(t)),
            Instr::Send(..) | Instr::Recv(..) | Instr::GetLane(..) => {
                unreachable!("fabric instructions are intercepted by the machine")
            }
        }
    }

    /// [`DataProcessor::execute_local`] plus event emission: diffs the
    /// internal counters across the call and records one `AluOp` /
    /// `MemRead` / `MemWrite` event per increment.  With a disabled
    /// tracer this is exactly `execute_local` (the diffing is skipped).
    pub fn execute_traced<T: Tracer>(
        &mut self,
        instr: Instr,
        mem: &mut BankedMemory,
        cycle: u64,
        tracer: &mut T,
    ) -> Result<LocalOutcome, MachineError> {
        if !tracer.enabled() {
            return self.execute_local(instr, mem);
        }
        let before = self.counters();
        let outcome = self.execute_local(instr, mem);
        let after = self.counters();
        tracer.record_many(cycle, EventKind::AluOp, after.0 - before.0);
        tracer.record_many(cycle, EventKind::MemRead, after.1 - before.1);
        tracer.record_many(cycle, EventKind::MemWrite, after.2 - before.2);
        outcome
    }

    fn alu(&mut self, rd: Reg, value: Word) -> Result<LocalOutcome, MachineError> {
        self.alu_ops += 1;
        self.set_reg(rd, value);
        Ok(LocalOutcome::Next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DataTopology;

    fn mem() -> BankedMemory {
        BankedMemory::new(2, 16, DataTopology::PrivateBanks)
    }

    #[test]
    fn arithmetic_executes() {
        let mut dp = DataProcessor::new(0);
        let mut m = mem();
        dp.execute_local(Instr::MovI(0, 6), &mut m).unwrap();
        dp.execute_local(Instr::MovI(1, 7), &mut m).unwrap();
        dp.execute_local(Instr::Mul(2, 0, 1), &mut m).unwrap();
        assert_eq!(dp.reg(2), 42);
        dp.execute_local(Instr::Sub(3, 2, 1), &mut m).unwrap();
        assert_eq!(dp.reg(3), 35);
        dp.execute_local(Instr::Min(4, 0, 1), &mut m).unwrap();
        dp.execute_local(Instr::Max(5, 0, 1), &mut m).unwrap();
        assert_eq!((dp.reg(4), dp.reg(5)), (6, 7));
        assert_eq!(dp.counters().0, 4);
    }

    #[test]
    fn wrapping_arithmetic_never_panics() {
        let mut dp = DataProcessor::new(0);
        let mut m = mem();
        dp.set_reg(0, Word::MAX);
        dp.set_reg(1, 1);
        dp.execute_local(Instr::Add(2, 0, 1), &mut m).unwrap();
        assert_eq!(dp.reg(2), Word::MIN);
    }

    #[test]
    fn loads_and_stores_hit_the_lane_bank() {
        let mut dp = DataProcessor::new(1);
        let mut m = mem();
        dp.set_reg(0, 3); // address
        dp.set_reg(1, 99); // value
        dp.execute_local(Instr::Store(0, 1), &mut m).unwrap();
        assert_eq!(m.bank(1).contents()[3], 99);
        dp.execute_local(Instr::Load(2, 0), &mut m).unwrap();
        assert_eq!(dp.reg(2), 99);
        assert_eq!(dp.counters(), (0, 1, 1));
    }

    #[test]
    fn branches_report_outcomes() {
        let mut dp = DataProcessor::new(0);
        let mut m = mem();
        dp.set_reg(0, 1);
        dp.set_reg(1, 2);
        assert_eq!(
            dp.execute_local(Instr::Blt(0, 1, 9), &mut m).unwrap(),
            LocalOutcome::Branch(9)
        );
        assert_eq!(
            dp.execute_local(Instr::Beq(0, 1, 9), &mut m).unwrap(),
            LocalOutcome::Next
        );
        assert_eq!(
            dp.execute_local(Instr::Jmp(4), &mut m).unwrap(),
            LocalOutcome::Branch(4)
        );
        assert_eq!(
            dp.execute_local(Instr::Halt, &mut m).unwrap(),
            LocalOutcome::Halt
        );
    }

    #[test]
    fn lane_id_reads_back() {
        let mut dp = DataProcessor::new(7);
        let mut m = BankedMemory::new(8, 4, DataTopology::PrivateBanks);
        dp.execute_local(Instr::LaneId(5), &mut m).unwrap();
        assert_eq!(dp.reg(5), 7);
    }

    #[test]
    fn memory_errors_propagate() {
        let mut dp = DataProcessor::new(0);
        let mut m = mem();
        dp.set_reg(0, 1_000);
        assert!(dp.execute_local(Instr::Load(1, 0), &mut m).is_err());
    }
}

//! The VLIW array machine — the control style of Montium and PADDI.
//!
//! Several surveyed IAP machines are *not* SIMD broadcasters: "a
//! sequencer controls the operations of the data-path, interconnects and
//! the memory units in a VLIW fashion" (Montium), "a global instruction
//! sequencer provides instructions to all the processors in a VLIW
//! fashion" (PADDI).  One instruction processor still issues one stream —
//! so the machine classifies as IAP — but each cycle's *bundle* carries a
//! different operation per data processor.
//!
//! Behaviourally VLIW sits between SIMD and MIMD: lanes may do different
//! work each cycle (unlike SIMD) but cannot diverge in control flow
//! (unlike MIMD) — the bundle stream is single.  The tests pin both
//! sides of that boundary.

use skilltax_model::{ArchSpec, Count, Link, Relation};

use crate::array::ArraySubtype;
use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::dp::{DataProcessor, LocalOutcome};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::isa::{Instr, Word};
use crate::mem::BankedMemory;
use crate::telemetry::NullTracer;
use crate::uniprocessor::DEFAULT_CYCLE_LIMIT;

/// One VLIW bundle: one slot per lane plus an optional sequencer action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bundle {
    /// Per-lane operations (`None` = lane idles this cycle).  Control-flow
    /// instructions are not allowed in lane slots.
    pub slots: Vec<Option<Instr>>,
    /// Sequencer control for this cycle (branch/halt), evaluated against
    /// lane 0's registers.  `None` = fall through.
    pub control: Option<Instr>,
}

impl Bundle {
    /// A bundle with every lane idle.
    pub fn nop(lanes: usize) -> Bundle {
        Bundle {
            slots: vec![None; lanes],
            control: None,
        }
    }

    /// A bundle carrying the same op in every slot (the SIMD special case
    /// of VLIW).
    pub fn broadcast(lanes: usize, instr: Instr) -> Bundle {
        Bundle {
            slots: vec![Some(instr); lanes],
            control: None,
        }
    }
}

/// A VLIW program: a list of bundles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VliwProgram {
    bundles: Vec<Bundle>,
}

impl VliwProgram {
    /// Validate a bundle list for a machine of `lanes` lanes.
    pub fn new(bundles: Vec<Bundle>, lanes: usize) -> Result<VliwProgram, MachineError> {
        for (at, bundle) in bundles.iter().enumerate() {
            if bundle.slots.len() != lanes {
                return Err(MachineError::config(format!(
                    "bundle {at} has {} slots for {lanes} lanes",
                    bundle.slots.len()
                )));
            }
            for (lane, slot) in bundle.slots.iter().enumerate() {
                if let Some(instr) = slot {
                    if instr.is_control() {
                        return Err(MachineError::config(format!(
                            "bundle {at}, lane {lane}: control flow belongs to the \
                             sequencer slot, not a lane slot ({instr})"
                        )));
                    }
                    if instr.uses_dp_dp() {
                        return Err(MachineError::config(format!(
                            "bundle {at}, lane {lane}: fabric ops are not modelled in \
                             VLIW slots ({instr})"
                        )));
                    }
                    if !instr.registers_valid() {
                        return Err(MachineError::BadRegister {
                            at,
                            instr: instr.to_string(),
                        });
                    }
                }
            }
            if let Some(ctrl) = &bundle.control {
                if !ctrl.is_control() {
                    return Err(MachineError::config(format!(
                        "bundle {at}: sequencer slot holds a non-control op ({ctrl})"
                    )));
                }
                let target = match *ctrl {
                    Instr::Beq(_, _, t)
                    | Instr::Bne(_, _, t)
                    | Instr::Blt(_, _, t)
                    | Instr::Jmp(t) => Some(t),
                    _ => None,
                };
                if let Some(t) = target {
                    if t >= bundles.len() {
                        return Err(MachineError::BadBranchTarget {
                            at,
                            target: t,
                            len: bundles.len(),
                        });
                    }
                }
            }
        }
        Ok(VliwProgram { bundles })
    }

    /// Number of bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }
}

/// The VLIW array machine: one sequencer, `n` heterogeneous lane slots.
#[derive(Debug)]
pub struct VliwMachine {
    subtype: ArraySubtype,
    lanes: Vec<DataProcessor>,
    mem: BankedMemory,
    cycle_limit: u64,
    cancel: CancelToken,
}

impl VliwMachine {
    /// A VLIW machine with `lanes` data processors.
    pub fn new(subtype: ArraySubtype, lanes: usize, bank_words: usize) -> VliwMachine {
        assert!(lanes >= 1);
        VliwMachine {
            subtype,
            lanes: (0..lanes).map(DataProcessor::new).collect(),
            mem: BankedMemory::new(lanes, bank_words, subtype.data_topology()),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            cancel: CancelToken::new(),
        }
    }

    /// Override the livelock guard.
    pub fn with_cycle_limit(mut self, limit: u64) -> VliwMachine {
        self.cycle_limit = limit;
        self
    }

    /// Attach a cancellation token: a deadline stops the run after that
    /// exact bundle count; a raised flag stops it at the next cycle poll.
    pub fn with_cancel(mut self, cancel: CancelToken) -> VliwMachine {
        self.cancel = cancel;
        self
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The banked memory.
    pub fn memory_mut(&mut self) -> &mut BankedMemory {
        &mut self.mem
    }

    /// The banked memory.
    pub fn memory(&self) -> &BankedMemory {
        &self.mem
    }

    /// A lane's register after a run.
    pub fn lane_reg(&self, lane: usize, r: u8) -> Word {
        self.lanes[lane].reg(r)
    }

    /// Structural spec: a VLIW machine is still 1 IP commanding n DPs, so
    /// it classifies as its array sub-type — the taxonomy does not (and
    /// per the paper, should not) distinguish issue style.
    pub fn spec(&self) -> ArchSpec {
        let n = (self.lanes.len() as u32).max(2);
        let dp_dm = match self.subtype.data_topology() {
            crate::mem::DataTopology::PrivateBanks => Link::direct_between(n, n),
            crate::mem::DataTopology::SharedCrossbar => Link::crossbar_between(n, n),
        };
        let dp_dp = match self.subtype.lane_fabric() {
            crate::interconnect::FabricTopology::None => Link::None,
            _ => Link::crossbar_between(n, n),
        };
        ArchSpec::builder(format!("vliw-{}x{}", self.subtype.class_name(), n))
            .ips(Count::one())
            .dps(Count::fixed(n))
            .link(Relation::IpDp, Link::direct_between(1, n))
            .link(Relation::IpIm, Link::direct_between(1, 1))
            .link(Relation::DpDm, dp_dm)
            .link(Relation::DpDp, dp_dp)
            .build_unchecked()
    }

    /// Run a VLIW program.
    pub fn run(&mut self, program: &VliwProgram) -> Result<Stats, MachineError> {
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let mut stats = Stats::default();
        let mut pc = 0usize;
        loop {
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, &mut NullTracer));
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, &mut NullTracer));
            }
            let Some(bundle) = program.bundles.get(pc) else {
                break;
            };
            stats.cycles += 1;
            for (lane, slot) in bundle.slots.iter().enumerate() {
                if let Some(instr) = slot {
                    stats.instructions += 1;
                    match self.lanes[lane].execute_local(*instr, &mut self.mem)? {
                        LocalOutcome::Next => {}
                        other => unreachable!("lane slot produced {other:?}"),
                    }
                } else {
                    stats.stalls += 1;
                }
            }
            match bundle.control {
                None => pc += 1,
                Some(ctrl) => {
                    stats.instructions += 1;
                    match self.lanes[0].execute_local(ctrl, &mut self.mem)? {
                        LocalOutcome::Next => pc += 1,
                        LocalOutcome::Branch(t) => pc = t,
                        LocalOutcome::Halt => break,
                    }
                }
            }
        }
        for lane in &self.lanes {
            let (alu, mr, mw) = lane.counters();
            stats.alu_ops += alu;
            stats.mem_reads += mr;
            stats.mem_writes += mw;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_bundle_does_different_work_per_lane() {
        // Lane 0 adds, lane 1 multiplies, lane 2 idles — one stream.
        let mut m = VliwMachine::new(ArraySubtype::I, 3, 4);
        let bundles = vec![
            Bundle {
                slots: vec![Some(Instr::MovI(0, 6)), Some(Instr::MovI(0, 6)), None],
                control: None,
            },
            Bundle {
                slots: vec![Some(Instr::MovI(1, 7)), Some(Instr::MovI(1, 7)), None],
                control: None,
            },
            Bundle {
                slots: vec![
                    Some(Instr::Add(2, 0, 1)),
                    Some(Instr::Mul(2, 0, 1)),
                    Some(Instr::MovI(2, -1)),
                ],
                control: Some(Instr::Halt),
            },
        ];
        let program = VliwProgram::new(bundles, 3).unwrap();
        let stats = m.run(&program).unwrap();
        assert_eq!(m.lane_reg(0, 2), 13);
        assert_eq!(m.lane_reg(1, 2), 42);
        assert_eq!(m.lane_reg(2, 2), -1);
        assert_eq!(stats.cycles, 3);
        assert_eq!(stats.stalls, 2);
    }

    #[test]
    fn sequencer_branches_steer_the_single_stream() {
        // Loop 4 times, incrementing lane counters with different strides.
        let lanes = 2;
        let bundles = vec![
            // 0: init
            Bundle {
                slots: vec![Some(Instr::MovI(0, 0)), Some(Instr::MovI(0, 0))],
                control: None,
            },
            // 1: r1 = loop counter on lane 0 only
            Bundle {
                slots: vec![Some(Instr::MovI(1, 0)), None],
                control: None,
            },
            // 2: body — lane 0 += 1, lane 1 += 10
            Bundle {
                slots: vec![Some(Instr::AddI(0, 0, 1)), Some(Instr::AddI(0, 0, 10))],
                control: None,
            },
            // 3: counter++ and loop while < 4
            Bundle {
                slots: vec![Some(Instr::AddI(1, 1, 1)), None],
                control: None,
            },
            Bundle {
                slots: vec![None, None],
                control: Some(Instr::Blt(1, 2, 2)),
            },
            // 5: r2 = 4 (bound), placed early so register 2 is ready
            Bundle {
                slots: vec![None, None],
                control: Some(Instr::Halt),
            },
        ];
        // Need the bound in lane 0's r2 before the loop test: set it in
        // bundle 1 instead of a late bundle.
        let mut bundles = bundles;
        bundles[1].slots[1] = Some(Instr::Nop);
        bundles[1].slots[0] = Some(Instr::MovI(1, 0));
        bundles[0].slots[0] = Some(Instr::MovI(2, 4));
        let program = VliwProgram::new(bundles, lanes).unwrap();
        let mut m = VliwMachine::new(ArraySubtype::I, lanes, 4);
        // lane 0 r0 starts at whatever MovI(2,4) left: r0 untouched => 0.
        m.run(&program).unwrap();
        assert_eq!(m.lane_reg(0, 0), 4); // 4 iterations of +1
        assert_eq!(m.lane_reg(1, 0), 40); // 4 iterations of +10
    }

    #[test]
    fn control_flow_in_a_lane_slot_is_rejected() {
        let bundles = vec![Bundle {
            slots: vec![Some(Instr::Jmp(0))],
            control: None,
        }];
        assert!(matches!(
            VliwProgram::new(bundles, 1),
            Err(MachineError::BadConfiguration { .. })
        ));
    }

    #[test]
    fn bundle_width_must_match_lane_count() {
        let bundles = vec![Bundle::nop(3)];
        assert!(VliwProgram::new(bundles, 2).is_err());
    }

    #[test]
    fn sequencer_slot_must_hold_control() {
        let bundles = vec![Bundle {
            slots: vec![None],
            control: Some(Instr::Add(0, 1, 2)),
        }];
        assert!(VliwProgram::new(bundles, 1).is_err());
    }

    #[test]
    fn branch_targets_validated_against_bundle_count() {
        let bundles = vec![Bundle {
            slots: vec![None],
            control: Some(Instr::Jmp(9)),
        }];
        assert!(matches!(
            VliwProgram::new(bundles, 1),
            Err(MachineError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn vliw_machine_classifies_as_its_array_subtype() {
        use skilltax_taxonomy::classify;
        for subtype in ArraySubtype::ALL {
            let m = VliwMachine::new(subtype, 4, 4);
            assert_eq!(
                classify(&m.spec()).unwrap().name().to_string(),
                subtype.class_name()
            );
        }
    }

    #[test]
    fn broadcast_bundles_recover_simd_behaviour() {
        let lanes = 4;
        let mut m = VliwMachine::new(ArraySubtype::I, lanes, 4);
        for lane in 0..lanes {
            m.memory_mut().bank_mut(lane).load(&[lane as Word, 100]);
        }
        let bundles = vec![
            Bundle::broadcast(lanes, Instr::MovI(0, 0)),
            Bundle::broadcast(lanes, Instr::MovI(1, 1)),
            Bundle::broadcast(lanes, Instr::Load(2, 0)),
            Bundle::broadcast(lanes, Instr::Load(3, 1)),
            Bundle::broadcast(lanes, Instr::Add(4, 2, 3)),
            Bundle {
                slots: vec![None; lanes],
                control: Some(Instr::Halt),
            },
        ];
        let program = VliwProgram::new(bundles, lanes).unwrap();
        m.run(&program).unwrap();
        for lane in 0..lanes {
            assert_eq!(m.lane_reg(lane, 4), lane as Word + 100);
        }
    }
}

//! The SIMD array machine (IAP-I..IV): one instruction processor
//! broadcasting to `n` data processors.
//!
//! The four sub-types differ exactly as Table I says:
//!
//! | Sub-type | DP–DM | DP–DP |
//! |----------|-------|-------|
//! | IAP-I    | private banks (`n-n`) | none |
//! | IAP-II   | private banks (`n-n`) | crossbar (`nxn`) |
//! | IAP-III  | shared crossbar (`nxn`) | none |
//! | IAP-IV   | shared crossbar (`nxn`) | crossbar (`nxn`) |
//!
//! A lane-exchange instruction (`getlane`) only works where the DP–DP
//! relation has a switch; cross-bank addressing only where DP–DM is a
//! crossbar.  Those are the concrete flexibility differences the paper's
//! scoring abstracts into "+1 per `x`".

use skilltax_model::{ArchSpec, Count, Link, Relation};

use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::dp::{DataProcessor, LocalOutcome};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::fault::{FaultPlan, RunOutcome};
use crate::interconnect::FabricTopology;
use crate::isa::{Instr, Word};
use crate::mem::{BankedMemory, DataTopology};
use crate::profile::Phase;
use crate::program::Program;
use crate::telemetry::{EventKind, FaultKind, NullTracer, Tracer};
use crate::uniprocessor::DEFAULT_CYCLE_LIMIT;

/// The four array sub-types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArraySubtype {
    /// Private banks, no lane exchange.
    I,
    /// Private banks, crossbar lane exchange.
    II,
    /// Shared memory crossbar, no lane exchange.
    III,
    /// Shared memory crossbar and crossbar lane exchange.
    IV,
}

impl ArraySubtype {
    /// All four sub-types.
    pub const ALL: [ArraySubtype; 4] = [
        ArraySubtype::I,
        ArraySubtype::II,
        ArraySubtype::III,
        ArraySubtype::IV,
    ];

    /// DP–DM topology of this sub-type.
    pub fn data_topology(&self) -> DataTopology {
        match self {
            ArraySubtype::I | ArraySubtype::II => DataTopology::PrivateBanks,
            ArraySubtype::III | ArraySubtype::IV => DataTopology::SharedCrossbar,
        }
    }

    /// DP–DP fabric of this sub-type.
    pub fn lane_fabric(&self) -> FabricTopology {
        match self {
            ArraySubtype::I | ArraySubtype::III => FabricTopology::None,
            ArraySubtype::II | ArraySubtype::IV => FabricTopology::Crossbar,
        }
    }

    /// The taxonomy name (`IAP-I`..`IAP-IV`).
    pub fn class_name(&self) -> &'static str {
        match self {
            ArraySubtype::I => "IAP-I",
            ArraySubtype::II => "IAP-II",
            ArraySubtype::III => "IAP-III",
            ArraySubtype::IV => "IAP-IV",
        }
    }
}

/// A SIMD array machine.
#[derive(Debug)]
pub struct ArrayMachine {
    subtype: ArraySubtype,
    lanes: Vec<DataProcessor>,
    mem: BankedMemory,
    cycle_limit: u64,
    dense_reference: bool,
    cancel: CancelToken,
}

impl ArrayMachine {
    /// An array of `lanes` DPs with `bank_words` words per memory bank.
    pub fn new(subtype: ArraySubtype, lanes: usize, bank_words: usize) -> ArrayMachine {
        assert!(lanes >= 1, "an array machine needs at least one lane");
        ArrayMachine {
            subtype,
            lanes: (0..lanes).map(DataProcessor::new).collect(),
            mem: BankedMemory::new(lanes, bank_words, subtype.data_topology()),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            dense_reference: false,
            cancel: CancelToken::new(),
        }
    }

    /// Override the livelock guard.
    pub fn with_cycle_limit(mut self, limit: u64) -> ArrayMachine {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token for subsequent runs (deadline cycles
    /// stop deterministically; the flag stops promptly).
    pub fn with_cancel(mut self, cancel: CancelToken) -> ArrayMachine {
        self.cancel = cancel;
        self
    }

    /// Re-test the alive mask on every lane visit (the dense reference)
    /// instead of iterating the precomputed live-lane set (see DESIGN.md
    /// §9); the two are counter-identical.
    pub fn with_dense_reference(mut self, dense: bool) -> ArrayMachine {
        self.dense_reference = dense;
        self
    }

    /// The sub-type.
    pub fn subtype(&self) -> ArraySubtype {
        self.subtype
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The banked memory (workload setup / result checks).
    pub fn memory_mut(&mut self) -> &mut BankedMemory {
        &mut self.mem
    }

    /// The banked memory.
    pub fn memory(&self) -> &BankedMemory {
        &self.mem
    }

    /// A lane's register, after a run.
    pub fn lane_reg(&self, lane: usize, r: u8) -> Word {
        self.lanes[lane].reg(r)
    }

    /// The structural [`ArchSpec`] of this machine — classifying it yields
    /// the sub-type's taxonomy class (tested in the integration suite).
    pub fn spec(&self) -> ArchSpec {
        let n = self.lanes.len() as u32;
        let dp_dm = match self.subtype.data_topology() {
            DataTopology::PrivateBanks => Link::direct_between(n.max(2), n.max(2)),
            DataTopology::SharedCrossbar => Link::crossbar_between(n.max(2), n.max(2)),
        };
        let dp_dp = match self.subtype.lane_fabric() {
            FabricTopology::None => Link::None,
            _ => Link::crossbar_between(n.max(2), n.max(2)),
        };
        ArchSpec::builder(format!("array-{}x{}", self.subtype.class_name(), n))
            .ips(Count::one())
            .dps(Count::fixed(n.max(2)))
            .link(Relation::IpDp, Link::direct_between(1, n.max(2)))
            .link(Relation::IpIm, Link::direct_between(1, 1))
            .link(Relation::DpDm, dp_dm)
            .link(Relation::DpDp, dp_dp)
            .build_unchecked()
    }

    /// Run one SIMD program: the single IP fetches each instruction and
    /// broadcasts it to every lane.  Control flow is resolved on lane 0
    /// (the canonical SIMD "scalar unit" view).
    pub fn run(&mut self, program: &Program) -> Result<Stats, MachineError> {
        self.run_traced(program, &mut NullTracer)
    }

    /// [`ArrayMachine::run`] with observation hooks; with a [`NullTracer`]
    /// this monomorphises back to the plain broadcast loop.
    pub fn run_traced<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
    ) -> Result<Stats, MachineError> {
        let alive = vec![true; self.lanes.len()];
        self.run_masked(program, &alive, None, tracer)
            .map(|outcome| outcome.stats)
    }

    /// The broadcast loop with a lane-alive mask and optional fault plan.
    /// Control flow follows the first alive lane; a stalled lane stalls the
    /// whole lockstep broadcast for the cycle; exceeding the cycle budget
    /// returns [`MachineError::WatchdogTimeout`] with partial statistics.
    fn run_masked<T: Tracer>(
        &mut self,
        program: &Program,
        alive: &[bool],
        mut faults: Option<&mut FaultPlan>,
        tracer: &mut T,
    ) -> Result<RunOutcome, MachineError> {
        let mut stats = Stats::default();
        let mut pc = 0usize;
        let n = self.lanes.len();
        let ctrl =
            alive
                .iter()
                .position(|&a| a)
                .ok_or_else(|| MachineError::DegradationImpossible {
                    machine: format!("{} array machine", self.subtype.class_name()),
                    reason: "every lane has failed".to_owned(),
                })?;
        // The live-lane set is static for the whole run, so the lockstep
        // loops iterate it directly instead of re-testing `alive` per
        // lane per cycle.  Ascending order keeps the broadcast order —
        // and the stall roll's short-circuit order — identical to the
        // dense mask scan.
        let live_lanes: Vec<usize> = (0..n).filter(|&l| alive[l]).collect();
        let live = live_lanes.len() as u64;
        let base: Vec<(u64, u64, u64)> = self.lanes.iter().map(|l| l.counters()).collect();
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Lanes);
        loop {
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, tracer));
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, tracer));
            }
            let Some(instr) = program.fetch(pc) else {
                break;
            };
            stats.cycles += 1;
            if let Some(plan) = faults.as_deref_mut() {
                if plan.maybe_flip_memory(&mut self.mem) {
                    tracer.record(stats.cycles, EventKind::FaultInjected(FaultKind::BitFlip));
                }
                // Lockstep SIMD: one stalled lane holds back the broadcast.
                let stalled = if self.dense_reference {
                    (0..n).any(|l| alive[l] && plan.dp_stalled(stats.cycles, l))
                } else {
                    live_lanes.iter().any(|&l| plan.dp_stalled(stats.cycles, l))
                };
                if stalled {
                    stats.stalls += 1;
                    tracer.record(stats.cycles, EventKind::Stall);
                    continue;
                }
            }
            match instr {
                Instr::Send(..) | Instr::Recv(..) => {
                    return Err(MachineError::unsupported(
                        format!("{} array machine", self.subtype.class_name()),
                        "array lanes have no independent control to exchange \
                         asynchronous messages; use getlane",
                    ));
                }
                Instr::GetLane(rd, lane_reg, rs) => {
                    let fabric = self.subtype.lane_fabric();
                    // SIMD semantics: every lane reads the *pre-instruction*
                    // value of its source lane's register.
                    let snapshot: Vec<Word> = self.lanes.iter().map(|l| l.reg(rs)).collect();
                    for &lane in &live_lanes {
                        let src = self.lanes[lane].reg(lane_reg);
                        if src < 0 || src as usize >= n {
                            return Err(MachineError::RouteDenied {
                                from: lane,
                                to: src.max(0) as usize,
                                reason: format!("source lane {src} out of range"),
                            });
                        }
                        let src = src as usize;
                        if src != lane {
                            fabric.route(src, lane, n)?;
                            stats.messages += 1;
                            tracer.record(
                                stats.cycles,
                                EventKind::Message {
                                    from: src,
                                    to: lane,
                                },
                            );
                            tracer.record(stats.cycles, EventKind::CrossbarTraversal);
                        }
                        self.lanes[lane].set_reg(rd, snapshot[src]);
                    }
                    stats.instructions += live;
                    tracer.record_many(stats.cycles, EventKind::Issue, live);
                    pc += 1;
                }
                _ if instr.is_control() => {
                    // The IP resolves control flow against the control lane.
                    stats.instructions += 1;
                    tracer.record(stats.cycles, EventKind::Issue);
                    match self.lanes[ctrl].execute_traced(
                        instr,
                        &mut self.mem,
                        stats.cycles,
                        tracer,
                    )? {
                        LocalOutcome::Next => pc += 1,
                        LocalOutcome::Branch(t) => pc = t,
                        LocalOutcome::Halt => break,
                    }
                }
                _ => {
                    for &lane in &live_lanes {
                        match self.lanes[lane].execute_traced(
                            instr,
                            &mut self.mem,
                            stats.cycles,
                            tracer,
                        )? {
                            LocalOutcome::Next => {}
                            other => unreachable!("non-control instr produced {other:?}"),
                        }
                    }
                    stats.instructions += live;
                    tracer.record_many(stats.cycles, EventKind::Issue, live);
                    pc += 1;
                }
            }
        }
        tracer.span_exit(stats.cycles);
        tracer.span_exit(stats.cycles);
        for (lane, dp) in self.lanes.iter().enumerate() {
            let (alu, mr, mw) = dp.counters();
            let (b_alu, b_mr, b_mw) = base[lane];
            stats.alu_ops += alu - b_alu;
            stats.mem_reads += mr - b_mr;
            stats.mem_writes += mw - b_mw;
            if tracer.enabled() && alive[lane] {
                tracer.sample("dp.alu_ops", alu - b_alu);
                tracer.sample("dp.mem_ops", (mr - b_mr) + (mw - b_mw));
            }
        }
        let faults_injected = faults.as_ref().map_or(0, |p| p.injected());
        Ok(RunOutcome {
            stats,
            faults_injected,
            retries: 0,
            degraded: false,
        })
    }

    /// Run one SIMD program under a fault plan, degrading gracefully where
    /// the sub-type's switches allow it.
    ///
    /// Lanes whose DP is marked failed sit out the broadcast.  Their work
    /// is then *replayed*: a substitute DP adopts the failed lane's
    /// identity and re-executes the program sequentially — but only when
    /// DP–DM is a shared crossbar (IAP-III/IV), because the replay must
    /// reach the failed lane's data through the global address space.  On
    /// private-bank sub-types (IAP-I/II) the dead lane's bank is wired to
    /// its dead DP alone, so the machine reports
    /// [`MachineError::DegradationImpossible`].
    pub fn run_resilient(
        &mut self,
        program: &Program,
        mut plan: FaultPlan,
    ) -> Result<RunOutcome, MachineError> {
        let n = self.lanes.len();
        let alive: Vec<bool> = (0..n).map(|i| !plan.dp_failed(i)).collect();
        let failed: Vec<usize> = (0..n).filter(|&i| plan.dp_failed(i)).collect();
        if !failed.is_empty() && self.subtype.data_topology() == DataTopology::PrivateBanks {
            return Err(MachineError::DegradationImpossible {
                machine: format!("{} array machine", self.subtype.class_name()),
                reason: "DP-DM is a direct switch: a failed lane's private bank is \
                         unreachable from any substitute DP"
                    .to_owned(),
            });
        }
        let mut fork = plan.fork();
        let mut outcome = self.run_masked(program, &alive, Some(&mut fork), &mut NullTracer)?;
        outcome.faults_injected += failed.len() as u64;
        if failed.is_empty() {
            return Ok(outcome);
        }
        for &f in &failed {
            let replay = self.replay_lane(program, f)?;
            outcome.stats = outcome.stats.accumulate_sequential(replay);
        }
        outcome.degraded = true;
        Ok(outcome)
    }

    /// Sequential degraded replay: a fresh substitute DP adopts lane `f`'s
    /// identity and runs the whole program against shared memory.
    fn replay_lane(&mut self, program: &Program, f: usize) -> Result<Stats, MachineError> {
        let mut dp = DataProcessor::new(f);
        let mut stats = Stats::default();
        let mut pc = 0usize;
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        loop {
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, &mut NullTracer));
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, &mut NullTracer));
            }
            let Some(instr) = program.fetch(pc) else {
                break;
            };
            stats.cycles += 1;
            match instr {
                Instr::Send(..) | Instr::Recv(..) | Instr::GetLane(..) => {
                    return Err(MachineError::unsupported(
                        format!(
                            "{} array machine (degraded replay)",
                            self.subtype.class_name()
                        ),
                        "a degraded replay is lane-local; exchange instructions \
                         need the full lockstep array",
                    ));
                }
                _ => {
                    stats.instructions += 1;
                    match dp.execute_local(instr, &mut self.mem)? {
                        LocalOutcome::Next => pc += 1,
                        LocalOutcome::Branch(t) => pc = t,
                        LocalOutcome::Halt => break,
                    }
                }
            }
        }
        let (alu, mr, mw) = dp.counters();
        stats.alu_ops += alu;
        stats.mem_reads += mr;
        stats.mem_writes += mw;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;

    /// Element-wise c[i] = a[i] + b[i] with lane-private data:
    /// bank layout (per lane): [a, b, _] at addresses 0, 1, 2.
    fn vector_add_private() -> Program {
        let mut asm = Assembler::new();
        asm.movi(0, 0)
            .movi(1, 1)
            .movi(2, 2)
            .emit(Instr::Load(3, 0))
            .emit(Instr::Load(4, 1))
            .emit(Instr::Add(5, 3, 4))
            .emit(Instr::Store(2, 5))
            .emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    #[test]
    fn simd_vector_add_runs_on_every_subtype() {
        for subtype in ArraySubtype::ALL {
            // For shared-crossbar subtypes the same bank-local layout works
            // when each lane's addresses are offset by lane * bank_size —
            // here we keep the private program and only assert sub-types
            // with private banks; shared ones get their own test below.
            if subtype.data_topology() != DataTopology::PrivateBanks {
                continue;
            }
            let mut m = ArrayMachine::new(subtype, 4, 4);
            for lane in 0..4 {
                m.memory_mut()
                    .bank_mut(lane)
                    .load(&[10 * lane as Word, 3, 0, 0]);
            }
            let stats = m.run(&vector_add_private()).unwrap();
            for lane in 0..4 {
                assert_eq!(m.memory().bank(lane).contents()[2], 10 * lane as Word + 3);
            }
            assert!(stats.ipc() > 1.0, "SIMD should beat scalar IPC");
        }
    }

    #[test]
    fn shared_memory_lets_lanes_gather_anywhere() {
        // IAP-III: every lane loads from bank 0 (global address 1).
        let mut m = ArrayMachine::new(ArraySubtype::III, 4, 4);
        m.memory_mut().bank_mut(0).load(&[0, 77, 0, 0]);
        let mut asm = Assembler::new();
        asm.movi(0, 1).emit(Instr::Load(1, 0)).emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        m.run(&prog).unwrap();
        for lane in 0..4 {
            assert_eq!(m.lane_reg(lane, 1), 77);
        }
    }

    #[test]
    fn private_banks_deny_cross_bank_access() {
        // IAP-I: lane addresses beyond its bank fail.
        let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4);
        let mut asm = Assembler::new();
        asm.movi(0, 6).emit(Instr::Load(1, 0)).emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        assert!(matches!(
            m.run(&prog),
            Err(MachineError::MemoryOutOfBounds { .. })
        ));
    }

    /// Rotate each lane's r1 from its left neighbour via getlane.
    fn rotate_program(lanes: i64) -> Program {
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 100)
            .emit(Instr::Add(1, 1, 0)) // r1 = 100 + lane
            .movi(2, 1)
            .emit(Instr::Sub(3, 0, 2)) // r3 = lane - 1
            .movi(4, lanes)
            // wrap: if lane == 0 then r3 = lanes - 1
            .emit(Instr::MovI(5, 0));
        asm.bne(0, 5, "fetch");
        asm.emit(Instr::AddI(3, 4, -1));
        asm.label("fetch").unwrap();
        asm.emit(Instr::GetLane(6, 3, 1)).emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    #[test]
    fn lane_exchange_works_with_dp_dp_crossbar() {
        let mut m = ArrayMachine::new(ArraySubtype::II, 4, 4);
        m.run(&rotate_program(4)).unwrap();
        // Control flow follows lane 0 (which takes the wrap branch), so
        // every lane reads from lane (lanes-1) on this SIMD machine — what
        // matters here is that the transfer itself is routable.
        for lane in 0..4 {
            assert_eq!(m.lane_reg(lane, 6), 103);
        }
    }

    #[test]
    fn lane_exchange_denied_without_dp_dp_switch() {
        // IAP-I: no DP-DP switch — the flexibility difference to IAP-II,
        // observed as a routing error rather than a table entry.
        let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4);
        assert!(matches!(
            m.run(&rotate_program(4)),
            Err(MachineError::RouteDenied { .. })
        ));
    }

    #[test]
    fn async_messaging_is_not_an_array_capability() {
        let mut m = ArrayMachine::new(ArraySubtype::IV, 4, 4);
        let prog = Program::new(vec![Instr::Send(1, 0), Instr::Halt]).unwrap();
        assert!(matches!(
            m.run(&prog),
            Err(MachineError::WorkloadUnsupported { .. })
        ));
    }

    #[test]
    fn specs_classify_back_to_their_subtype() {
        use skilltax_taxonomy::classify;
        for subtype in ArraySubtype::ALL {
            let m = ArrayMachine::new(subtype, 8, 4);
            let c = classify(&m.spec()).unwrap();
            assert_eq!(c.name().to_string(), subtype.class_name());
        }
    }

    #[test]
    fn resilient_run_replays_the_failed_lane_on_shared_memory() {
        use crate::fault::FaultPlan;
        // IAP-III (shared crossbar): each lane writes 100 + lane to global
        // address lane (bank layout: 1 word per bank not needed — use
        // global addressing directly).
        let mut m = ArrayMachine::new(ArraySubtype::III, 4, 4);
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 100)
            .emit(Instr::Add(1, 1, 0))
            .emit(Instr::Store(0, 1)) // mem[lane] = 100 + lane
            .emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        let outcome = m
            .run_resilient(&prog, FaultPlan::seeded(0).fail_dp(2))
            .unwrap();
        assert!(outcome.degraded);
        assert!(outcome.faults_injected >= 1);
        // All four outputs present, including the replayed lane 2.
        for lane in 0..4 {
            assert_eq!(
                m.memory().bank(0).contents()[lane],
                100 + lane as Word,
                "lane {lane}"
            );
        }
        // The replay cost extra sequential cycles.
        let clean = ArrayMachine::new(ArraySubtype::III, 4, 4)
            .run(&prog)
            .unwrap();
        assert!(outcome.stats.cycles > clean.cycles);
    }

    #[test]
    fn resilient_run_impossible_on_private_banks() {
        use crate::fault::FaultPlan;
        let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4);
        let err = m.run_resilient(&vector_add_private(), FaultPlan::seeded(0).fail_dp(2));
        match err {
            Err(MachineError::DegradationImpossible { machine, reason }) => {
                assert!(machine.contains("IAP-I"));
                assert!(reason.contains("private bank"));
            }
            other => panic!("expected DegradationImpossible, got {other:?}"),
        }
    }

    #[test]
    fn adversarial_stalls_trip_the_watchdog_with_partial_stats() {
        use crate::fault::FaultPlan;
        let mut m = ArrayMachine::new(ArraySubtype::I, 4, 4).with_cycle_limit(50);
        match m.run_resilient(&vector_add_private(), FaultPlan::seeded(9).stall_dps(1.0)) {
            Err(MachineError::WatchdogTimeout { limit: 50, partial }) => {
                assert_eq!(partial.cycles, 50);
                assert!(partial.stalls > 0);
            }
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
    }

    #[test]
    fn getlane_self_read_needs_no_fabric() {
        // Reading your own lane is always legal, even on IAP-I.
        let mut m = ArrayMachine::new(ArraySubtype::I, 2, 4);
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 55)
            .emit(Instr::GetLane(2, 0, 1))
            .emit(Instr::Halt);
        m.run(&asm.assemble().unwrap()).unwrap();
        assert_eq!(m.lane_reg(0, 2), 55);
        assert_eq!(m.lane_reg(1, 2), 55);
    }
}

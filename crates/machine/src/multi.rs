//! The MIMD multi-processor machine (IMP-I..XVI): `n` instruction
//! processors, each driving a data processor.
//!
//! The sixteen sub-types encode which relations are crossbars, and each bit
//! is a concrete runtime capability here:
//!
//! * **DP–DM `x`** — shared global memory instead of per-core private
//!   banks;
//! * **DP–DP `x`** — a message-passing fabric between cores (`send`/`recv`
//!   work);
//! * **IP–IM `x`** — a shared program store: any core can be assigned any
//!   program from a library (with direct IP–IM, core *i* runs program *i*);
//! * **IP–DP `x`** — rebinding: instruction processor *i* can drive a data
//!   processor other than *i* (a lane permutation).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use skilltax_model::{ArchSpec, Count, Link, Relation};

use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::dp::{DataProcessor, LocalOutcome};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::fault::{FaultPlan, RetryState, RunOutcome, DEFAULT_MAX_RETRIES};
use crate::interconnect::{FabricTopology, Mailboxes};
use crate::isa::{Instr, Word};
use crate::mem::{BankedMemory, DataTopology};
use crate::profile::Phase;
use crate::program::Program;
use crate::shard::{plan_cuts, resolve_shards, SenseBarrier, StageTracer, StagedOp};
use crate::telemetry::{EventKind, FaultKind, NullTracer, Tracer};
use crate::uniprocessor::DEFAULT_CYCLE_LIMIT;

/// One of the sixteen IMP sub-types, identified by its 4-bit crossbar code
/// (`IMP-(code+1)` in Roman numerals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiSubtype(u8);

impl MultiSubtype {
    /// Sub-type from the crossbar code (0..=15).
    pub fn from_code(code: u8) -> Result<MultiSubtype, MachineError> {
        if code < 16 {
            Ok(MultiSubtype(code))
        } else {
            Err(MachineError::config(format!(
                "IMP sub-type code {code} out of range 0..16"
            )))
        }
    }

    /// Sub-type from the 1-based Roman index (1..=16).
    pub fn from_index(index: u8) -> Result<MultiSubtype, MachineError> {
        if (1..=16).contains(&index) {
            Ok(MultiSubtype(index - 1))
        } else {
            Err(MachineError::config(format!(
                "IMP sub-type index {index} out of range 1..=16"
            )))
        }
    }

    /// The crossbar code.
    pub fn code(&self) -> u8 {
        self.0
    }

    /// Is IP–DP a crossbar (core→lane rebinding allowed)?
    pub fn ip_dp_crossbar(&self) -> bool {
        self.0 & 0b1000 != 0
    }

    /// Is IP–IM a crossbar (shared program store)?
    pub fn ip_im_crossbar(&self) -> bool {
        self.0 & 0b0100 != 0
    }

    /// Is DP–DM a crossbar (shared data memory)?
    pub fn dp_dm_crossbar(&self) -> bool {
        self.0 & 0b0010 != 0
    }

    /// Is DP–DP a crossbar (message passing available)?
    pub fn dp_dp_crossbar(&self) -> bool {
        self.0 & 0b0001 != 0
    }

    /// The taxonomy name, e.g. `IMP-XIV`.
    pub fn class_name(&self) -> String {
        format!(
            "IMP-{}",
            skilltax_taxonomy::roman::to_roman(u16::from(self.0) + 1)
        )
    }
}

/// One core: an IP (program counter + assignment) and its DP.
#[derive(Debug)]
struct Core {
    dp: DataProcessor,
    pc: usize,
    program: usize,
    halted: bool,
    /// A pending blocked receive: (destination register, source core).
    waiting: Option<(u8, usize)>,
}

/// A MIMD multi-processor.
#[derive(Debug)]
pub struct MultiMachine {
    subtype: MultiSubtype,
    cores: Vec<Core>,
    /// Lane driven by each core (identity unless rebinding is used).
    binding: Vec<usize>,
    mem: BankedMemory,
    mailboxes: Mailboxes,
    cycle_limit: u64,
    dense_reference: bool,
    shards: usize,
    cancel: CancelToken,
}

impl MultiMachine {
    /// A machine of `cores` cores with `bank_words` words per bank.
    pub fn new(subtype: MultiSubtype, cores: usize, bank_words: usize) -> MultiMachine {
        assert!(cores >= 2, "a multi-processor needs at least two cores");
        let topology = if subtype.dp_dm_crossbar() {
            DataTopology::SharedCrossbar
        } else {
            DataTopology::PrivateBanks
        };
        let fabric = if subtype.dp_dp_crossbar() {
            FabricTopology::Crossbar
        } else {
            FabricTopology::None
        };
        MultiMachine {
            subtype,
            cores: (0..cores)
                .map(|i| Core {
                    dp: DataProcessor::new(i),
                    pc: 0,
                    program: i,
                    halted: false,
                    waiting: None,
                })
                .collect(),
            binding: (0..cores).collect(),
            mem: BankedMemory::new(cores, bank_words, topology),
            mailboxes: Mailboxes::new(cores, fabric),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            dense_reference: false,
            shards: 1,
            cancel: CancelToken::new(),
        }
    }

    /// Request shard-parallel execution over (up to) `shards` worker
    /// threads (`0` = auto: the `SKILLTAX_THREADS` override, else
    /// `available_parallelism`; `1` = single-threaded, the default).
    ///
    /// Sharding is bit-identical to the single-threaded schedulers —
    /// same `Stats`, same telemetry per-class totals, same errors — and
    /// silently falls back to them whenever a run cannot shard (shared
    /// data memory, per-cycle or per-send fault rolls, rebound lanes, or
    /// message flows that forbid every cut; see DESIGN.md §10).
    pub fn with_shards(mut self, shards: usize) -> MultiMachine {
        self.shards = shards;
        self
    }

    /// Override the livelock guard.
    pub fn with_cycle_limit(mut self, limit: u64) -> MultiMachine {
        self.cycle_limit = limit;
        self
    }

    /// Install a cancellation token for subsequent runs.  A deadline
    /// stops the run after exactly that many simulated cycles, with
    /// partial [`Stats`] bit-identical across the dense, event and
    /// sharded schedulers; the asynchronous flag stops promptly (dense
    /// and event loops poll it per cycle, the shard coordinator once per
    /// slice).
    pub fn with_cancel(mut self, cancel: CancelToken) -> MultiMachine {
        self.cancel = cancel;
        self
    }

    /// Force the dense reference loop instead of the event-driven
    /// scheduler (see DESIGN.md §9).  The two are counter-identical; the
    /// knob exists for the identity suite and as an escape hatch.
    pub fn with_dense_reference(mut self, dense: bool) -> MultiMachine {
        self.dense_reference = dense;
        self
    }

    /// The sub-type.
    pub fn subtype(&self) -> MultiSubtype {
        self.subtype
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The banked memory.
    pub fn memory_mut(&mut self) -> &mut BankedMemory {
        &mut self.mem
    }

    /// The banked memory.
    pub fn memory(&self) -> &BankedMemory {
        &self.mem
    }

    /// A core's register, after a run.
    pub fn core_reg(&self, core: usize, r: u8) -> Word {
        self.cores[core].dp.reg(r)
    }

    /// Rebind core `ip` to drive lane `dp` — requires the IP–DP crossbar
    /// (sub-types VIII+ ... any with bit 3 set).
    pub fn rebind(&mut self, ip: usize, dp: usize) -> Result<(), MachineError> {
        if ip >= self.cores.len() || dp >= self.cores.len() {
            return Err(MachineError::config(format!(
                "rebind({ip}, {dp}) out of range for {} cores",
                self.cores.len()
            )));
        }
        if ip == dp {
            return Ok(());
        }
        if !self.subtype.ip_dp_crossbar() {
            return Err(MachineError::unsupported(
                self.subtype.class_name(),
                "IP-DP is a direct switch: instruction processor i is wired to \
                 data processor i and cannot be rebound",
            ));
        }
        self.binding[ip] = dp;
        // The DP's lane identity follows the binding so memory and fabric
        // addressing stay consistent.
        self.cores[ip].dp = DataProcessor::new(dp);
        Ok(())
    }

    /// The structural [`ArchSpec`] of this machine.
    pub fn spec(&self) -> ArchSpec {
        let n = (self.cores.len() as u32).max(2);
        let pick = |x: bool| {
            if x {
                Link::crossbar_between(n, n)
            } else {
                Link::direct_between(n, n)
            }
        };
        let dp_dp = if self.subtype.dp_dp_crossbar() {
            Link::crossbar_between(n, n)
        } else {
            Link::None
        };
        ArchSpec::builder(format!("multi-{}x{}", self.subtype.class_name(), n))
            .ips(Count::fixed(n))
            .dps(Count::fixed(n))
            .link(Relation::IpDp, pick(self.subtype.ip_dp_crossbar()))
            .link(Relation::IpIm, pick(self.subtype.ip_im_crossbar()))
            .link(Relation::DpDm, pick(self.subtype.dp_dm_crossbar()))
            .link(Relation::DpDp, dp_dp)
            .build_unchecked()
    }

    /// Run with one program per core (core *i* runs `programs[i]`): the
    /// plain MIMD mode every sub-type supports.
    pub fn run(&mut self, programs: &[Program]) -> Result<Stats, MachineError> {
        if programs.len() != self.cores.len() {
            return Err(MachineError::config(format!(
                "{} programs for {} cores",
                programs.len(),
                self.cores.len()
            )));
        }
        let assignment: Vec<usize> = (0..self.cores.len()).collect();
        let library: Vec<&Program> = programs.iter().collect();
        self.execute(&library, &assignment)
    }

    /// [`MultiMachine::run`] with observation hooks; with a [`NullTracer`]
    /// this monomorphises back to the plain core loop.
    pub fn run_traced<T: Tracer>(
        &mut self,
        programs: &[Program],
        tracer: &mut T,
    ) -> Result<Stats, MachineError> {
        if programs.len() != self.cores.len() {
            return Err(MachineError::config(format!(
                "{} programs for {} cores",
                programs.len(),
                self.cores.len()
            )));
        }
        let assignment: Vec<usize> = (0..self.cores.len()).collect();
        let library: Vec<&Program> = programs.iter().collect();
        self.execute_with(&library, &assignment, None, tracer)
            .map(|outcome| outcome.stats)
    }

    /// Run from a shared program library with an arbitrary core→program
    /// assignment — requires the IP–IM crossbar.  With a direct IP–IM the
    /// assignment must be the identity onto a library of exactly one
    /// program per core.
    pub fn run_shared(
        &mut self,
        library: &[Program],
        assignment: &[usize],
    ) -> Result<Stats, MachineError> {
        if assignment.len() != self.cores.len() {
            return Err(MachineError::config(format!(
                "{} assignments for {} cores",
                assignment.len(),
                self.cores.len()
            )));
        }
        if let Some(bad) = assignment.iter().find(|&&p| p >= library.len()) {
            return Err(MachineError::config(format!(
                "assignment references program {bad} but the library has {}",
                library.len()
            )));
        }
        let identity = assignment.iter().enumerate().all(|(i, &p)| i == p);
        if !self.subtype.ip_im_crossbar() && !identity {
            return Err(MachineError::unsupported(
                self.subtype.class_name(),
                "IP-IM is a direct switch: each core fetches only from its own \
                 instruction memory; cross-assignment needs an IP-IM crossbar",
            ));
        }
        let library: Vec<&Program> = library.iter().collect();
        self.execute(&library, assignment)
    }

    /// SIMD-emulation mode: every core runs (a private copy of) the same
    /// program.  This is the paper's morphing argument — "IMP-I can act as
    /// an array processor if all the processors are executing the same
    /// program" — and works on every sub-type because each core's own IM
    /// simply holds the same contents.
    pub fn run_simd(&mut self, program: &Program) -> Result<Stats, MachineError> {
        self.run_simd_traced(program, &mut NullTracer)
    }

    /// [`MultiMachine::run_simd`] with observation hooks; with a
    /// [`NullTracer`] this monomorphises back to the plain core loop.
    pub fn run_simd_traced<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
    ) -> Result<Stats, MachineError> {
        // A single-entry library with an all-zeros assignment: every core
        // fetches the same `Program` without cloning it per core.
        let assignment = vec![0; self.cores.len()];
        self.execute_with(&[program], &assignment, None, tracer)
            .map(|outcome| outcome.stats)
    }

    fn execute(
        &mut self,
        library: &[&Program],
        assignment: &[usize],
    ) -> Result<Stats, MachineError> {
        self.execute_with(library, assignment, None, &mut NullTracer)
            .map(|outcome| outcome.stats)
    }

    /// The fault-aware core loop.  A `FaultPlan` adds transient DP stalls,
    /// memory bit-flips and (via a forked plan installed in the mailboxes)
    /// link outages — which the sender survives with bounded exponential
    /// backoff — plus drops and corruption.  Exceeding the cycle budget
    /// returns [`MachineError::WatchdogTimeout`] carrying the partial
    /// statistics.
    ///
    /// Dispatches to the event-driven scheduler unless the dense
    /// reference loop was requested or the plan rolls the PRNG on every
    /// cycle (which skipping cycles would desynchronise).  When
    /// [`MultiMachine::with_shards`] asked for parallelism and the run is
    /// shardable, the shard-parallel runner takes over instead.
    fn execute_with<T: Tracer>(
        &mut self,
        library: &[&Program],
        assignment: &[usize],
        faults: Option<FaultPlan>,
        tracer: &mut T,
    ) -> Result<RunOutcome, MachineError> {
        if self.dense_reference || faults.as_ref().is_some_and(FaultPlan::has_per_cycle_rolls) {
            self.execute_dense(library, assignment, faults, tracer)
        } else if let Some(cuts) = self.shard_partition(library, assignment, faults.as_ref()) {
            self.execute_sharded(library, assignment, faults, &cuts, tracer)
        } else {
            self.execute_event(library, assignment, faults, tracer)
        }
    }

    /// Decide whether this run can shard, and into which contiguous core
    /// ranges.  Returns the shard start indices, or `None` to fall back
    /// to the single-threaded event scheduler.
    ///
    /// A run shards only when every condition below holds; each is a
    /// determinism requirement, not a tuning choice (DESIGN.md §10):
    ///
    /// * more than one shard resolves from the knob;
    /// * private memory banks (a shared crossbar serialises every access
    ///   globally);
    /// * the identity IP→DP binding (rebinding mixes lane ownership
    ///   across shards);
    /// * no per-send fault rolls on the plan, and no stale mailbox plan
    ///   from an earlier faulted run when this run carries none;
    /// * a legal cut exists: a shard boundary may not split a *forward*
    ///   message edge (sender index < receiver index), because the dense
    ///   order makes such a message visible to the receiver in the same
    ///   cycle, which cross-shard staging cannot reproduce.  Backward
    ///   edges shard freely — their receivers run before the sender in
    ///   dense order, so delivery always lands a cycle later anyway.
    fn shard_partition(
        &self,
        library: &[&Program],
        assignment: &[usize],
        faults: Option<&FaultPlan>,
    ) -> Option<Vec<usize>> {
        if self.shards == 1 {
            return None;
        }
        let shards = resolve_shards(self.shards);
        if shards < 2 {
            return None;
        }
        if self.mem.topology() != DataTopology::PrivateBanks {
            return None;
        }
        if self.binding.iter().enumerate().any(|(i, &b)| i != b) {
            return None;
        }
        match faults {
            Some(plan) if plan.has_message_rolls() => return None,
            None if self.mailboxes.has_fault_plan() => return None,
            _ => {}
        }
        let n = self.cores.len();
        let mut allowed = vec![true; n];
        allowed[0] = false;
        for (i, &prog) in assignment.iter().enumerate() {
            for instr in library[prog].instrs() {
                if let Instr::Send(dest, _) = *instr {
                    if i < dest && dest < n {
                        for slot in &mut allowed[i + 1..=dest] {
                            *slot = false;
                        }
                    }
                }
            }
        }
        plan_cuts(n, shards, &allowed)
    }

    /// The dense reference loop: every core is visited on every cycle.
    /// This is the semantic ground truth the event scheduler must
    /// reproduce counter-for-counter; it also remains the execution
    /// path for plans with per-cycle random rolls.
    fn execute_dense<T: Tracer>(
        &mut self,
        library: &[&Program],
        assignment: &[usize],
        mut faults: Option<FaultPlan>,
        tracer: &mut T,
    ) -> Result<RunOutcome, MachineError> {
        if let Some(plan) = faults.as_mut() {
            self.mailboxes.install_faults(plan.fork());
        }
        for (core, &prog) in self.cores.iter_mut().zip(assignment) {
            core.pc = 0;
            core.program = prog;
            core.halted = false;
            core.waiting = None;
        }
        let mut stats = Stats::default();
        let mut retries: u64 = 0;
        let n = self.cores.len();
        let mut retry = vec![RetryState::default(); n];
        let max_retries = faults
            .as_ref()
            .map_or(DEFAULT_MAX_RETRIES, FaultPlan::max_retries);
        let base: Vec<(u64, u64, u64)> = self.cores.iter().map(|c| c.dp.counters()).collect();
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Slice);
        loop {
            if self.cores.iter().all(|c| c.halted) {
                break;
            }
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, tracer));
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, tracer));
            }
            stats.cycles += 1;
            self.mailboxes.set_cycle(stats.cycles);
            if let Some(plan) = faults.as_mut() {
                if plan.maybe_flip_memory(&mut self.mem) {
                    tracer.record(stats.cycles, EventKind::FaultInjected(FaultKind::BitFlip));
                }
            }
            let mut progress = false;
            for i in 0..n {
                if self.cores[i].halted {
                    continue;
                }
                // A core backing off after a failed send waits its turn.
                if !retry[i].ready(stats.cycles) {
                    stats.stalls += 1;
                    tracer.record(stats.cycles, EventKind::Stall);
                    progress = true;
                    continue;
                }
                // A blocked receive retries before fetching anything new.
                if let Some((rd, src)) = self.cores[i].waiting {
                    let lane = self.binding[i];
                    let from = self.binding[src];
                    match self.mailboxes.recv(lane, from)? {
                        Some(v) => {
                            self.cores[i].dp.set_reg(rd, v);
                            self.cores[i].waiting = None;
                            self.cores[i].pc += 1;
                            stats.messages += 1;
                            tracer.record(stats.cycles, EventKind::Message { from, to: lane });
                            tracer.record(stats.cycles, EventKind::CrossbarTraversal);
                            tracer.span_mark(stats.cycles, Phase::Delivery);
                            progress = true;
                        }
                        None => {
                            stats.stalls += 1;
                            tracer.record(stats.cycles, EventKind::Stall);
                        }
                    }
                    continue;
                }
                // A transient injected stall holds the core at its fetch
                // stage for the cycle; it counts as forward progress in
                // the deadlock sense (it always ends).  The query sits
                // exactly here — after the backoff and blocked-receive
                // checks — so every scheduler asks the same (cycle, dp)
                // set: the stall roll is a pure hash, and dense, event
                // and sharded runs all reach this point for exactly the
                // cores that are about to fetch.
                if let Some(plan) = faults.as_mut() {
                    if plan.dp_stalled(stats.cycles, self.binding[i]) {
                        stats.stalls += 1;
                        tracer.record(stats.cycles, EventKind::FaultInjected(FaultKind::Stall));
                        tracer.record(stats.cycles, EventKind::Stall);
                        progress = true;
                        continue;
                    }
                }
                let program = &library[self.cores[i].program];
                let Some(instr) = program.fetch(self.cores[i].pc) else {
                    self.cores[i].halted = true;
                    progress = true;
                    continue;
                };
                match instr {
                    Instr::GetLane(..) => {
                        return Err(MachineError::unsupported(
                            self.subtype.class_name(),
                            "getlane is a lockstep-SIMD exchange; independent cores \
                             communicate with send/recv",
                        ));
                    }
                    Instr::Send(dest, rs) => {
                        if dest >= n {
                            return Err(MachineError::RouteDenied {
                                from: i,
                                to: dest,
                                reason: format!("destination {dest} out of range"),
                            });
                        }
                        let value = self.cores[i].dp.reg(rs);
                        match self
                            .mailboxes
                            .send(self.binding[i], self.binding[dest], value)
                        {
                            Ok(()) => {
                                retry[i] = RetryState::default();
                                self.cores[i].pc += 1;
                                stats.instructions += 1;
                                tracer.record(stats.cycles, EventKind::Issue);
                                progress = true;
                            }
                            Err(MachineError::LinkDown { from, to, .. }) => {
                                let delay =
                                    retry[i].back_off(stats.cycles, from, to, max_retries)?;
                                retries += 1;
                                stats.stalls += 1;
                                tracer.record(
                                    stats.cycles,
                                    EventKind::FaultInjected(FaultKind::LinkDown),
                                );
                                tracer.record(stats.cycles, EventKind::Retry);
                                tracer.record(stats.cycles, EventKind::Stall);
                                tracer.span_mark(stats.cycles, Phase::Retry);
                                tracer.counter("retries", 1);
                                tracer.sample("backoff.delay", delay);
                                progress = true;
                            }
                            Err(other) => return Err(other),
                        }
                    }
                    Instr::Recv(rd, src) => {
                        if src >= n {
                            return Err(MachineError::RouteDenied {
                                from: src,
                                to: i,
                                reason: format!("source {src} out of range"),
                            });
                        }
                        // Route feasibility is checked immediately so a
                        // missing DP-DP switch fails fast instead of
                        // deadlocking.
                        self.mailboxes
                            .topology()
                            .route(self.binding[src], self.binding[i], n)?;
                        self.cores[i].waiting = Some((rd, src));
                        stats.instructions += 1;
                        tracer.record(stats.cycles, EventKind::Issue);
                        progress = true;
                    }
                    _ => {
                        stats.instructions += 1;
                        tracer.record(stats.cycles, EventKind::Issue);
                        match self.cores[i].dp.execute_traced(
                            instr,
                            &mut self.mem,
                            stats.cycles,
                            tracer,
                        )? {
                            LocalOutcome::Next => self.cores[i].pc += 1,
                            LocalOutcome::Branch(t) => self.cores[i].pc = t,
                            LocalOutcome::Halt => self.cores[i].halted = true,
                        }
                        progress = true;
                    }
                }
            }
            if !progress {
                return Err(MachineError::Deadlock {
                    cycle: stats.cycles,
                });
            }
        }
        tracer.span_exit(stats.cycles);
        tracer.span_exit(stats.cycles);
        for (i, core) in self.cores.iter().enumerate() {
            let (alu, mr, mw) = core.dp.counters();
            let (b_alu, b_mr, b_mw) = base[i];
            stats.alu_ops += alu - b_alu;
            stats.mem_reads += mr - b_mr;
            stats.mem_writes += mw - b_mw;
            if tracer.enabled() {
                tracer.sample("dp.alu_ops", alu - b_alu);
                tracer.sample("dp.mem_ops", (mr - b_mr) + (mw - b_mw));
            }
        }
        let faults_injected =
            faults.as_ref().map_or(0, FaultPlan::injected) + self.mailboxes.faults_injected();
        Ok(RunOutcome {
            stats,
            faults_injected,
            retries,
            degraded: false,
        })
    }

    /// The event-driven scheduler: counter-identical to
    /// [`MultiMachine::execute_dense`] (same `Stats`, same per-class
    /// event totals, same errors at the same cycles) but it only visits
    /// cores that can act.  The non-halted cores are partitioned into
    /// three disjoint pools:
    ///
    /// * `active` — cores that may act this cycle, kept sorted
    ///   ascending so within-cycle effects replay in dense core order;
    /// * `sleeping` — cores in retry backoff, keyed by their
    ///   deterministic wake cycle (a min-heap on `next_attempt`);
    /// * `blocked` — cores parked on an empty receive, woken by the
    ///   next matching send; their one-stall-per-cycle accounting is
    ///   deferred and settled in bulk from `blocked_since`.
    ///
    /// When `active` drains, the cycle counter time-warps straight to
    /// the earliest wake and the skipped stall cycles are bulk-recorded
    /// with [`Tracer::record_many`], so the dense loop's counters are
    /// reproduced exactly (see DESIGN.md §9 for the invariants).
    fn execute_event<T: Tracer>(
        &mut self,
        library: &[&Program],
        assignment: &[usize],
        mut faults: Option<FaultPlan>,
        tracer: &mut T,
    ) -> Result<RunOutcome, MachineError> {
        if let Some(plan) = faults.as_mut() {
            self.mailboxes.install_faults(plan.fork());
        }
        for (core, &prog) in self.cores.iter_mut().zip(assignment) {
            core.pc = 0;
            core.program = prog;
            core.halted = false;
            core.waiting = None;
        }
        let mut stats = Stats::default();
        let mut retries: u64 = 0;
        let n = self.cores.len();
        let mut retry = vec![RetryState::default(); n];
        let max_retries = faults
            .as_ref()
            .map_or(DEFAULT_MAX_RETRIES, FaultPlan::max_retries);
        let base: Vec<(u64, u64, u64)> = self.cores.iter().map(|c| c.dp.counters()).collect();
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let limit = budget.limit();

        let mut active: Vec<usize> = (0..n).collect();
        let mut sleeping: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut blocked: Vec<(usize, u64)> = Vec::new();

        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Slice);
        loop {
            if active.is_empty() && sleeping.is_empty() && blocked.is_empty() {
                break; // every core halted
            }
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, tracer));
            }
            // The next cycle where the dense loop would do real work:
            // the very next one while anything is runnable, otherwise
            // the earliest backoff wake.
            let next = if let Some(&Reverse((wake, _))) = sleeping.peek() {
                if active.is_empty() {
                    wake
                } else {
                    stats.cycles + 1
                }
            } else if active.is_empty() {
                // Only blocked receivers remain.  Dense stalls them once
                // per cycle with no progress: watchdog if the budget is
                // already spent, deadlock on the very next cycle else.
                if stats.cycles >= limit {
                    flush_blocked_through(&blocked, limit, &mut stats, tracer);
                    return Err(budget.trip(stats.cycles, stats, tracer));
                }
                let cycle = stats.cycles + 1;
                flush_blocked_through(&blocked, cycle, &mut stats, tracer);
                return Err(MachineError::Deadlock { cycle });
            } else {
                stats.cycles + 1
            };
            if next > limit {
                // Dense burns the rest of the budget stalling the
                // sleepers and blocked receivers, then trips the
                // watchdog.
                let span = limit - stats.cycles;
                let dormant = sleeping.len() as u64;
                if span > 0 && dormant > 0 {
                    stats.stalls += span * dormant;
                    tracer.record_many(limit, EventKind::Stall, span * dormant);
                }
                flush_blocked_through(&blocked, limit, &mut stats, tracer);
                stats.cycles = limit;
                return Err(budget.trip(limit, stats, tracer));
            }
            // Time-warp over the cycles nobody can use; dense stalls
            // every sleeping core once per skipped cycle.
            let skipped = next - stats.cycles - 1;
            if skipped > 0 {
                let dormant = sleeping.len() as u64;
                stats.stalls += skipped * dormant;
                tracer.record_many(next - 1, EventKind::Stall, skipped * dormant);
                // The warped-over cycles are their own leaf span, so the
                // Slice/Warp alternation still tiles [0, cycles] exactly.
                tracer.span_exit(stats.cycles);
                tracer.span_enter(stats.cycles, Phase::Warp);
                tracer.span_exit(next - 1);
                tracer.span_enter(next - 1, Phase::Slice);
            }
            stats.cycles = next;
            self.mailboxes.set_cycle(next);
            while let Some(&Reverse((wake, core))) = sleeping.peek() {
                if wake > next {
                    break;
                }
                sleeping.pop();
                let pos = active.partition_point(|&c| c < core);
                active.insert(pos, core);
            }
            // Cores still backing off stall this cycle (dense `!ready`),
            // which also counts as forward progress there.
            let dormant = sleeping.len() as u64;
            let mut progress = dormant > 0;
            if dormant > 0 {
                stats.stalls += dormant;
                tracer.record_many(next, EventKind::Stall, dormant);
            }
            let cycle = stats.cycles;
            let mut idx = 0;
            while idx < active.len() {
                let i = active[idx];
                // A blocked receive retries before fetching anything new.
                if let Some((rd, src)) = self.cores[i].waiting {
                    let lane = self.binding[i];
                    let from = self.binding[src];
                    match self.mailboxes.recv(lane, from) {
                        Ok(Some(v)) => {
                            self.cores[i].dp.set_reg(rd, v);
                            self.cores[i].waiting = None;
                            self.cores[i].pc += 1;
                            stats.messages += 1;
                            tracer.record(cycle, EventKind::Message { from, to: lane });
                            tracer.record(cycle, EventKind::CrossbarTraversal);
                            tracer.span_mark(cycle, Phase::Delivery);
                            progress = true;
                            idx += 1;
                        }
                        Ok(None) => {
                            // Park until a matching send; this cycle's
                            // stall is charged live, later ones lazily.
                            stats.stalls += 1;
                            tracer.record(cycle, EventKind::Stall);
                            active.remove(idx);
                            blocked.push((i, cycle + 1));
                        }
                        Err(e) => {
                            flush_blocked_on_error(&blocked, i, cycle, &mut stats, tracer);
                            return Err(e);
                        }
                    }
                    continue;
                }
                // Same fetch-stage stall query as the dense loop: the
                // active set holds exactly the cores dense would walk to
                // this point, so the (cycle, dp) query set matches.
                if let Some(plan) = faults.as_mut() {
                    if plan.dp_stalled(cycle, self.binding[i]) {
                        stats.stalls += 1;
                        tracer.record(cycle, EventKind::FaultInjected(FaultKind::Stall));
                        tracer.record(cycle, EventKind::Stall);
                        progress = true;
                        idx += 1;
                        continue;
                    }
                }
                let program = &library[self.cores[i].program];
                let Some(instr) = program.fetch(self.cores[i].pc) else {
                    self.cores[i].halted = true;
                    progress = true;
                    active.remove(idx);
                    continue;
                };
                match instr {
                    Instr::GetLane(..) => {
                        flush_blocked_on_error(&blocked, i, cycle, &mut stats, tracer);
                        return Err(MachineError::unsupported(
                            self.subtype.class_name(),
                            "getlane is a lockstep-SIMD exchange; independent cores \
                             communicate with send/recv",
                        ));
                    }
                    Instr::Send(dest, rs) => {
                        if dest >= n {
                            flush_blocked_on_error(&blocked, i, cycle, &mut stats, tracer);
                            return Err(MachineError::RouteDenied {
                                from: i,
                                to: dest,
                                reason: format!("destination {dest} out of range"),
                            });
                        }
                        let value = self.cores[i].dp.reg(rs);
                        let from = self.binding[i];
                        let to = self.binding[dest];
                        match self.mailboxes.send(from, to, value) {
                            Ok(()) => {
                                retry[i] = RetryState::default();
                                self.cores[i].pc += 1;
                                stats.instructions += 1;
                                tracer.record(cycle, EventKind::Issue);
                                progress = true;
                                // Wake receivers parked on this channel,
                                // settling the stalls dense charged them
                                // while parked.  Even when the plan
                                // dropped the message this is right: the
                                // woken core re-checks, stalls once live
                                // and parks again — exactly dense.
                                let mut b = 0;
                                while b < blocked.len() {
                                    let (w, since) = blocked[b];
                                    let listening = self.cores[w]
                                        .waiting
                                        .is_some_and(|(_, wsrc)| self.binding[wsrc] == from)
                                        && self.binding[w] == to;
                                    if !listening {
                                        b += 1;
                                        continue;
                                    }
                                    blocked.swap_remove(b);
                                    if since <= cycle {
                                        // Cores before the sender also
                                        // stalled earlier this cycle.
                                        let owed = (cycle - since) + u64::from(w < i);
                                        if owed > 0 {
                                            stats.stalls += owed;
                                            tracer.record_many(cycle, EventKind::Stall, owed);
                                        }
                                    }
                                    let pos = active.partition_point(|&c| c < w);
                                    active.insert(pos, w);
                                    if pos <= idx {
                                        // Inserted behind the scan head:
                                        // first re-checked next cycle,
                                        // as in the dense order.
                                        idx += 1;
                                    }
                                }
                                idx += 1;
                            }
                            Err(MachineError::LinkDown { from, to, .. }) => {
                                let delay = match retry[i].back_off(cycle, from, to, max_retries) {
                                    Ok(delay) => delay,
                                    Err(e) => {
                                        flush_blocked_on_error(
                                            &blocked, i, cycle, &mut stats, tracer,
                                        );
                                        return Err(e);
                                    }
                                };
                                retries += 1;
                                stats.stalls += 1;
                                tracer.record(cycle, EventKind::FaultInjected(FaultKind::LinkDown));
                                tracer.record(cycle, EventKind::Retry);
                                tracer.record(cycle, EventKind::Stall);
                                tracer.span_mark(cycle, Phase::Retry);
                                tracer.counter("retries", 1);
                                tracer.sample("backoff.delay", delay);
                                progress = true;
                                if retry[i].next_attempt > cycle + 1 {
                                    // The deterministic wake cycle comes
                                    // straight from the backoff state —
                                    // never re-rolled.
                                    active.remove(idx);
                                    sleeping.push(Reverse((retry[i].next_attempt, i)));
                                } else {
                                    idx += 1;
                                }
                            }
                            Err(other) => {
                                flush_blocked_on_error(&blocked, i, cycle, &mut stats, tracer);
                                return Err(other);
                            }
                        }
                    }
                    Instr::Recv(rd, src) => {
                        if src >= n {
                            flush_blocked_on_error(&blocked, i, cycle, &mut stats, tracer);
                            return Err(MachineError::RouteDenied {
                                from: src,
                                to: i,
                                reason: format!("source {src} out of range"),
                            });
                        }
                        // Route feasibility is checked immediately so a
                        // missing DP-DP switch fails fast instead of
                        // deadlocking.
                        if let Err(e) =
                            self.mailboxes
                                .topology()
                                .route(self.binding[src], self.binding[i], n)
                        {
                            flush_blocked_on_error(&blocked, i, cycle, &mut stats, tracer);
                            return Err(e);
                        }
                        self.cores[i].waiting = Some((rd, src));
                        stats.instructions += 1;
                        tracer.record(cycle, EventKind::Issue);
                        progress = true;
                        idx += 1;
                    }
                    _ => {
                        stats.instructions += 1;
                        tracer.record(cycle, EventKind::Issue);
                        match self.cores[i]
                            .dp
                            .execute_traced(instr, &mut self.mem, cycle, tracer)
                        {
                            Ok(LocalOutcome::Next) => {
                                self.cores[i].pc += 1;
                                idx += 1;
                            }
                            Ok(LocalOutcome::Branch(t)) => {
                                self.cores[i].pc = t;
                                idx += 1;
                            }
                            Ok(LocalOutcome::Halt) => {
                                self.cores[i].halted = true;
                                active.remove(idx);
                            }
                            Err(e) => {
                                flush_blocked_on_error(&blocked, i, cycle, &mut stats, tracer);
                                return Err(e);
                            }
                        }
                        progress = true;
                    }
                }
            }
            if !progress {
                // Just-parked cores carry `since == cycle + 1`: their
                // stall this cycle was already charged live.
                flush_blocked_through(&blocked, cycle, &mut stats, tracer);
                return Err(MachineError::Deadlock { cycle });
            }
        }
        tracer.span_exit(stats.cycles);
        tracer.span_exit(stats.cycles);
        for (i, core) in self.cores.iter().enumerate() {
            let (alu, mr, mw) = core.dp.counters();
            let (b_alu, b_mr, b_mw) = base[i];
            stats.alu_ops += alu - b_alu;
            stats.mem_reads += mr - b_mr;
            stats.mem_writes += mw - b_mw;
            if tracer.enabled() {
                tracer.sample("dp.alu_ops", alu - b_alu);
                tracer.sample("dp.mem_ops", (mr - b_mr) + (mw - b_mw));
            }
        }
        let faults_injected =
            faults.as_ref().map_or(0, FaultPlan::injected) + self.mailboxes.faults_injected();
        Ok(RunOutcome {
            stats,
            faults_injected,
            retries,
            degraded: false,
        })
    }

    /// The shard-parallel runner: a bulk-synchronous mirror of
    /// [`MultiMachine::execute_dense`], advanced one cycle-slice at a
    /// time (PR 4 proved the dense loop counter-identical to the event
    /// scheduler, so mirroring it transitively matches both).
    ///
    /// Cores are partitioned into the contiguous shards given by `cuts`;
    /// each worker thread owns its shard's cores, retry states, private
    /// memory banks and the inbound half of its mailbox channels.  Every
    /// slice:
    ///
    /// 1. the coordinator publishes the next cycle — possibly warping
    ///    over cycles where no core can act, charging each dormant core
    ///    one stall per skipped cycle exactly like the dense loop would;
    /// 2. workers deposit cross-shard messages staged by the previous
    ///    slice, then run the dense per-core body over their own cores,
    ///    staging tracer calls and outbound cross-shard sends;
    /// 3. at the barrier the coordinator commits every report in
    ///    ascending shard order — which *is* dense core order — so
    ///    `Stats`, telemetry per-class totals, errors and fault
    ///    behaviour come out bit-identical to the single-threaded
    ///    schedulers (DESIGN.md §10).
    ///
    /// On an error the erring shard stops its scan at the faulting core;
    /// shards before it commit their whole slice, shards after it only
    /// their warp charges, because the dense loop never reaches their
    /// cores on the error cycle.
    fn execute_sharded<T: Tracer>(
        &mut self,
        library: &[&Program],
        assignment: &[usize],
        mut faults: Option<FaultPlan>,
        cuts: &[usize],
        tracer: &mut T,
    ) -> Result<RunOutcome, MachineError> {
        let n = self.cores.len();
        let k = cuts.len();
        let mut shard_plans: Vec<Option<FaultPlan>> = Vec::with_capacity(k);
        if let Some(plan) = faults.as_mut() {
            let mut master = plan.fork();
            for _ in 0..k {
                shard_plans.push(Some(master.fork()));
            }
            // Leave a plan installed like the single-threaded paths do.
            // It never rolls or injects here: shardable plans are
            // roll-free on the send path and the parent sends nothing.
            self.mailboxes.install_faults(master);
        } else {
            shard_plans.resize_with(k, || None);
        }
        for (core, &prog) in self.cores.iter_mut().zip(assignment) {
            core.pc = 0;
            core.program = prog;
            core.halted = false;
            core.waiting = None;
        }
        let base_counters: Vec<(u64, u64, u64)> =
            self.cores.iter().map(|c| c.dp.counters()).collect();
        let max_retries = faults
            .as_ref()
            .map_or(DEFAULT_MAX_RETRIES, FaultPlan::max_retries);
        let budget = RunBudget::resolve(self.cycle_limit, &self.cancel);
        let limit = budget.limit();
        let cancel = self.cancel.clone();
        let subtype = self.subtype;
        let live = tracer.enabled();

        // Carve the machine into per-shard state: disjoint `&mut` slices
        // of the cores and retry states, plus owned memory banks and
        // inbound mailbox channels that return at the end of the run.
        let mut retry = vec![RetryState::default(); n];
        type Seat<'m> = (
            usize,
            &'m mut [Core],
            &'m mut [RetryState],
            BankedMemory,
            Mailboxes,
            Option<FaultPlan>,
        );
        let mut seats: Vec<Seat<'_>> = Vec::with_capacity(k);
        {
            let mut cores_rest: &mut [Core] = &mut self.cores;
            let mut retry_rest: &mut [RetryState] = &mut retry;
            for (s, plan) in shard_plans.into_iter().enumerate() {
                let start = cuts[s];
                let end = cuts.get(s + 1).copied().unwrap_or(n);
                let (cores_here, cores_tail) = cores_rest.split_at_mut(end - start);
                cores_rest = cores_tail;
                let (retry_here, retry_tail) = retry_rest.split_at_mut(end - start);
                retry_rest = retry_tail;
                let mem = self.mem.split_lanes(start..end);
                let mb = self.mailboxes.split_inbound(start..end, plan);
                // Each seat gets its own fork for the fetch-stage stall
                // query: the stall decision is a pure hash of the seed
                // and `(cycle, dp)`, so the forks agree with the dense
                // loop's single plan; their injected counts sum to it.
                let stall_plan = faults.as_mut().map(FaultPlan::fork);
                seats.push((start, cores_here, retry_here, mem, mb, stall_plan));
            }
        }
        let barrier = SenseBarrier::new(k + 1);
        let decision = Mutex::new(SliceDecision::Stop);
        let slots: Vec<Mutex<SliceReport>> =
            (0..k).map(|_| Mutex::new(SliceReport::default())).collect();
        let staging: Vec<Mutex<Vec<(usize, usize, Word)>>> =
            (0..k).map(|_| Mutex::new(Vec::new())).collect();

        let (run_result, mut stats, retries_total, children) = std::thread::scope(|scope| {
            let handles: Vec<_> = seats
                .into_iter()
                .enumerate()
                .map(
                    |(s, (base, cores, retry_slice, mut mem, mut mb, mut stall_plan))| {
                        let barrier = &barrier;
                        let decision = &decision;
                        let slot = &slots[s];
                        let staging_slot = &staging[s];
                        scope.spawn(move || {
                            let mut sense = false;
                            let mut stage = StageTracer {
                                live,
                                ops: Vec::new(),
                            };
                            let shard_len = cores.len();
                            loop {
                                barrier.wait(&mut sense);
                                let SliceDecision::Run { cycle, skipped } =
                                    *decision.lock().expect("decision lock")
                                else {
                                    break;
                                };
                                {
                                    let mut inbound = staging_slot.lock().expect("staging lock");
                                    for (from, to, value) in inbound.drain(..) {
                                        mb.deposit(from, to, value);
                                    }
                                }
                                let mut report = slot.lock().expect("report lock");
                                stage.ops = std::mem::take(&mut report.ops);
                                let mut outbox = std::mem::take(&mut report.outbox);
                                let mut pre_stalls = 0u64;
                                if skipped > 0 {
                                    let dormant = cores.iter().filter(|c| !c.halted).count() as u64;
                                    if dormant > 0 {
                                        pre_stalls = skipped * dormant;
                                        stage.record_many(cycle - 1, EventKind::Stall, pre_stalls);
                                    }
                                }
                                let pre_len = stage.ops.len();
                                mb.set_cycle(cycle);
                                let mut scan = Stats::default();
                                let mut retries = 0u64;
                                let mut progress = false;
                                let mut error: Option<MachineError> = None;
                                'scan: for j in 0..shard_len {
                                    let i = base + j;
                                    if cores[j].halted {
                                        continue;
                                    }
                                    if !retry_slice[j].ready(cycle) {
                                        scan.stalls += 1;
                                        stage.record(cycle, EventKind::Stall);
                                        progress = true;
                                        continue;
                                    }
                                    if let Some((rd, src)) = cores[j].waiting {
                                        match mb.recv(i, src) {
                                            Ok(Some(v)) => {
                                                cores[j].dp.set_reg(rd, v);
                                                cores[j].waiting = None;
                                                cores[j].pc += 1;
                                                scan.messages += 1;
                                                stage.record(
                                                    cycle,
                                                    EventKind::Message { from: src, to: i },
                                                );
                                                stage.record(cycle, EventKind::CrossbarTraversal);
                                                progress = true;
                                            }
                                            Ok(None) => {
                                                scan.stalls += 1;
                                                stage.record(cycle, EventKind::Stall);
                                            }
                                            Err(e) => {
                                                error = Some(e);
                                                break 'scan;
                                            }
                                        }
                                        continue;
                                    }
                                    // Same fetch-stage stall query as the
                                    // dense loop (sharding binds lane i to
                                    // core i, so `i` is the dp index).
                                    if let Some(plan) = stall_plan.as_mut() {
                                        if plan.dp_stalled(cycle, i) {
                                            scan.stalls += 1;
                                            stage.record(
                                                cycle,
                                                EventKind::FaultInjected(FaultKind::Stall),
                                            );
                                            stage.record(cycle, EventKind::Stall);
                                            progress = true;
                                            continue;
                                        }
                                    }
                                    let program = library[cores[j].program];
                                    let Some(instr) = program.fetch(cores[j].pc) else {
                                        cores[j].halted = true;
                                        progress = true;
                                        continue;
                                    };
                                    match instr {
                                        Instr::GetLane(..) => {
                                            error = Some(MachineError::unsupported(
                                                subtype.class_name(),
                                                "getlane is a lockstep-SIMD exchange; independent \
                                             cores communicate with send/recv",
                                            ));
                                            break 'scan;
                                        }
                                        Instr::Send(dest, rs) => {
                                            if dest >= n {
                                                error = Some(MachineError::RouteDenied {
                                                    from: i,
                                                    to: dest,
                                                    reason: format!(
                                                        "destination {dest} out of range"
                                                    ),
                                                });
                                                break 'scan;
                                            }
                                            let value = cores[j].dp.reg(rs);
                                            let sent = if dest >= base && dest < base + shard_len {
                                                mb.send(i, dest, value)
                                            } else {
                                                // Cross-shard: run the send-path
                                                // checks locally, stage delivery
                                                // for the barrier.
                                                mb.prepare_send(i, dest, value).map(|staged| {
                                                    if let Some(v) = staged {
                                                        outbox.push((i, dest, v));
                                                    }
                                                })
                                            };
                                            match sent {
                                                Ok(()) => {
                                                    retry_slice[j] = RetryState::default();
                                                    cores[j].pc += 1;
                                                    scan.instructions += 1;
                                                    stage.record(cycle, EventKind::Issue);
                                                    progress = true;
                                                }
                                                Err(MachineError::LinkDown {
                                                    from, to, ..
                                                }) => {
                                                    match retry_slice[j].back_off(
                                                        cycle,
                                                        from,
                                                        to,
                                                        max_retries,
                                                    ) {
                                                        Ok(delay) => {
                                                            retries += 1;
                                                            scan.stalls += 1;
                                                            stage.record(
                                                                cycle,
                                                                EventKind::FaultInjected(
                                                                    FaultKind::LinkDown,
                                                                ),
                                                            );
                                                            stage.record(cycle, EventKind::Retry);
                                                            stage.record(cycle, EventKind::Stall);
                                                            stage.counter("retries", 1);
                                                            stage.sample("backoff.delay", delay);
                                                            progress = true;
                                                        }
                                                        Err(e) => {
                                                            error = Some(e);
                                                            break 'scan;
                                                        }
                                                    }
                                                }
                                                Err(other) => {
                                                    error = Some(other);
                                                    break 'scan;
                                                }
                                            }
                                        }
                                        Instr::Recv(rd, src) => {
                                            if src >= n {
                                                error = Some(MachineError::RouteDenied {
                                                    from: src,
                                                    to: i,
                                                    reason: format!("source {src} out of range"),
                                                });
                                                break 'scan;
                                            }
                                            if let Err(e) = mb.topology().route(src, i, n) {
                                                error = Some(e);
                                                break 'scan;
                                            }
                                            cores[j].waiting = Some((rd, src));
                                            scan.instructions += 1;
                                            stage.record(cycle, EventKind::Issue);
                                            progress = true;
                                        }
                                        _ => {
                                            scan.instructions += 1;
                                            stage.record(cycle, EventKind::Issue);
                                            match cores[j]
                                                .dp
                                                .execute_traced(instr, &mut mem, cycle, &mut stage)
                                            {
                                                Ok(LocalOutcome::Next) => cores[j].pc += 1,
                                                Ok(LocalOutcome::Branch(t)) => cores[j].pc = t,
                                                Ok(LocalOutcome::Halt) => cores[j].halted = true,
                                                Err(e) => {
                                                    error = Some(e);
                                                    break 'scan;
                                                }
                                            }
                                            progress = true;
                                        }
                                    }
                                }
                                let mut can_act = false;
                                let mut min_wake: Option<u64> = None;
                                let mut non_halted = 0u64;
                                for (j, core) in cores.iter().enumerate() {
                                    if core.halted {
                                        continue;
                                    }
                                    non_halted += 1;
                                    if let Some((_, src)) = core.waiting {
                                        if mb.has_pending(base + j, src) {
                                            can_act = true;
                                        }
                                    } else if retry_slice[j].ready(cycle + 1) {
                                        can_act = true;
                                    } else {
                                        let wake = retry_slice[j].next_attempt;
                                        min_wake =
                                            Some(min_wake.map_or(wake, |w: u64| w.min(wake)));
                                    }
                                }
                                report.pre_len = pre_len;
                                report.pre_stalls = pre_stalls;
                                report.scan = scan;
                                report.retries = retries;
                                report.progress = progress;
                                report.error = error;
                                report.can_act = can_act;
                                report.min_wake = min_wake;
                                report.non_halted = non_halted;
                                report.ops = std::mem::take(&mut stage.ops);
                                report.outbox = outbox;
                                drop(report);
                                barrier.wait(&mut sense);
                            }
                            (mem, mb, stall_plan)
                        })
                    },
                )
                .collect();

            let mut sense = false;
            let mut stats = Stats::default();
            let mut retries_total: u64 = 0;
            let shard_of = |core: usize| match cuts.binary_search(&core) {
                Ok(s) => s,
                Err(s) => s - 1,
            };
            // The aggregates of the previous slice drive the next
            // decision; the seeds below force the first slice to run
            // cycle 1, as the dense loop does.
            let mut agg_can_act = true;
            let mut agg_staged = false;
            let mut agg_min_wake: Option<u64> = None;
            let mut agg_all_halted = false;
            let mut agg_non_halted = n as u64;
            // Spans are coordinator-side only: workers stage their tracer
            // calls, so the coordinator owns the one coherent timeline.
            tracer.span_enter(0, Phase::Run);
            tracer.span_enter(0, Phase::Decode);
            tracer.span_exit(0);
            tracer.span_enter(0, Phase::Slice);
            let run_result: Result<(), MachineError> = loop {
                if agg_all_halted {
                    break Ok(());
                }
                // Only the single-threaded coordinator polls the flag —
                // once per slice decision — so workers stay deterministic
                // within a slice.
                if cancel.flag_raised() {
                    break Err(flag_trip(stats.cycles, stats, tracer));
                }
                if stats.cycles >= limit {
                    break Err(budget.trip(stats.cycles, stats, tracer));
                }
                let (next, skipped) = if agg_can_act || agg_staged {
                    (stats.cycles + 1, 0)
                } else if let Some(wake) = agg_min_wake {
                    if wake > limit {
                        // Dense burns the rest of the budget stalling
                        // every dormant core, then trips the watchdog.
                        let span = limit - stats.cycles;
                        if span > 0 && agg_non_halted > 0 {
                            stats.stalls += span * agg_non_halted;
                            tracer.record_many(limit, EventKind::Stall, span * agg_non_halted);
                        }
                        stats.cycles = limit;
                        break Err(budget.trip(limit, stats, tracer));
                    }
                    (wake, wake - stats.cycles - 1)
                } else {
                    // Only blocked receivers remain: run the next cycle
                    // and let the slice observe the deadlock, exactly
                    // like the dense loop's no-progress check.
                    (stats.cycles + 1, 0)
                };
                if skipped > 0 {
                    // Same Slice/Warp alternation as the event scheduler,
                    // so leaves tile [0, cycles] under sharding too.
                    tracer.span_exit(stats.cycles);
                    tracer.span_enter(stats.cycles, Phase::Warp);
                    tracer.span_exit(next - 1);
                    tracer.span_enter(next - 1, Phase::Slice);
                }
                *decision.lock().expect("decision lock") = SliceDecision::Run {
                    cycle: next,
                    skipped,
                };
                barrier.wait(&mut sense); // release the slice
                barrier.wait(&mut sense); // all reports are in
                tracer.span_mark(next, Phase::Barrier);
                stats.cycles = next;
                agg_can_act = false;
                agg_staged = false;
                agg_min_wake = None;
                agg_all_halted = true;
                agg_non_halted = 0;
                let mut progress = false;
                let mut error: Option<MachineError> = None;
                for slot in &slots {
                    let mut report = slot.lock().expect("report lock");
                    stats.stalls += report.pre_stalls;
                    if error.is_none() {
                        StageTracer::replay(&report.ops, tracer);
                        stats.instructions += report.scan.instructions;
                        stats.messages += report.scan.messages;
                        stats.stalls += report.scan.stalls;
                        retries_total += report.retries;
                        progress |= report.progress;
                        for &(from, to, value) in &report.outbox {
                            agg_staged = true;
                            staging[shard_of(to)]
                                .lock()
                                .expect("staging lock")
                                .push((from, to, value));
                        }
                        error = report.error.take();
                        agg_can_act |= report.can_act;
                        if let Some(wake) = report.min_wake {
                            agg_min_wake = Some(agg_min_wake.map_or(wake, |w: u64| w.min(wake)));
                        }
                        agg_all_halted &= report.non_halted == 0;
                        agg_non_halted += report.non_halted;
                    } else {
                        // Dense never reached this shard's cores on the
                        // error cycle: commit only its warp charges.
                        StageTracer::replay(&report.ops[..report.pre_len], tracer);
                    }
                    report.ops.clear();
                    report.outbox.clear();
                    report.pre_len = 0;
                    report.pre_stalls = 0;
                }
                if let Some(e) = error {
                    break Err(e);
                }
                if !progress {
                    break Err(MachineError::Deadlock { cycle: next });
                }
            };
            if run_result.is_ok() {
                tracer.span_exit(stats.cycles);
                tracer.span_exit(stats.cycles);
            }
            *decision.lock().expect("decision lock") = SliceDecision::Stop;
            barrier.wait(&mut sense);
            let children: Vec<(BankedMemory, Mailboxes, Option<FaultPlan>)> = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            (run_result, stats, retries_total, children)
        });

        // Reassemble the machine: banks and mailbox channels return to
        // the parent, then any cross-shard messages staged on the very
        // last slice land in their destination queues (the dense loop
        // would have enqueued them directly).
        let mut mailbox_faults = 0u64;
        for (mem_child, mb_child, stall_plan) in children {
            mailbox_faults += mb_child.faults_injected();
            mailbox_faults += stall_plan.map_or(0, |p| p.injected());
            self.mem.absorb_lanes(mem_child);
            self.mailboxes.absorb(mb_child);
        }
        for slot in &staging {
            let mut staged = slot.lock().expect("staging lock");
            for (from, to, value) in staged.drain(..) {
                self.mailboxes.deposit(from, to, value);
            }
        }
        run_result?;
        for (i, core) in self.cores.iter().enumerate() {
            let (alu, mr, mw) = core.dp.counters();
            let (b_alu, b_mr, b_mw) = base_counters[i];
            stats.alu_ops += alu - b_alu;
            stats.mem_reads += mr - b_mr;
            stats.mem_writes += mw - b_mw;
            if tracer.enabled() {
                tracer.sample("dp.alu_ops", alu - b_alu);
                tracer.sample("dp.mem_ops", (mr - b_mr) + (mw - b_mw));
            }
        }
        let faults_injected = faults.as_ref().map_or(0, FaultPlan::injected) + mailbox_faults;
        Ok(RunOutcome {
            stats,
            faults_injected,
            retries: retries_total,
            degraded: false,
        })
    }

    /// Run one program per core under a fault plan, degrading gracefully
    /// where the sub-type's switches allow it.
    ///
    /// Cores whose DP is marked failed in the plan sit out the main phase;
    /// their programs are then *remapped*: each failed core's IP is rebound
    /// (IP–DP crossbar required) to a healthy DP and its program replays
    /// there, with statistics accumulated sequentially.  The replayed work
    /// observes the substitute DP's lane identity, so its results land in
    /// the substitute lane's bank — degraded, but complete.  Without the
    /// IP–DP crossbar the machine reports
    /// [`MachineError::DegradationImpossible`]: the direct-switched classes
    /// of the paper's Table I cannot route around a dead DP.
    pub fn run_resilient(
        &mut self,
        programs: &[Program],
        plan: FaultPlan,
    ) -> Result<RunOutcome, MachineError> {
        self.run_resilient_traced(programs, plan, &mut NullTracer)
    }

    /// [`MultiMachine::run_resilient`] with observation hooks: the trace
    /// additionally records one `FaultInjected(DpFailed)` per failed DP
    /// and one `Degradation` event per replayed remap.
    pub fn run_resilient_traced<T: Tracer>(
        &mut self,
        programs: &[Program],
        mut plan: FaultPlan,
        tracer: &mut T,
    ) -> Result<RunOutcome, MachineError> {
        if programs.len() != self.cores.len() {
            return Err(MachineError::config(format!(
                "{} programs for {} cores",
                programs.len(),
                self.cores.len()
            )));
        }
        let n = self.cores.len();
        let identity: Vec<usize> = (0..n).collect();
        let failed: Vec<usize> = (0..n).filter(|&i| plan.dp_failed(i)).collect();
        if failed.is_empty() {
            let library: Vec<&Program> = programs.iter().collect();
            return self.execute_with(&library, &identity, Some(plan), tracer);
        }
        for _ in &failed {
            tracer.record(0, EventKind::FaultInjected(FaultKind::DpFailed));
        }
        if failed.len() == n {
            return Err(MachineError::DegradationImpossible {
                machine: self.subtype.class_name(),
                reason: "every data processor has failed".to_owned(),
            });
        }
        if !self.subtype.ip_dp_crossbar() {
            return Err(MachineError::DegradationImpossible {
                machine: self.subtype.class_name(),
                reason: "IP-DP is a direct switch: the IP of a failed DP cannot be \
                         rebound to a healthy one"
                    .to_owned(),
            });
        }
        let idle = Program::new(vec![Instr::Halt]).expect("halt program is valid");
        // One shared library for every phase — the n real programs plus
        // the idle program at index n; phases differ only in the
        // core→program assignment, so nothing is ever cloned per phase.
        let mut library: Vec<&Program> = programs.iter().collect();
        library.push(&idle);
        // Main phase: healthy cores run their own programs, failed ones
        // idle.
        let phase1: Vec<usize> = (0..n)
            .map(|i| if plan.dp_failed(i) { n } else { i })
            .collect();
        let mut outcome = self.execute_with(&library, &phase1, Some(plan.fork()), tracer)?;
        outcome.faults_injected += failed.len() as u64;
        // Replay phases: each failed core's program runs on a healthy DP.
        let spare = (0..n)
            .find(|&i| !plan.dp_failed(i))
            .expect("a healthy DP exists");
        for &f in &failed {
            self.rebind(f, spare)?;
            tracer.record(outcome.stats.cycles, EventKind::Degradation);
            tracer.span_mark(outcome.stats.cycles, Phase::Degrade);
            let phase: Vec<usize> = (0..n).map(|i| if i == f { f } else { n }).collect();
            let replay = self.execute_with(&library, &phase, Some(plan.fork()), tracer)?;
            outcome.stats = outcome.stats.accumulate_sequential(replay.stats);
            outcome.faults_injected += replay.faults_injected;
            outcome.retries += replay.retries;
        }
        outcome.degraded = true;
        Ok(outcome)
    }
}

/// The coordinator's per-slice instruction to every shard worker.
#[derive(Debug, Clone, Copy)]
enum SliceDecision {
    /// Advance to `cycle`; `skipped` idle cycles were warped over first,
    /// each charging every non-halted core one stall (the dense loop
    /// visits those cycles and stalls everyone).
    Run {
        /// The cycle this slice simulates.
        cycle: u64,
        /// Warped-over idle cycles preceding it.
        skipped: u64,
    },
    /// The run is over; workers exit and return their state.
    Stop,
}

/// What one shard worker observed in one cycle-slice.  `ops[..pre_len]`
/// holds the warp charges, committed unconditionally; the rest is the
/// scan, which the coordinator discards for shards after an erring one
/// (the dense loop never reaches their cores on the error cycle).
#[derive(Debug, Default)]
struct SliceReport {
    /// Staged tracer calls (warp charges first, then the scan).
    ops: Vec<StagedOp>,
    /// Boundary between warp and scan ops.
    pre_len: usize,
    /// Stalls charged by the warp.
    pre_stalls: u64,
    /// Stats deltas charged by the scan (instructions/messages/stalls).
    scan: Stats,
    /// Send retries performed during the scan.
    retries: u64,
    /// Did any core make dense-sense forward progress?
    progress: bool,
    /// First error hit during the scan, in core order.
    error: Option<MachineError>,
    /// Cross-shard sends staged for delivery at the next slice.
    outbox: Vec<(usize, usize, Word)>,
    /// Can some local core act on the very next cycle?
    can_act: bool,
    /// Earliest backoff wake among local cores, if any sleep.
    min_wake: Option<u64>,
    /// Local cores still running.
    non_halted: u64,
}

/// Settle the deferred stalls of every blocked receiver for the cycles
/// `blocked_since..=through` (dense charges one stall per parked cycle).
fn flush_blocked_through<T: Tracer>(
    blocked: &[(usize, u64)],
    through: u64,
    stats: &mut Stats,
    tracer: &mut T,
) {
    for &(_, since) in blocked {
        let owed = (through + 1).saturating_sub(since);
        if owed > 0 {
            stats.stalls += owed;
            tracer.record_many(through, EventKind::Stall, owed);
        }
    }
}

/// [`flush_blocked_through`] for an error raised by core `err_core` at
/// `cycle`: dense visits cores in ascending order, so receivers before
/// the erroring core have already stalled this cycle while later ones
/// were never reached.
fn flush_blocked_on_error<T: Tracer>(
    blocked: &[(usize, u64)],
    err_core: usize,
    cycle: u64,
    stats: &mut Stats,
    tracer: &mut T,
) {
    for &(w, since) in blocked {
        let through = if w < err_core { cycle } else { cycle - 1 };
        let owed = (through + 1).saturating_sub(since);
        if owed > 0 {
            stats.stalls += owed;
            tracer.record_many(cycle, EventKind::Stall, owed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;

    fn store_const(addr: Word, value: Word) -> Program {
        let mut asm = Assembler::new();
        asm.movi(0, addr)
            .movi(1, value)
            .emit(Instr::Store(0, 1))
            .emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    #[test]
    fn independent_cores_run_distinct_programs() {
        // IMP-I: n different programs at once — the capability IAP lacks.
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 4, 8);
        let programs: Vec<Program> = (0..4)
            .map(|i| store_const(0, (i as Word + 1) * 11))
            .collect();
        let stats = m.run(&programs).unwrap();
        for core in 0..4 {
            assert_eq!(m.memory().bank(core).contents()[0], (core as Word + 1) * 11);
        }
        assert!(stats.ipc() > 1.0);
    }

    #[test]
    fn simd_emulation_works_on_the_least_flexible_subtype() {
        // The morphing claim: IMP-I acts as an array processor.
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 4, 8);
        for lane in 0..4 {
            m.memory_mut().bank_mut(lane).load(&[lane as Word, 100, 0]);
        }
        let mut asm = Assembler::new();
        asm.movi(0, 0)
            .movi(1, 1)
            .emit(Instr::Load(2, 0))
            .emit(Instr::Load(3, 1))
            .emit(Instr::Add(4, 2, 3))
            .movi(5, 2)
            .emit(Instr::Store(5, 4))
            .emit(Instr::Halt);
        let prog = asm.assemble().unwrap();
        m.run_simd(&prog).unwrap();
        for lane in 0..4 {
            assert_eq!(m.memory().bank(lane).contents()[2], lane as Word + 100);
        }
    }

    #[test]
    fn message_passing_requires_the_dp_dp_crossbar() {
        let mut send_recv: Vec<Program> = Vec::new();
        let mut asm = Assembler::new();
        asm.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
        send_recv.push(asm.assemble().unwrap());
        let mut asm = Assembler::new();
        asm.emit(Instr::Recv(5, 0)).emit(Instr::Halt);
        send_recv.push(asm.assemble().unwrap());

        // IMP-II (DP-DP crossbar): messages flow.
        let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4);
        let stats = m.run(&send_recv).unwrap();
        assert_eq!(m.core_reg(1, 5), 42);
        assert!(stats.messages >= 1);

        // IMP-I (no DP-DP): the send is a route error.
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 2, 4);
        assert!(matches!(
            m.run(&send_recv),
            Err(MachineError::RouteDenied { .. })
        ));
    }

    #[test]
    fn shared_memory_requires_the_dp_dm_crossbar() {
        // Producer writes global address 5 (bank 1 via crossbar); consumer
        // (core 1) reads its own bank — only possible when DP-DM is shared.
        let producer = store_const(5, 7);
        let mut asm = Assembler::new();
        asm.movi(0, 5).movi(2, 0);
        asm.label("spin").unwrap();
        asm.emit(Instr::Load(1, 0));
        asm.beq(1, 2, "spin"); // wait until the producer's value lands
        asm.emit(Instr::Halt);
        let consumer = asm.assemble().unwrap();

        // IMP-III (DP-DM crossbar, code 0b0010): works.
        let mut m = MultiMachine::new(MultiSubtype::from_index(3).unwrap(), 2, 4);
        m.run(&[producer.clone(), consumer.clone()]).unwrap();
        assert_eq!(m.core_reg(1, 1), 7);

        // IMP-I: core 0's address 5 overflows its 4-word private bank.
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 2, 4);
        assert!(matches!(
            m.run(&[producer, consumer]),
            Err(MachineError::MemoryOutOfBounds { .. })
        ));
    }

    #[test]
    fn shared_program_store_requires_ip_im_crossbar() {
        let lib = vec![store_const(0, 5)];
        // IMP-V (IP-IM crossbar, code 0b0100): both cores run program 0.
        let mut m = MultiMachine::new(MultiSubtype::from_index(5).unwrap(), 2, 4);
        m.run_shared(&lib, &[0, 0]).unwrap();
        assert_eq!(m.memory().bank(0).contents()[0], 5);
        assert_eq!(m.memory().bank(1).contents()[0], 5);

        // IMP-I: cross-assignment denied.
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 2, 4);
        assert!(matches!(
            m.run_shared(&lib, &[0, 0]),
            Err(MachineError::WorkloadUnsupported { .. })
        ));
    }

    #[test]
    fn rebinding_requires_ip_dp_crossbar() {
        // IMP-IX (IP-DP crossbar, code 0b1000).
        let mut m = MultiMachine::new(MultiSubtype::from_index(9).unwrap(), 2, 4);
        m.rebind(0, 1).unwrap();
        let prog = store_const(0, 9);
        let idle = Program::new(vec![Instr::Halt]).unwrap();
        m.run(&[prog.clone(), idle.clone()]).unwrap();
        // Core 0 now drives lane 1, so the write lands in bank 1.
        assert_eq!(m.memory().bank(1).contents()[0], 9);

        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 2, 4);
        assert!(matches!(
            m.rebind(0, 1),
            Err(MachineError::WorkloadUnsupported { .. })
        ));
    }

    #[test]
    fn recv_without_sender_deadlocks() {
        let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4);
        let mut asm = Assembler::new();
        asm.emit(Instr::Recv(0, 1)).emit(Instr::Halt);
        let waiter = asm.assemble().unwrap();
        let idle = Program::new(vec![Instr::Halt]).unwrap();
        assert!(matches!(
            m.run(&[waiter, idle]),
            Err(MachineError::Deadlock { .. })
        ));
    }

    #[test]
    fn subtype_codes_round_trip() {
        for idx in 1..=16u8 {
            let s = MultiSubtype::from_index(idx).unwrap();
            assert_eq!(s.code(), idx - 1);
        }
        assert!(MultiSubtype::from_index(0).is_err());
        assert!(MultiSubtype::from_index(17).is_err());
        assert!(MultiSubtype::from_code(16).is_err());
        assert_eq!(
            MultiSubtype::from_index(14).unwrap().class_name(),
            "IMP-XIV"
        );
    }

    #[test]
    fn specs_classify_back_to_their_subtype() {
        use skilltax_taxonomy::classify;
        for code in 0..16u8 {
            let m = MultiMachine::new(MultiSubtype::from_code(code).unwrap(), 4, 4);
            let c = classify(&m.spec()).unwrap();
            assert_eq!(
                c.name().to_string(),
                m.subtype().class_name(),
                "code {code}"
            );
        }
    }

    #[test]
    fn resilient_run_degrades_with_ip_dp_crossbar() {
        use crate::fault::FaultPlan;
        // IMP-IX (code 0b1000): IP-DP crossbar, everything else direct.
        let mut m = MultiMachine::new(MultiSubtype::from_index(9).unwrap(), 3, 8);
        let programs: Vec<Program> = (0..3)
            .map(|i| store_const(0, (i as Word + 1) * 5))
            .collect();
        let outcome = m
            .run_resilient(&programs, FaultPlan::seeded(1).fail_dp(2))
            .unwrap();
        assert!(outcome.degraded);
        // Healthy lanes keep their results; lane 2's work replayed on the
        // spare (lane 0), overwriting its value — degraded but complete.
        assert_eq!(m.memory().bank(1).contents()[0], 10);
        assert_eq!(m.memory().bank(0).contents()[0], 15);
    }

    #[test]
    fn resilient_run_impossible_without_ip_dp_crossbar() {
        use crate::fault::FaultPlan;
        // IMP-I: all switches direct — the rigid end of the ordering.
        let mut m = MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 3, 8);
        let programs: Vec<Program> = (0..3).map(|i| store_const(0, i as Word)).collect();
        assert!(matches!(
            m.run_resilient(&programs, FaultPlan::seeded(1).fail_dp(2)),
            Err(MachineError::DegradationImpossible { .. })
        ));
    }

    fn send_recv_pair() -> Vec<Program> {
        let mut programs = Vec::new();
        let mut asm = Assembler::new();
        asm.movi(0, 42).emit(Instr::Send(1, 0)).emit(Instr::Halt);
        programs.push(asm.assemble().unwrap());
        let mut asm = Assembler::new();
        asm.emit(Instr::Recv(5, 0)).emit(Instr::Halt);
        programs.push(asm.assemble().unwrap());
        programs
    }

    #[test]
    fn transient_link_outage_is_survived_by_backoff() {
        use crate::fault::{FaultPlan, LinkOutage};
        let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4);
        let plan = FaultPlan::seeded(0).fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: 4,
        });
        let outcome = m.run_resilient(&send_recv_pair(), plan).unwrap();
        assert_eq!(
            m.core_reg(1, 5),
            42,
            "the message got through after the outage"
        );
        assert!(outcome.retries >= 1, "the sender had to retry");
        assert!(outcome.faults_injected >= 1);
        assert!(!outcome.degraded);
    }

    #[test]
    fn permanent_link_outage_exhausts_retries() {
        use crate::fault::{FaultPlan, LinkOutage};
        let mut m = MultiMachine::new(MultiSubtype::from_index(2).unwrap(), 2, 4);
        let plan = FaultPlan::seeded(0)
            .fail_link(LinkOutage {
                from: 0,
                to: 1,
                from_cycle: 0,
                until_cycle: u64::MAX,
            })
            .with_max_retries(3);
        assert!(matches!(
            m.run_resilient(&send_recv_pair(), plan),
            Err(MachineError::RetryExhausted {
                from: 0,
                to: 1,
                attempts: 4
            })
        ));
    }

    #[test]
    fn adversarial_stalls_trip_the_watchdog_with_partial_stats() {
        use crate::fault::FaultPlan;
        let mut m =
            MultiMachine::new(MultiSubtype::from_index(1).unwrap(), 2, 4).with_cycle_limit(100);
        let programs: Vec<Program> = (0..2).map(|i| store_const(0, i as Word)).collect();
        match m.run_resilient(&programs, FaultPlan::seeded(5).stall_dps(1.0)) {
            Err(MachineError::WatchdogTimeout {
                limit: 100,
                partial,
            }) => {
                assert_eq!(partial.cycles, 100);
                assert!(
                    partial.stalls > 0,
                    "the stall storm shows up in partial stats"
                );
            }
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
    }

    #[test]
    fn getlane_rejected_on_mimd() {
        let mut m = MultiMachine::new(MultiSubtype::from_index(16).unwrap(), 2, 4);
        let prog = Program::new(vec![Instr::GetLane(0, 1, 2), Instr::Halt]).unwrap();
        let progs = vec![prog, Program::new(vec![Instr::Halt]).unwrap()];
        assert!(matches!(
            m.run(&progs),
            Err(MachineError::WorkloadUnsupported { .. })
        ));
    }
}

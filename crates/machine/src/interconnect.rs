//! Runtime interconnect fabrics for the DP–DP and IP–IP relations.
//!
//! The taxonomy's switch kinds become routing rules here: `none` denies all
//! transfers, a full crossbar routes anything, and a *windowed* fabric
//! (DRRA's 3-hop / 14-element neighbourhood, written `nx14` in Table III)
//! routes only within a distance bound.  Message passing itself is modelled
//! with per-channel mailboxes.

use std::collections::VecDeque;

use crate::error::MachineError;
use crate::fault::FaultPlan;
use crate::isa::Word;

/// The runtime topology of one fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricTopology {
    /// No switch on this relation: every transfer is denied.
    None,
    /// Full crossbar: any processor reaches any other.
    Crossbar,
    /// Windowed (limited) crossbar: `|from - to| <= hops`, and not self.
    Window {
        /// Maximum hop distance.
        hops: usize,
    },
    /// Nearest-neighbour ring: `|from - to| == 1` modulo `n`.
    Ring,
}

impl FabricTopology {
    /// Can `from` reach `to` in a fabric of `n` endpoints?
    pub fn routable(&self, from: usize, to: usize, n: usize) -> bool {
        if from >= n || to >= n || from == to {
            return false;
        }
        match *self {
            FabricTopology::None => false,
            FabricTopology::Crossbar => true,
            FabricTopology::Window { hops } => from.abs_diff(to) <= hops,
            FabricTopology::Ring => {
                let d = from.abs_diff(to);
                d == 1 || d == n - 1
            }
        }
    }

    /// Check a route, returning a typed error when denied.
    pub fn route(&self, from: usize, to: usize, n: usize) -> Result<(), MachineError> {
        if self.routable(from, to, n) {
            Ok(())
        } else {
            let reason = match *self {
                FabricTopology::None => "no switch on this relation".to_owned(),
                FabricTopology::Crossbar => {
                    format!("endpoint out of range (n = {n}) or self-transfer")
                }
                FabricTopology::Window { hops } => {
                    format!("destination outside the {hops}-hop window")
                }
                FabricTopology::Ring => "destination is not a ring neighbour".to_owned(),
            };
            Err(MachineError::RouteDenied { from, to, reason })
        }
    }

    /// Configuration bits this fabric needs for `n` endpoints (consistent
    /// with the `skilltax-estimate` mux model: every sink selects among its
    /// reachable sources).
    pub fn config_bits(&self, n: usize) -> u64 {
        let clog2 = |x: u64| -> u64 {
            if x <= 1 {
                0
            } else {
                u64::from(64 - (x - 1).leading_zeros())
            }
        };
        let n64 = n as u64;
        match *self {
            FabricTopology::None => 0,
            FabricTopology::Crossbar => n64 * clog2(n64 + 1),
            FabricTopology::Window { hops } => {
                let window = (2 * hops as u64).min(n64.saturating_sub(1));
                n64 * clog2(window + 1)
            }
            FabricTopology::Ring => n64, // one bit per node: listen left/right
        }
    }
}

/// Per-channel FIFO mailboxes for message transfers over a fabric.
///
/// When a [`FaultPlan`] is installed (via [`Mailboxes::with_faults`]) the
/// send path is subject to injected link outages ([`MachineError::LinkDown`]),
/// silent message drops and payload corruption; the owning machine advances
/// the plan's notion of time with [`Mailboxes::set_cycle`].
#[derive(Debug, Clone)]
pub struct Mailboxes {
    n: usize,
    topology: FabricTopology,
    queues: Vec<VecDeque<Word>>, // indexed from * n + to
    non_empty: usize,            // channels with at least one queued message
    delivered: u64,
    faults: Option<FaultPlan>,
    cycle: u64,
}

impl Mailboxes {
    /// Mailboxes for `n` endpoints over `topology`.
    pub fn new(n: usize, topology: FabricTopology) -> Mailboxes {
        Mailboxes {
            n,
            topology,
            queues: vec![VecDeque::new(); n * n],
            non_empty: 0,
            delivered: 0,
            faults: None,
            cycle: 0,
        }
    }

    /// Install a fault plan on the send path.
    pub fn with_faults(mut self, plan: FaultPlan) -> Mailboxes {
        self.faults = Some(plan);
        self
    }

    /// Install (or replace) a fault plan in place.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Tell the fault plan what cycle it is (for link-outage windows).
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Faults the installed plan has injected on this fabric so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultPlan::injected)
    }

    /// Is a fault plan currently installed on the send path?
    pub fn has_fault_plan(&self) -> bool {
        self.faults.is_some()
    }

    /// The fabric topology.
    pub fn topology(&self) -> FabricTopology {
        self.topology
    }

    /// Send `value` from `from` to `to` (fails if the fabric denies the
    /// route, or with [`MachineError::LinkDown`] when an injected outage
    /// covers the link this cycle; an injected drop silently loses the
    /// message, and injected corruption flips one payload bit).
    pub fn send(&mut self, from: usize, to: usize, value: Word) -> Result<(), MachineError> {
        self.topology.route(from, to, self.n)?;
        let mut value = value;
        if let Some(plan) = self.faults.as_mut() {
            if plan.link_down(self.cycle, from, to) {
                return Err(MachineError::LinkDown {
                    from,
                    to,
                    cycle: self.cycle,
                });
            }
            if plan.should_drop() {
                return Ok(()); // lost in flight; the receiver keeps waiting
            }
            value = plan.corrupt(value);
        }
        let queue = &mut self.queues[from * self.n + to];
        queue.push_back(value);
        if queue.len() == 1 {
            self.non_empty += 1;
        }
        Ok(())
    }

    /// Receive at `to` from `from`: `Ok(None)` means the route is legal but
    /// no value has arrived yet (the caller stalls).
    pub fn recv(&mut self, to: usize, from: usize) -> Result<Option<Word>, MachineError> {
        self.topology.route(from, to, self.n)?;
        let queue = &mut self.queues[from * self.n + to];
        let v = queue.pop_front();
        if v.is_some() {
            self.delivered += 1;
            if queue.is_empty() {
                self.non_empty -= 1;
            }
        }
        Ok(v)
    }

    /// Messages actually delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Carve out a shard-local mailbox set: all queues whose *destination*
    /// lane lies in `to_range` are moved into a fresh `Mailboxes` of the
    /// same geometry, which the shard worker owns exclusively (its cores
    /// are the only receivers on those channels).  `plan` is the shard's
    /// forked fault plan.  Restore with [`Mailboxes::absorb`].
    pub fn split_inbound(
        &mut self,
        to_range: std::ops::Range<usize>,
        plan: Option<FaultPlan>,
    ) -> Mailboxes {
        let mut child = Mailboxes::new(self.n, self.topology);
        child.faults = plan;
        child.cycle = self.cycle;
        for from in 0..self.n {
            for to in to_range.clone() {
                let idx = from * self.n + to;
                if !self.queues[idx].is_empty() {
                    self.non_empty -= 1;
                    child.non_empty += 1;
                    std::mem::swap(&mut self.queues[idx], &mut child.queues[idx]);
                }
            }
        }
        child
    }

    /// Drain every queue of a shard-local mailbox set back into this one
    /// and accumulate its delivery count (fault-injection counts are read
    /// separately via [`Mailboxes::faults_injected`] before absorbing).
    pub fn absorb(&mut self, child: Mailboxes) {
        for (idx, queue) in child.queues.into_iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            if self.queues[idx].is_empty() {
                self.non_empty += 1;
            }
            self.queues[idx].extend(queue);
        }
        self.delivered += child.delivered;
    }

    /// Enqueue an already-validated message (a staged cross-shard send
    /// whose route and fault checks ran on the sender's side).
    pub fn deposit(&mut self, from: usize, to: usize, value: Word) {
        let queue = &mut self.queues[from * self.n + to];
        queue.push_back(value);
        if queue.len() == 1 {
            self.non_empty += 1;
        }
    }

    /// Run the send-path checks (route + fault plan) *without* enqueueing:
    /// the cross-shard half of [`Mailboxes::send`].  Returns the value to
    /// stage, or `None` when the plan dropped the message in flight.
    /// Callers that shard must gate out plans with per-send random rolls
    /// (see [`FaultPlan::has_message_rolls`]); link outages are
    /// deterministic and check identically here.
    pub fn prepare_send(
        &mut self,
        from: usize,
        to: usize,
        value: Word,
    ) -> Result<Option<Word>, MachineError> {
        self.topology.route(from, to, self.n)?;
        let mut value = value;
        if let Some(plan) = self.faults.as_mut() {
            if plan.link_down(self.cycle, from, to) {
                return Err(MachineError::LinkDown {
                    from,
                    to,
                    cycle: self.cycle,
                });
            }
            if plan.should_drop() {
                return Ok(None);
            }
            value = plan.corrupt(value);
        }
        Ok(Some(value))
    }

    /// Is at least one message queued on the `from -> to` channel?
    pub fn has_pending(&self, to: usize, from: usize) -> bool {
        !self.queues[from * self.n + to].is_empty()
    }

    /// Are any messages still in flight?  O(1): the non-empty-channel
    /// count is maintained incrementally by `send`/`recv`.
    pub fn any_pending(&self) -> bool {
        debug_assert_eq!(
            self.non_empty > 0,
            self.queues.iter().any(|q| !q.is_empty()),
            "incremental non-empty count diverged from the channel scan"
        );
        self.non_empty > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_denies_everything() {
        let t = FabricTopology::None;
        assert!(!t.routable(0, 1, 4));
        assert!(t.route(0, 1, 4).is_err());
        assert_eq!(t.config_bits(16), 0);
    }

    #[test]
    fn crossbar_routes_everything_but_self() {
        let t = FabricTopology::Crossbar;
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.routable(a, b, 4), a != b);
            }
        }
        assert!(!t.routable(0, 9, 4));
    }

    #[test]
    fn window_respects_hop_distance() {
        // DRRA: 3 hops left or right.
        let t = FabricTopology::Window { hops: 3 };
        assert!(t.routable(5, 8, 16));
        assert!(t.routable(5, 2, 16));
        assert!(!t.routable(5, 9, 16));
        assert!(!t.routable(0, 4, 16));
        assert!(t.route(0, 4, 16).is_err());
    }

    #[test]
    fn ring_wraps_around() {
        let t = FabricTopology::Ring;
        assert!(t.routable(0, 1, 8));
        assert!(t.routable(0, 7, 8));
        assert!(!t.routable(0, 2, 8));
    }

    #[test]
    fn config_bits_ordering_full_beats_window_beats_ring() {
        let n = 64;
        let full = FabricTopology::Crossbar.config_bits(n);
        let window = FabricTopology::Window { hops: 3 }.config_bits(n);
        let ring = FabricTopology::Ring.config_bits(n);
        assert!(full > window, "{full} vs {window}");
        assert!(window > ring, "{window} vs {ring}");
    }

    #[test]
    fn mailboxes_deliver_fifo() {
        let mut mb = Mailboxes::new(4, FabricTopology::Crossbar);
        mb.send(0, 2, 10).unwrap();
        mb.send(0, 2, 20).unwrap();
        assert_eq!(mb.recv(2, 0).unwrap(), Some(10));
        assert_eq!(mb.recv(2, 0).unwrap(), Some(20));
        assert_eq!(mb.recv(2, 0).unwrap(), None); // legal route, no data
        assert_eq!(mb.delivered(), 2);
        assert!(!mb.any_pending());
    }

    #[test]
    fn mailboxes_enforce_topology() {
        let mut mb = Mailboxes::new(8, FabricTopology::Window { hops: 1 });
        assert!(mb.send(0, 5, 1).is_err());
        assert!(mb.send(0, 1, 1).is_ok());
        assert!(mb.recv(5, 0).is_err());
    }

    #[test]
    fn injected_outage_turns_send_into_link_down() {
        use crate::fault::{FaultPlan, LinkOutage};
        let plan = FaultPlan::seeded(1).fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: 10,
        });
        let mut mb = Mailboxes::new(4, FabricTopology::Crossbar).with_faults(plan);
        mb.set_cycle(5);
        assert_eq!(
            mb.send(0, 1, 7),
            Err(MachineError::LinkDown {
                from: 0,
                to: 1,
                cycle: 5
            })
        );
        // Other links are unaffected, and the outage window ends.
        assert!(mb.send(2, 1, 7).is_ok());
        mb.set_cycle(11);
        assert!(mb.send(0, 1, 7).is_ok());
        assert_eq!(mb.faults_injected(), 1);
    }

    #[test]
    fn injected_drops_lose_messages_silently() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::seeded(2).drop_messages(1.0);
        let mut mb = Mailboxes::new(2, FabricTopology::Crossbar).with_faults(plan);
        mb.send(0, 1, 42).unwrap();
        assert_eq!(mb.recv(1, 0).unwrap(), None);
        assert!(mb.faults_injected() >= 1);
    }

    #[test]
    fn injected_corruption_flips_one_payload_bit() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::seeded(3).corrupt_messages(1.0);
        let mut mb = Mailboxes::new(2, FabricTopology::Crossbar).with_faults(plan);
        mb.send(0, 1, 0).unwrap();
        let got = mb.recv(1, 0).unwrap().unwrap();
        assert_eq!(got.count_ones(), 1, "exactly one bit flipped: {got:#x}");
    }

    #[test]
    fn any_pending_tracks_interleaved_sends_and_recvs() {
        let mut mb = Mailboxes::new(3, FabricTopology::Crossbar);
        assert!(!mb.any_pending());
        mb.send(0, 1, 1).unwrap();
        mb.send(0, 1, 2).unwrap();
        mb.send(2, 1, 3).unwrap();
        assert!(mb.any_pending());
        assert_eq!(mb.recv(1, 0).unwrap(), Some(1));
        assert!(mb.any_pending(), "one channel drained, one still loaded");
        assert_eq!(mb.recv(1, 0).unwrap(), Some(2));
        assert!(mb.any_pending());
        assert_eq!(mb.recv(1, 2).unwrap(), Some(3));
        assert!(!mb.any_pending());
        assert_eq!(mb.recv(1, 2).unwrap(), None);
        assert!(!mb.any_pending());
    }

    #[test]
    fn channels_are_independent() {
        let mut mb = Mailboxes::new(3, FabricTopology::Crossbar);
        mb.send(0, 1, 7).unwrap();
        mb.send(2, 1, 8).unwrap();
        assert_eq!(mb.recv(1, 2).unwrap(), Some(8));
        assert_eq!(mb.recv(1, 0).unwrap(), Some(7));
    }
}

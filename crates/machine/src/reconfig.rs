//! Reconfiguration-overhead analysis: the paper's central trade-off made
//! quantitative at run time.
//!
//! "The relationship between flexibility and configuration overhead is
//! inversely proportional.  An FPGA is most flexible at the cost of
//! enormous reconfiguration overhead while an ASIC is least flexible at
//! no reconfiguration cost."  Eq 2 predicts the *bits*; this module turns
//! bits into *cycles* (given a configuration-bus width) and answers the
//! designer's operational question: after a reconfiguration, how many
//! workload executions does it take before the new configuration's
//! speed-up has paid for its load time?

use crate::error::MachineError;

/// The configuration-load interface of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigPort {
    /// Bits written per cycle (configuration-bus width).
    pub bus_bits_per_cycle: u32,
    /// Fixed handshake/setup cycles per reconfiguration.
    pub setup_cycles: u64,
}

impl Default for ConfigPort {
    fn default() -> Self {
        ConfigPort {
            bus_bits_per_cycle: 32,
            setup_cycles: 16,
        }
    }
}

impl ConfigPort {
    /// Cycles to load a configuration of `config_bits` bits.
    pub fn load_cycles(&self, config_bits: u64) -> u64 {
        self.setup_cycles + config_bits.div_ceil(u64::from(self.bus_bits_per_cycle.max(1)))
    }
}

/// Break-even analysis between two execution options for the same
/// workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakEven {
    /// Reconfiguration cost of the candidate, in cycles.
    pub reconfig_cycles: u64,
    /// Candidate's per-execution cycles.
    pub candidate_cycles: u64,
    /// Incumbent's per-execution cycles (no reconfiguration needed).
    pub incumbent_cycles: u64,
    /// Executions after which the candidate (including its one-off
    /// reconfiguration) is ahead; `None` if it never catches up.
    pub executions_to_amortize: Option<u64>,
}

/// Compute the break-even point: reconfigure to a faster machine or keep
/// running on the current one?
pub fn break_even(
    reconfig_cycles: u64,
    candidate_cycles: u64,
    incumbent_cycles: u64,
) -> Result<BreakEven, MachineError> {
    if candidate_cycles == 0 || incumbent_cycles == 0 {
        return Err(MachineError::config(
            "per-execution cycle counts must be positive",
        ));
    }
    let executions_to_amortize = if candidate_cycles >= incumbent_cycles {
        None // never: the candidate is not faster per execution.
    } else {
        let gain = incumbent_cycles - candidate_cycles;
        Some(reconfig_cycles.div_ceil(gain))
    };
    Ok(BreakEven {
        reconfig_cycles,
        candidate_cycles,
        incumbent_cycles,
        executions_to_amortize,
    })
}

/// Total cycles to run `executions` on the candidate, reconfiguration
/// included.
pub fn total_with_reconfig(reconfig_cycles: u64, per_exec: u64, executions: u64) -> u64 {
    reconfig_cycles + per_exec * executions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArraySubtype;
    use crate::workload::{run_vector_add_array, run_vector_add_uni};
    use skilltax_estimate::{estimate_config_bits, CostParams};

    #[test]
    fn load_cycles_round_up_and_include_setup() {
        let port = ConfigPort {
            bus_bits_per_cycle: 32,
            setup_cycles: 10,
        };
        assert_eq!(port.load_cycles(0), 10);
        assert_eq!(port.load_cycles(1), 11);
        assert_eq!(port.load_cycles(32), 11);
        assert_eq!(port.load_cycles(33), 12);
    }

    #[test]
    fn break_even_math() {
        // Reconfig 100 cycles; candidate saves 10 cycles/run => 10 runs.
        let be = break_even(100, 40, 50).unwrap();
        assert_eq!(be.executions_to_amortize, Some(10));
        // Equal speed never amortizes.
        assert_eq!(
            break_even(100, 50, 50).unwrap().executions_to_amortize,
            None
        );
        // Slower never amortizes.
        assert_eq!(break_even(0, 60, 50).unwrap().executions_to_amortize, None);
        // Free reconfiguration amortizes immediately (0 executions).
        assert_eq!(
            break_even(0, 40, 50).unwrap().executions_to_amortize,
            Some(0)
        );
        assert!(break_even(1, 0, 5).is_err());
    }

    #[test]
    fn total_cost_is_linear_in_executions() {
        assert_eq!(total_with_reconfig(100, 7, 0), 100);
        assert_eq!(total_with_reconfig(100, 7, 10), 170);
    }

    #[test]
    fn simd_reconfiguration_amortizes_against_the_uniprocessor() {
        // The end-to-end designer story: an IUP is running vector adds; is
        // it worth loading a 16-lane IAP-II configuration?
        let a: Vec<i64> = (0..16).collect();
        let b: Vec<i64> = (16..32).collect();
        let uni = run_vector_add_uni(&a, &b).unwrap();
        let simd = run_vector_add_array(ArraySubtype::II, &a, &b).unwrap();
        assert!(simd.stats.cycles < uni.stats.cycles);

        // Eq 2 gives the candidate's configuration volume.
        let machine = crate::array::ArrayMachine::new(ArraySubtype::II, 16, 4);
        let cb = estimate_config_bits(&machine.spec(), &CostParams::default()).total();
        let port = ConfigPort::default();
        let be = break_even(port.load_cycles(cb), simd.stats.cycles, uni.stats.cycles).unwrap();
        let n = be.executions_to_amortize.expect("SIMD is faster per run");
        assert!(n > 0, "configuration is never free");
        // And the break-even is real: at n executions the candidate total
        // is at most the incumbent total; at n-1 it was not.
        let cand = total_with_reconfig(be.reconfig_cycles, be.candidate_cycles, n);
        let incu = be.incumbent_cycles * n;
        assert!(cand <= incu, "{cand} vs {incu}");
        if n > 1 {
            let cand_prev = total_with_reconfig(be.reconfig_cycles, be.candidate_cycles, n - 1);
            assert!(cand_prev > be.incumbent_cycles * (n - 1));
        }
    }

    #[test]
    fn fpga_takes_far_longer_to_load_than_a_cgra() {
        use skilltax_model::dsl::parse_row;
        let params = CostParams::default();
        let port = ConfigPort::default();
        let fpga = parse_row("FPGA", "v | v | vxv | vxv | vxv | vxv | vxv").unwrap();
        let cgra = parse_row("CGRA", "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64").unwrap();
        let fpga_load = port.load_cycles(estimate_config_bits(&fpga, &params).total());
        let cgra_load = port.load_cycles(estimate_config_bits(&cgra, &params).total());
        assert!(
            fpga_load > 20 * cgra_load,
            "fpga {fpga_load} vs cgra {cgra_load}"
        );
    }
}

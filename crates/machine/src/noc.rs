//! A packet-switched 2D-mesh network-on-chip — the interconnect substrate
//! of REDEFINE ("computational elements connected together by a packet
//! switched NoC") and the wormhole style of Colt.
//!
//! Dimension-ordered (XY) routing, one-flit packets, single-cycle hops,
//! one packet forwarded per router output per cycle.  The NoC is the
//! *latency-realistic* alternative to the idealised crossbar mailboxes in
//! [`crate::interconnect`]: the ablation benches compare the two.

use std::collections::VecDeque;

use crate::error::MachineError;
use crate::fault::{FaultPlan, DEFAULT_PACKET_TTL};
use crate::isa::Word;

/// A one-flit packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Source node id (row-major).
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Payload word.
    pub payload: Word,
    /// Cycle at which the packet was injected (for latency accounting).
    pub injected_at: u64,
}

/// A delivered packet with its measured latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The packet.
    pub packet: Packet,
    /// Cycles from injection to delivery.
    pub latency: u64,
}

/// One router's state: queues per output port plus a local delivery queue.
#[derive(Debug, Clone, Default)]
struct Router {
    /// Packets waiting to be forwarded, per direction: E, W, N, S.
    out: [VecDeque<Packet>; 4],
    /// Packets that have arrived at their destination.
    local: VecDeque<Packet>,
}

const EAST: usize = 0;
const WEST: usize = 1;
const NORTH: usize = 2;
const SOUTH: usize = 3;

/// A `width x height` mesh NoC.
///
/// Every packet carries a time-to-live: a packet still in flight after
/// `ttl` cycles (default [`DEFAULT_PACKET_TTL`]) is declared lost and
/// surfaces from [`MeshNoc::drain`] as [`MachineError::RetryExhausted`].
/// An optional [`FaultPlan`] injects link outages (packets wait at the
/// router, consuming TTL) and drops (packets vanish, counted as lost).
#[derive(Debug, Clone)]
pub struct MeshNoc {
    width: usize,
    height: usize,
    routers: Vec<Router>,
    cycle: u64,
    injected: u64,
    delivered: u64,
    lost: u64,
    ttl: u64,
    faults: Option<FaultPlan>,
    expired: Option<Packet>,
}

impl MeshNoc {
    /// Build a mesh; both dimensions must be at least 1 and the mesh must
    /// have at least 2 nodes.
    pub fn new(width: usize, height: usize) -> Result<MeshNoc, MachineError> {
        if width == 0 || height == 0 || width * height < 2 {
            return Err(MachineError::config(format!(
                "mesh of {width}x{height} is not a network"
            )));
        }
        Ok(MeshNoc {
            width,
            height,
            routers: vec![Router::default(); width * height],
            cycle: 0,
            injected: 0,
            delivered: 0,
            lost: 0,
            ttl: DEFAULT_PACKET_TTL,
            faults: None,
            expired: None,
        })
    }

    /// Install a fault plan (link outages stall packets, drops lose them).
    pub fn with_faults(mut self, plan: FaultPlan) -> MeshNoc {
        self.faults = Some(plan);
        self
    }

    /// Override the per-packet time-to-live (must be non-zero).
    pub fn with_packet_ttl(mut self, ttl: u64) -> MeshNoc {
        self.ttl = ttl.max(1);
        self
    }

    /// Packets lost to injected drops or TTL expiry.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Faults the installed plan has injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultPlan::injected)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// (injected, delivered) packet counters.
    pub fn traffic(&self) -> (u64, u64) {
        (self.injected, self.delivered)
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.width, node / self.width)
    }

    /// Manhattan distance between two nodes.
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The XY-routing output port at `node` for a packet heading to `dst`,
    /// or `None` if the packet has arrived.
    fn route(&self, node: usize, dst: usize) -> Option<usize> {
        let (x, y) = self.coords(node);
        let (dx, dy) = self.coords(dst);
        if x < dx {
            Some(EAST)
        } else if x > dx {
            Some(WEST)
        } else if y < dy {
            Some(SOUTH)
        } else if y > dy {
            Some(NORTH)
        } else {
            None
        }
    }

    fn neighbour(&self, node: usize, port: usize) -> usize {
        let (x, y) = self.coords(node);
        match port {
            EAST => y * self.width + (x + 1),
            WEST => y * self.width + (x - 1),
            NORTH => (y - 1) * self.width + x,
            SOUTH => (y + 1) * self.width + x,
            _ => unreachable!("four ports"),
        }
    }

    /// Inject a packet at its source router.
    pub fn inject(&mut self, src: usize, dst: usize, payload: Word) -> Result<(), MachineError> {
        if src >= self.nodes() || dst >= self.nodes() {
            return Err(MachineError::RouteDenied {
                from: src,
                to: dst,
                reason: format!("mesh has {} nodes", self.nodes()),
            });
        }
        let packet = Packet {
            src,
            dst,
            payload,
            injected_at: self.cycle,
        };
        self.injected += 1;
        match self.route(src, dst) {
            None => self.routers[src].local.push_back(packet),
            Some(port) => self.routers[src].out[port].push_back(packet),
        }
        Ok(())
    }

    /// Advance one cycle: every router forwards at most one packet per
    /// output port.  Returns the packets delivered this cycle.
    ///
    /// Packets older than the TTL are declared lost; a link covered by an
    /// injected outage holds its head-of-line packet in place (consuming
    /// TTL), and an injected drop loses the packet mid-hop.
    pub fn step(&mut self) -> Vec<Delivery> {
        self.cycle += 1;
        // Collect moves first (synchronous update).
        let mut moves: Vec<(usize, Packet)> = Vec::new();
        for node in 0..self.nodes() {
            for port in 0..4 {
                let Some(&head) = self.routers[node].out[port].front() else {
                    continue;
                };
                if self.cycle - head.injected_at > self.ttl {
                    self.routers[node].out[port].pop_front();
                    self.lost += 1;
                    self.expired.get_or_insert(head);
                    continue;
                }
                let next = self.neighbour(node, port);
                if let Some(plan) = self.faults.as_mut() {
                    if plan.link_down(self.cycle, node, next) {
                        continue; // head-of-line blocked; TTL keeps ticking
                    }
                    if plan.should_drop() {
                        self.routers[node].out[port].pop_front();
                        self.lost += 1;
                        continue;
                    }
                }
                self.routers[node].out[port].pop_front();
                moves.push((next, head));
            }
        }
        let mut delivered = Vec::new();
        for (node, packet) in moves {
            match self.route(node, packet.dst) {
                None => {
                    self.routers[node].local.push_back(packet);
                }
                Some(port) => self.routers[node].out[port].push_back(packet),
            }
        }
        for node in 0..self.nodes() {
            while let Some(mut packet) = self.routers[node].local.pop_front() {
                if let Some(plan) = self.faults.as_mut() {
                    packet.payload = plan.corrupt(packet.payload);
                }
                self.delivered += 1;
                delivered.push(Delivery {
                    packet,
                    latency: self.cycle - packet.injected_at,
                });
            }
        }
        delivered
    }

    /// Run until every in-flight packet is delivered or lost (or the cycle
    /// budget runs out).  Returns all deliveries in delivery order; the
    /// first TTL-expired packet surfaces as
    /// [`MachineError::RetryExhausted`], an exhausted budget as
    /// [`MachineError::CycleLimitExceeded`].
    pub fn drain(&mut self, budget: u64) -> Result<Vec<Delivery>, MachineError> {
        let mut out = Vec::new();
        let start = self.cycle;
        while self.injected > self.delivered + self.lost {
            if self.cycle - start >= budget {
                return Err(MachineError::CycleLimitExceeded { limit: budget });
            }
            out.extend(self.step());
            if let Some(p) = self.expired.take() {
                return Err(MachineError::RetryExhausted {
                    from: p.src,
                    to: p.dst,
                    attempts: u32::try_from(self.ttl).unwrap_or(u32::MAX),
                });
            }
        }
        Ok(out)
    }

    /// Configuration bits: XY routing is algorithmic, so only each node's
    /// coordinate register needs programming.
    pub fn config_bits(&self) -> u64 {
        let clog2 = |x: u64| {
            if x <= 1 {
                0
            } else {
                u64::from(64 - (x - 1).leading_zeros())
            }
        };
        self.nodes() as u64 * (clog2(self.width as u64) + clog2(self.height as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_latency_equals_hop_distance() {
        let mut noc = MeshNoc::new(4, 4).unwrap();
        noc.inject(0, 15, 42).unwrap();
        let deliveries = noc.drain(100).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].packet.payload, 42);
        // 0 -> 15 in a 4x4 mesh: 3 + 3 = 6 hops.
        assert_eq!(noc.hop_distance(0, 15), 6);
        assert_eq!(deliveries[0].latency, 6);
    }

    #[test]
    fn local_delivery_is_immediate() {
        let mut noc = MeshNoc::new(2, 2).unwrap();
        noc.inject(1, 1, 7).unwrap();
        let deliveries = noc.step();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].latency, 1);
    }

    #[test]
    fn per_pair_ordering_is_preserved() {
        let mut noc = MeshNoc::new(4, 1).unwrap();
        for v in 0..5 {
            noc.inject(0, 3, v).unwrap();
        }
        let deliveries = noc.drain(100).unwrap();
        let payloads: Vec<Word> = deliveries.iter().map(|d| d.packet.payload).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        // Serialised through one output port: one arrival per cycle.
        assert!(deliveries
            .windows(2)
            .all(|w| w[1].latency > w[0].latency - 1));
    }

    #[test]
    fn contention_increases_latency() {
        // Many sources converging on one destination must queue.
        let mut noc = MeshNoc::new(4, 4).unwrap();
        for src in 0..16 {
            if src != 5 {
                noc.inject(src, 5, src as Word).unwrap();
            }
        }
        let deliveries = noc.drain(1_000).unwrap();
        assert_eq!(deliveries.len(), 15);
        let max_latency = deliveries.iter().map(|d| d.latency).max().unwrap();
        let max_distance = (0..16)
            .filter(|&s| s != 5)
            .map(|s| noc.hop_distance(s, 5) as u64)
            .max()
            .unwrap();
        assert!(
            max_latency > max_distance,
            "{max_latency} vs {max_distance}"
        );
    }

    #[test]
    fn xy_routing_never_livelocks_on_random_traffic() {
        let mut noc = MeshNoc::new(5, 3).unwrap();
        // Pseudo-random all-to-all pattern.
        for i in 0..100usize {
            let src = (i * 7) % 15;
            let dst = (i * 11 + 3) % 15;
            noc.inject(src, dst, i as Word).unwrap();
        }
        let deliveries = noc.drain(10_000).unwrap();
        assert_eq!(deliveries.len(), 100);
        assert_eq!(noc.traffic(), (100, 100));
    }

    #[test]
    fn bad_shapes_and_endpoints_rejected() {
        assert!(MeshNoc::new(0, 4).is_err());
        assert!(MeshNoc::new(1, 1).is_err());
        let mut noc = MeshNoc::new(2, 2).unwrap();
        assert!(noc.inject(0, 9, 1).is_err());
        assert!(noc.inject(9, 0, 1).is_err());
    }

    #[test]
    fn config_bits_scale_with_node_count_but_stay_tiny() {
        let small = MeshNoc::new(2, 2).unwrap();
        let big = MeshNoc::new(8, 8).unwrap();
        assert!(big.config_bits() > small.config_bits());
        // Algorithmic routing: far cheaper than a crossbar of the same
        // radix (64 nodes -> 64*ceil(log2 65) = 448 bits for the mux model).
        assert!(big.config_bits() < 64 * 7);
    }

    #[test]
    fn drain_budget_guards_against_runaway() {
        let mut noc = MeshNoc::new(4, 1).unwrap();
        noc.inject(0, 3, 1).unwrap();
        assert!(matches!(
            noc.drain(1),
            Err(MachineError::CycleLimitExceeded { .. })
        ));
    }

    #[test]
    fn link_outage_delays_but_does_not_lose_packets() {
        use crate::fault::{FaultPlan, LinkOutage};
        // 1x4 row; the 0 -> 1 link is down for cycles 1..=5.
        let plan = FaultPlan::seeded(0).fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 1,
            until_cycle: 5,
        });
        let mut noc = MeshNoc::new(4, 1).unwrap().with_faults(plan);
        noc.inject(0, 3, 9).unwrap();
        let deliveries = noc.drain(100).unwrap();
        assert_eq!(deliveries.len(), 1);
        assert!(
            deliveries[0].latency > noc.hop_distance(0, 3) as u64,
            "outage must add latency: {}",
            deliveries[0].latency
        );
        assert!(noc.faults_injected() >= 5);
    }

    #[test]
    fn ttl_expiry_surfaces_as_retry_exhausted() {
        use crate::fault::{FaultPlan, LinkOutage};
        // Permanent outage on the only path: the packet can never advance.
        let plan = FaultPlan::seeded(0).fail_link(LinkOutage {
            from: 0,
            to: 1,
            from_cycle: 0,
            until_cycle: u64::MAX,
        });
        let mut noc = MeshNoc::new(4, 1)
            .unwrap()
            .with_faults(plan)
            .with_packet_ttl(8);
        noc.inject(0, 3, 9).unwrap();
        match noc.drain(1_000) {
            Err(MachineError::RetryExhausted {
                from: 0,
                to: 3,
                attempts: 8,
            }) => {}
            other => panic!("expected RetryExhausted, got {other:?}"),
        }
        assert_eq!(noc.lost(), 1);
    }

    #[test]
    fn dropped_packets_do_not_wedge_the_drain() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::seeded(7).drop_messages(1.0);
        let mut noc = MeshNoc::new(4, 1).unwrap().with_faults(plan);
        for v in 0..4 {
            noc.inject(0, 3, v).unwrap();
        }
        let deliveries = noc.drain(1_000).unwrap();
        assert!(deliveries.is_empty());
        assert_eq!(noc.lost(), 4);
    }
}

//! The morphing (emulation) partial order over classes — the paper's
//! flexibility argument made executable.
//!
//! Section III-B argues: *IMP-I can act as an array processor if all the
//! processors execute the same program; IAP-I cannot be an IMP-I since it
//! cannot execute n different programs; IAP-I can act as a uni-processor
//! by turning off its extra DPs; IUP cannot act as IAP-I because it does
//! not have enough DPs.*  [`can_emulate`] encodes the resulting partial
//! order structurally, and [`demonstrate`] *runs* the key instances on the
//! executable machines so the order is validated by observation, not by
//! assertion.

use skilltax_taxonomy::{ClassName, MachineType, ProcessingType};

use crate::array::ArraySubtype;
use crate::error::MachineError;
use crate::isa::Word;
use crate::multi::MultiSubtype;
use crate::workload::{
    mimd_mix_reference, run_mimd_mix_array, run_mimd_mix_multi, run_vector_add_array,
    run_vector_add_multi, run_vector_add_uni, vector_add_reference,
};

/// Rank of processing types in the emulation order.
fn rank(p: ProcessingType) -> u8 {
    match p {
        ProcessingType::Uni => 0,
        ProcessingType::Array => 1,
        ProcessingType::Multi => 2,
        ProcessingType::Spatial => 3,
    }
}

/// Can a machine of class `a` be morphed to act as a machine of class `b`?
///
/// Rules:
/// * everything emulates itself;
/// * USP emulates every class (and nothing else emulates USP);
/// * data-flow and instruction-flow machines never substitute each other;
/// * within a flow paradigm, the processing type must not decrease
///   (Multi ⊇ Array ⊇ Uni; Spatial ⊇ Multi), and the emulator must offer
///   every crossbar relation the target relies on.
pub fn can_emulate(a: &ClassName, b: &ClassName) -> bool {
    if a == b {
        return true;
    }
    if a.machine == MachineType::UniversalFlow {
        return true;
    }
    if b.machine == MachineType::UniversalFlow {
        return false;
    }
    if a.machine != b.machine {
        return false;
    }
    if rank(a.processing) < rank(b.processing) {
        return false;
    }
    let xa = skilltax_taxonomy::crossbar_relations_of(a);
    let xb = skilltax_taxonomy::crossbar_relations_of(b);
    xb.iter().all(|r| xa.contains(r))
}

/// One demonstrated morphing (or refusal), with the observed evidence.
#[derive(Debug, Clone)]
pub struct MorphEvidence {
    /// The emulating class.
    pub emulator: String,
    /// The emulated behaviour.
    pub target: String,
    /// Whether the structural order says the morph should work.
    pub predicted: bool,
    /// Whether the executable machines actually performed it.
    pub observed: bool,
    /// Human-readable account.
    pub note: String,
}

/// Run the paper's four key morphing arguments on the executable machines
/// and report predicted-vs-observed for each.
pub fn demonstrate() -> Result<Vec<MorphEvidence>, MachineError> {
    let a: Vec<Word> = (0..4).collect();
    let b: Vec<Word> = (40..44).collect();
    let expected = vector_add_reference(&a, &b);
    let slices: Vec<Vec<Word>> = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9], vec![1, 1, 1]];
    let mut evidence = Vec::new();

    // 1. IMP-I acts as an array processor (SIMD emulation).
    let imp1: ClassName = "IMP-I".parse().expect("valid name");
    let iap1: ClassName = "IAP-I".parse().expect("valid name");
    let simd = run_vector_add_multi(MultiSubtype::from_index(1)?, &a, &b)?;
    evidence.push(MorphEvidence {
        emulator: "IMP-I".into(),
        target: "IAP-I".into(),
        predicted: can_emulate(&imp1, &iap1),
        observed: simd.outputs == expected,
        note: "four independent cores loaded the same program and produced the \
               SIMD result"
            .into(),
    });

    // 2. IAP cannot act as a multi-processor (n different programs).
    let refused = run_mimd_mix_array(ArraySubtype::IV, &slices);
    let iap4: ClassName = "IAP-IV".parse().expect("valid name");
    evidence.push(MorphEvidence {
        emulator: "IAP-IV".into(),
        target: "IMP-I".into(),
        predicted: can_emulate(&iap4, &imp1),
        observed: !matches!(refused, Err(MachineError::WorkloadUnsupported { .. })),
        note: "the array machine refused the n-program workload with a typed error".into(),
    });

    // 3. IAP-I acts as a uni-processor (extra DPs idle).
    let iup: ClassName = "IUP".parse().expect("valid name");
    let uni = run_vector_add_uni(&a, &b)?;
    let one_lane_equiv = run_vector_add_array(ArraySubtype::I, &a, &b)?;
    evidence.push(MorphEvidence {
        emulator: "IAP-I".into(),
        target: "IUP".into(),
        predicted: can_emulate(&iap1, &iup),
        observed: one_lane_equiv.outputs == uni.outputs,
        note: "the array computed exactly what the uni-processor computed (the \
               sequential loop is subsumed by per-lane execution)"
            .into(),
    });

    // 4. The MIMD mix runs on IMP-I — the capability direction 2 denies.
    let mix = run_mimd_mix_multi(MultiSubtype::from_index(1)?, &slices)?;
    evidence.push(MorphEvidence {
        emulator: "IMP-I".into(),
        target: "n distinct programs".into(),
        predicted: true,
        observed: mix.outputs == mimd_mix_reference(&slices),
        note: "four cores ran sum/product/max programs concurrently".into(),
    });

    // 5. A spatial machine fuses two IPs into one bigger IP (Fig 5):
    //    ISP-I acting as an array processor *within* a MIMD fabric.
    evidence.push(demonstrate_spatial_fusion()?);

    Ok(evidence)
}

/// Run the spatial-fusion demonstration: fuse cores 0..2 of an ISP-I
/// machine under one leader and check the group executes the leader's
/// program in lockstep while the remaining core runs independently.
fn demonstrate_spatial_fusion() -> Result<MorphEvidence, MachineError> {
    use crate::interconnect::FabricTopology;
    use crate::isa::Instr;
    use crate::program::{Assembler, Program};
    use crate::spatial::SpatialMachine;

    let mut machine =
        SpatialMachine::new(MultiSubtype::from_code(0)?, FabricTopology::Crossbar, 4, 8)?;
    machine.fuse(0, 1)?;
    machine.fuse(0, 2)?;
    // Leader program: mem[0] = 500 + lane (broadcast over the fused DPs).
    let mut leader = Assembler::new();
    leader
        .emit(Instr::LaneId(0))
        .movi(1, 500)
        .emit(Instr::Add(1, 1, 0))
        .movi(2, 0)
        .emit(Instr::Store(2, 1))
        .emit(Instr::Halt);
    let leader = leader.assemble()?;
    // Solo core 3 runs something different.
    let mut solo = Assembler::new();
    solo.movi(0, 0)
        .movi(1, 999)
        .emit(Instr::Store(0, 1))
        .emit(Instr::Halt);
    let solo = solo.assemble()?;
    let idle = Program::new(vec![Instr::Halt])?;
    machine.run(&[leader, idle.clone(), idle, solo])?;
    let group_ok =
        (0..3).all(|core| machine.memory().bank(core).contents()[0] == 500 + core as Word);
    let solo_ok = machine.memory().bank(3).contents()[0] == 999;
    let isp1: ClassName = "ISP-I".parse().expect("valid name");
    let iap1: ClassName = "IAP-I".parse().expect("valid name");
    Ok(MorphEvidence {
        emulator: "ISP-I (fused group)".into(),
        target: "IAP-I inside a MIMD fabric".into(),
        predicted: can_emulate(&isp1, &iap1),
        observed: group_ok && solo_ok,
        note: "three IPs fused under one leader executed a single broadcast \
               stream while a fourth core ran its own program"
            .into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_taxonomy::{flexibility_of_name, Taxonomy};

    fn name(s: &str) -> ClassName {
        s.parse().unwrap()
    }

    #[test]
    fn papers_four_claims_hold() {
        assert!(can_emulate(&name("IMP-I"), &name("IAP-I")));
        assert!(!can_emulate(&name("IAP-I"), &name("IMP-I")));
        assert!(can_emulate(&name("IAP-I"), &name("IUP")));
        assert!(!can_emulate(&name("IUP"), &name("IAP-I")));
    }

    #[test]
    fn usp_emulates_everything() {
        let usp = name("USP");
        for class in Taxonomy::extended().implementable() {
            assert!(can_emulate(&usp, class.name()), "{}", class.name());
            if *class.name() != usp {
                assert!(!can_emulate(class.name(), &usp), "{}", class.name());
            }
        }
    }

    #[test]
    fn paradigms_do_not_substitute() {
        assert!(!can_emulate(&name("IMP-XVI"), &name("DMP-I")));
        assert!(!can_emulate(&name("DMP-IV"), &name("IUP")));
    }

    #[test]
    fn crossbar_support_gates_emulation() {
        // IMP-I lacks the DP-DP switch IAP-II relies on.
        assert!(!can_emulate(&name("IMP-I"), &name("IAP-II")));
        assert!(can_emulate(&name("IMP-II"), &name("IAP-II")));
        // ISP adds IP-IP over its IMP sibling.
        assert!(can_emulate(&name("ISP-IV"), &name("IMP-IV")));
        assert!(!can_emulate(&name("IMP-IV"), &name("ISP-IV")));
    }

    #[test]
    fn emulation_is_a_partial_order() {
        let classes: Vec<ClassName> = Taxonomy::extended()
            .implementable()
            .map(|c| *c.name())
            .collect();
        // Reflexive.
        for c in &classes {
            assert!(can_emulate(c, c));
        }
        // Transitive.
        for a in &classes {
            for b in &classes {
                if !can_emulate(a, b) {
                    continue;
                }
                for c in &classes {
                    if can_emulate(b, c) {
                        assert!(can_emulate(a, c), "{a} >= {b} >= {c}");
                    }
                }
            }
        }
        // Antisymmetric.
        for a in &classes {
            for b in &classes {
                if a != b && can_emulate(a, b) {
                    assert!(!can_emulate(b, a), "{a} <-> {b}");
                }
            }
        }
    }

    #[test]
    fn emulation_implies_no_lower_flexibility_within_a_paradigm() {
        // If a ⊒ b (same machine type) then flexibility(a) >= flexibility(b):
        // the scoring system is consistent with the morphing order.
        let classes: Vec<ClassName> = Taxonomy::extended()
            .implementable()
            .map(|c| *c.name())
            .collect();
        for a in &classes {
            for b in &classes {
                if a.machine == b.machine && can_emulate(a, b) {
                    let fa = flexibility_of_name(a).unwrap();
                    let fb = flexibility_of_name(b).unwrap();
                    assert!(fa >= fb, "{a} ({fa}) emulates {b} ({fb})");
                }
            }
        }
    }

    #[test]
    fn demonstrations_match_predictions() {
        for ev in demonstrate().unwrap() {
            assert_eq!(
                ev.predicted, ev.observed,
                "{} as {}: {}",
                ev.emulator, ev.target, ev.note
            );
        }
    }
}

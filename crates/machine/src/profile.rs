//! Hierarchical span profiling for machine and service phases.
//!
//! Where [`telemetry`](crate::telemetry) *counts* events, this module
//! attributes **time**: every run loop brackets its phases (decode,
//! scheduler slice, time-warp wait, SIMD lane loop, …) with
//! [`Tracer::span_enter`](crate::telemetry::Tracer::span_enter) /
//! [`Tracer::span_exit`](crate::telemetry::Tracer::span_exit) hooks, and a
//! [`SpanProfile`] turns those hooks into a strictly nested tree of
//! cycle-stamped [`Span`]s — the same shape rustc's `-Zself-profile`
//! produces, renderable as a Chrome trace, a flamegraph, or a self-time
//! table.
//!
//! The hooks default to no-ops on the [`Tracer`](crate::telemetry::Tracer)
//! trait and the run loops stay monomorphised, so [`NullProfiler`] (and the
//! plain `NullTracer`) compile away entirely — profiling off costs nothing,
//! which the bench suite proves with a hard-gated overhead twin.
//!
//! ## Timestamp domains and the reconciliation invariant
//!
//! Machine spans are stamped in the **cycle domain** (deterministic,
//! identical across dense/event/sharded scheduling); wall-clock capture is
//! optional and sits *beside* the cycle tree, never inside it.  The
//! contract every instrumented loop upholds, locked by
//! `tests/profile.rs`:
//!
//! 1. spans are strictly nested (exit always closes the innermost open
//!    span) and sibling spans never overlap;
//! 2. **leaf** spans tile their root exactly: the sum of leaf extents
//!    equals the run's `Stats` cycle total, for every family, under every
//!    scheduler;
//! 3. instantaneous events (barrier waits, message deliveries, retries,
//!    degradations, reconfigurations) are zero-width [`Mark`]s so they can
//!    never break invariant 2, and the mark buffer is bounded with an
//!    explicit dropped counter, like `EventTrace`.
//!
//! Sequential composites (`run_resilient` attempts, which restart local
//! cycle counts at zero) re-base each new root span at the current high
//! water, so a multi-attempt profile is one globally monotone timeline.

use crate::telemetry::{EventKind, Tracer};
use std::time::{Duration, Instant};

/// One phase of a run, machine- or service-layer.  `label()` values are
/// stable: they name spans in every export format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Root span of one machine run (one `run_*` call).
    Run,
    /// Program decode / placement checks before the first cycle.
    Decode,
    /// A contiguous stretch of executed scheduler cycles.
    Slice,
    /// An event-scheduler time warp (all units idle until the next wake).
    Warp,
    /// The SIMD broadcast loop over live lanes (array machines).
    Lanes,
    /// Instant: a shard barrier crossing.
    Barrier,
    /// Instant: a cross-DP message delivery.
    Delivery,
    /// Instant: a fault-retry attempt started.
    Retry,
    /// Instant: work was remapped off a failed component.
    Degrade,
    /// Instant: a fabric/machine reconfiguration was applied.
    Reconfigure,
    /// Service: root span of one job (submit → respond).
    Job,
    /// Service: request-body parsing.
    Parse,
    /// Service: admission control (validation, quota, queue push).
    Admission,
    /// Service: queued, waiting for a worker.
    QueueWait,
    /// Service: waiting to check a pooled machine out.
    PoolAcquire,
    /// Service: the job body executing (machine spans nest under this).
    Respond,
}

impl Phase {
    /// Stable span name used by all exporters.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Run => "run",
            Phase::Decode => "decode",
            Phase::Slice => "slice",
            Phase::Warp => "warp",
            Phase::Lanes => "lanes",
            Phase::Barrier => "barrier",
            Phase::Delivery => "delivery",
            Phase::Retry => "retry",
            Phase::Degrade => "degrade",
            Phase::Reconfigure => "reconfigure",
            Phase::Job => "job",
            Phase::Parse => "parse",
            Phase::Admission => "admission",
            Phase::QueueWait => "queue_wait",
            Phase::PoolAcquire => "pool_acquire",
            Phase::Respond => "respond",
        }
    }
}

/// One closed span: a phase with an inclusive start and exclusive end
/// stamp in the profile's (re-based) cycle domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What this span measures.
    pub phase: Phase,
    /// First cycle covered.
    pub start: u64,
    /// One past the last cycle covered (`end - start` is the extent).
    pub end: u64,
    /// Index of the enclosing span in [`SpanProfile::spans`], if any.
    pub parent: Option<usize>,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Whether any child span was opened under this one.
    pub has_children: bool,
}

impl Span {
    /// Cycles covered by this span.
    pub fn extent(&self) -> u64 {
        self.end - self.start
    }
}

/// One instantaneous cycle-stamped marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    /// The (re-based) cycle the event happened on.
    pub cycle: u64,
    /// What happened.
    pub phase: Phase,
}

/// Default bound on retained [`Mark`]s (total per-phase counts stay exact
/// past the cap, mirroring `EventTrace`).
pub const DEFAULT_MARK_CAPACITY: usize = 4096;

/// A span-recording tracer: builds the strictly nested phase tree from
/// the run loops' span hooks.
///
/// `enabled()` is deliberately `false`: the profiler wants the *phase*
/// structure, not the per-event firehose, so loops still skip their
/// trace-only work (counter diffing, per-DP sampling).  `record` /
/// `record_many` are implemented only to track the cycle high water, which
/// lets [`SpanProfile::seal`] close spans honestly when a run exits early
/// (watchdog, cancellation, fault) without reaching its own `span_exit`
/// calls.
#[derive(Debug, Clone)]
pub struct SpanProfile {
    spans: Vec<Span>,
    stack: Vec<usize>,
    /// Offset added to incoming (run-local) cycle stamps: re-based to the
    /// current high water whenever a new root span opens, so sequential
    /// runs concatenate into one monotone timeline.
    base: u64,
    /// Highest absolute cycle stamped so far.
    cursor: u64,
    /// Highest run-local cycle observed since the current root opened.
    high_water: u64,
    marks: Vec<Mark>,
    mark_capacity: usize,
    marks_dropped: u64,
    mark_counts: Vec<(Phase, u64)>,
    wall_start: Option<Instant>,
    wall_elapsed: Option<Duration>,
}

impl SpanProfile {
    /// An empty profile with the default mark bound.
    pub fn new() -> SpanProfile {
        SpanProfile::with_mark_capacity(DEFAULT_MARK_CAPACITY)
    }

    /// An empty profile retaining at most `capacity` marks (min 1).
    pub fn with_mark_capacity(capacity: usize) -> SpanProfile {
        SpanProfile {
            spans: Vec::new(),
            stack: Vec::new(),
            base: 0,
            cursor: 0,
            high_water: 0,
            marks: Vec::new(),
            mark_capacity: capacity.max(1),
            marks_dropped: 0,
            mark_counts: Vec::new(),
            wall_start: None,
            wall_elapsed: None,
        }
    }

    /// Also capture wall-clock time from now until [`SpanProfile::seal`].
    /// Wall time is reported beside the cycle tree
    /// ([`SpanProfile::wall_elapsed`]), never mixed into span stamps, so
    /// profiles stay deterministic.
    pub fn with_wall_clock(mut self) -> SpanProfile {
        self.wall_start = Some(Instant::now());
        self
    }

    fn absolute(&self, cycle: u64) -> u64 {
        self.base.saturating_add(cycle)
    }

    /// Open a span.  A root-level enter re-bases the local cycle domain at
    /// the current cursor so sequential runs stay monotone.
    pub fn enter(&mut self, cycle: u64, phase: Phase) {
        if self.stack.is_empty() {
            self.base = self.cursor;
            self.high_water = 0;
        }
        let start = self.absolute(cycle).max(self.cursor);
        let parent = self.stack.last().copied();
        if let Some(p) = parent {
            self.spans[p].has_children = true;
        }
        let depth = self.stack.len();
        self.stack.push(self.spans.len());
        self.spans.push(Span {
            phase,
            start,
            end: start,
            parent,
            depth,
            has_children: false,
        });
        self.cursor = self.cursor.max(start);
    }

    /// Close the innermost open span at `cycle`.  Unbalanced exits are
    /// ignored (the run loops are balanced; `seal` handles early returns).
    pub fn exit(&mut self, cycle: u64) {
        self.high_water = self.high_water.max(cycle);
        if let Some(idx) = self.stack.pop() {
            let end = self.absolute(cycle).max(self.spans[idx].start);
            self.spans[idx].end = end;
            self.cursor = self.cursor.max(end);
        }
    }

    /// Record an instantaneous marker at `cycle`.  A mark arriving between
    /// roots (empty stack — e.g. a degradation remap between sequential
    /// run phases) is pinned to the current timeline cursor, because its
    /// local stamp is relative to a base that no longer applies.
    pub fn mark(&mut self, cycle: u64, phase: Phase) {
        let cycle = if self.stack.is_empty() {
            self.cursor
        } else {
            self.high_water = self.high_water.max(cycle);
            self.absolute(cycle)
        };
        self.cursor = self.cursor.max(cycle);
        match self.mark_counts.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, n)) => *n += 1,
            None => self.mark_counts.push((phase, 1)),
        }
        if self.marks.len() < self.mark_capacity {
            self.marks.push(Mark { cycle, phase });
        } else {
            self.marks_dropped += 1;
        }
    }

    /// Close every still-open span at the cycle high water.  Run loops
    /// exit their spans on the normal path; early returns (watchdog,
    /// cancellation, faults) leave spans open, and `seal` closes them at
    /// the highest cycle any event or span hook reported — which is why
    /// this type tracks `record` stamps at all.  Also stops the optional
    /// wall clock.  Idempotent.
    pub fn seal(&mut self) {
        let end = self.absolute(self.high_water).max(self.cursor);
        while let Some(idx) = self.stack.pop() {
            self.spans[idx].end = end.max(self.spans[idx].start);
        }
        self.cursor = self.cursor.max(end);
        if let (Some(start), None) = (self.wall_start, self.wall_elapsed) {
            self.wall_elapsed = Some(start.elapsed());
        }
    }

    /// All spans, in open order.  Open spans have `end == start` until
    /// exited or sealed.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Retained marks, in record order (bounded; see
    /// [`SpanProfile::marks_dropped`]).
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Marks discarded because the buffer was full.
    pub fn marks_dropped(&self) -> u64 {
        self.marks_dropped
    }

    /// Exact per-phase mark totals (unaffected by the buffer bound).
    pub fn mark_counts(&self) -> &[(Phase, u64)] {
        &self.mark_counts
    }

    /// Wall-clock duration captured between
    /// [`SpanProfile::with_wall_clock`] and [`SpanProfile::seal`].
    pub fn wall_elapsed(&self) -> Option<Duration> {
        self.wall_elapsed
    }

    /// Number of spans still open (0 after `seal`).
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Highest absolute cycle stamped anywhere in the profile.
    pub fn last_cycle(&self) -> u64 {
        self.cursor
    }

    /// Sum of **leaf** span extents — the profiler side of the
    /// reconciliation invariant: equals the run's `Stats` cycle total for
    /// every instrumented loop.
    pub fn leaf_cycle_total(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| !s.has_children)
            .map(|s| s.extent())
            .sum()
    }

    /// Plain-data rows `(label, start, end, parent)` for the report
    /// crate's renderers (flame, Chrome trace).
    pub fn rows(&self) -> Vec<(String, u64, u64, Option<usize>)> {
        self.spans
            .iter()
            .map(|s| (s.phase.label().to_owned(), s.start, s.end, s.parent))
            .collect()
    }
}

impl Default for SpanProfile {
    fn default() -> Self {
        SpanProfile::new()
    }
}

impl Tracer for SpanProfile {
    // Deliberately disabled: the profiler consumes span hooks, not the
    // event firehose, so loops keep skipping trace-only work.
    fn record(&mut self, cycle: u64, _kind: EventKind) {
        self.high_water = self.high_water.max(cycle);
    }

    fn record_many(&mut self, cycle: u64, _kind: EventKind, _n: u64) {
        self.high_water = self.high_water.max(cycle);
    }

    fn span_enter(&mut self, cycle: u64, phase: Phase) {
        self.enter(cycle, phase);
    }

    fn span_exit(&mut self, cycle: u64) {
        self.exit(cycle);
    }

    fn span_mark(&mut self, cycle: u64, phase: Phase) {
        self.mark(cycle, phase);
    }
}

/// The do-nothing profiler: every hook monomorphises away, exactly like
/// `NullTracer`.  Exists as a distinct type so the bench overhead twin can
/// prove "profiler compiled in but disabled" is indistinguishable from
/// "no profiler at all".
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Tracer for NullProfiler {
    fn record_many(&mut self, _cycle: u64, _kind: EventKind, _n: u64) {}
}

/// Composes an event/metrics tracer with a [`SpanProfile`]: counters and
/// events flow to `inner`, span hooks to `profile`.  This is how a service
/// job captures its telemetry *and* its phase tree in one run.
#[derive(Debug, Clone, Default)]
pub struct Profiled<T: Tracer> {
    /// The event/metrics tracer.
    pub inner: T,
    /// The span tree.
    pub profile: SpanProfile,
}

impl<T: Tracer> Profiled<T> {
    /// Wrap `inner` with a fresh profile.
    pub fn new(inner: T) -> Profiled<T> {
        Profiled {
            inner,
            profile: SpanProfile::new(),
        }
    }
}

impl<T: Tracer> Tracer for Profiled<T> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.inner.record(cycle, kind);
        self.profile.record(cycle, kind);
    }

    fn record_many(&mut self, cycle: u64, kind: EventKind, n: u64) {
        self.inner.record_many(cycle, kind, n);
        self.profile.record_many(cycle, kind, n);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn sample(&mut self, name: &str, value: u64) {
        self.inner.sample(name, value);
    }

    fn span_enter(&mut self, cycle: u64, phase: Phase) {
        self.profile.enter(cycle, phase);
    }

    fn span_exit(&mut self, cycle: u64) {
        self.profile.exit(cycle);
    }

    fn span_mark(&mut self, cycle: u64, phase: Phase) {
        self.profile.mark(cycle, phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_leaves_tile() {
        let mut p = SpanProfile::new();
        p.enter(0, Phase::Run);
        p.enter(0, Phase::Decode);
        p.exit(0);
        p.enter(0, Phase::Slice);
        p.exit(7);
        p.exit(7);
        assert_eq!(p.open_spans(), 0);
        let spans = p.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].phase, Phase::Run);
        assert!(spans[0].has_children);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(p.leaf_cycle_total(), 7);
        assert_eq!(p.last_cycle(), 7);
    }

    #[test]
    fn sequential_roots_rebase_to_a_monotone_timeline() {
        let mut p = SpanProfile::new();
        // First attempt runs 5 cycles …
        p.enter(0, Phase::Run);
        p.enter(0, Phase::Slice);
        p.exit(5);
        p.exit(5);
        // … second attempt restarts its local clock at zero.
        p.enter(0, Phase::Run);
        p.enter(0, Phase::Slice);
        p.exit(3);
        p.exit(3);
        let spans = p.spans();
        assert_eq!(spans[2].start, 5, "second root re-based after first");
        assert_eq!(spans[3].end, 8);
        assert_eq!(p.leaf_cycle_total(), 8);
        let mut last_start = 0;
        for s in spans {
            assert!(s.start >= last_start || s.parent.is_some());
            last_start = last_start.max(s.start);
        }
    }

    #[test]
    fn seal_closes_open_spans_at_the_event_high_water() {
        let mut p = SpanProfile::new();
        p.enter(0, Phase::Run);
        p.enter(0, Phase::Slice);
        // The loop stamped events up to cycle 41, then bailed early
        // (watchdog) without reaching its span_exit calls.
        p.record(41, EventKind::Issue);
        p.seal();
        assert_eq!(p.open_spans(), 0);
        assert_eq!(p.spans()[1].end, 41);
        assert_eq!(p.leaf_cycle_total(), 41);
        // Idempotent.
        p.seal();
        assert_eq!(p.leaf_cycle_total(), 41);
    }

    #[test]
    fn marks_are_bounded_with_exact_totals() {
        let mut p = SpanProfile::with_mark_capacity(2);
        p.enter(0, Phase::Run);
        for c in 0..5 {
            p.mark(c, Phase::Barrier);
        }
        p.mark(5, Phase::Delivery);
        p.exit(6);
        assert_eq!(p.marks().len(), 2);
        assert_eq!(p.marks_dropped(), 4);
        assert_eq!(
            p.mark_counts(),
            &[(Phase::Barrier, 5), (Phase::Delivery, 1)]
        );
        // Marks never affect the leaf tiling.
        assert_eq!(p.leaf_cycle_total(), 6);
    }

    #[test]
    fn wall_clock_is_optional_and_beside_the_cycle_tree() {
        let mut p = SpanProfile::new();
        p.enter(0, Phase::Run);
        p.exit(4);
        p.seal();
        assert_eq!(p.wall_elapsed(), None);
        let mut q = SpanProfile::new().with_wall_clock();
        q.enter(0, Phase::Run);
        q.exit(4);
        q.seal();
        assert!(q.wall_elapsed().is_some());
        assert_eq!(q.spans()[0].end, 4, "wall capture never shifts stamps");
    }

    #[test]
    fn profiled_routes_events_inward_and_spans_to_the_profile() {
        use crate::telemetry::{EventClass, EventTrace};
        let mut t = Profiled::new(EventTrace::new());
        assert!(t.enabled());
        t.span_enter(0, Phase::Run);
        t.record(3, EventKind::Issue);
        t.span_exit(3);
        assert_eq!(t.inner.count(EventClass::Issue), 1);
        assert_eq!(t.profile.spans().len(), 1);
        assert_eq!(t.profile.spans()[0].end, 3);
    }

    #[test]
    fn null_profiler_is_disabled() {
        assert!(!NullProfiler.enabled());
    }
}

//! Execution statistics shared by every machine family.

use std::fmt;

use crate::telemetry::{EventClass, EventTrace};

/// Counters collected while running a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Machine cycles elapsed.
    pub cycles: u64,
    /// Instructions executed (all processors summed).
    pub instructions: u64,
    /// ALU operations.
    pub alu_ops: u64,
    /// Data-memory reads.
    pub mem_reads: u64,
    /// Data-memory writes.
    pub mem_writes: u64,
    /// DP–DP fabric transfers.
    pub messages: u64,
    /// Cycles a processor spent stalled (blocked recv, denied route retry).
    pub stalls: u64,
}

impl Stats {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total memory operations.
    pub fn mem_ops(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }

    /// Merge statistics from processors that ran *concurrently*: work
    /// counters sum, but wall-clock cycles are the **max** across the
    /// participants (they overlapped in time).
    pub fn merge_parallel(self, rhs: Stats) -> Stats {
        Stats {
            cycles: self.cycles.max(rhs.cycles),
            ..self.sum_work(rhs)
        }
    }

    /// Accumulate statistics from phases that ran *one after another*:
    /// everything sums, including cycles (the phases did not overlap).
    pub fn accumulate_sequential(self, rhs: Stats) -> Stats {
        Stats {
            cycles: self.cycles + rhs.cycles,
            ..self.sum_work(rhs)
        }
    }

    /// Check that an [`EventTrace`] recorded alongside this run accounts
    /// for every counter exactly (the telemetry layer's correctness
    /// contract, asserted for every machine family in the test suite).
    /// Returns the first mismatch as `"<class>: trace=N stats=M"`.
    pub fn reconcile(&self, trace: &EventTrace) -> Result<(), String> {
        let pairs = [
            (EventClass::Issue, self.instructions, "instructions"),
            (EventClass::AluOp, self.alu_ops, "alu_ops"),
            (EventClass::MemRead, self.mem_reads, "mem_reads"),
            (EventClass::MemWrite, self.mem_writes, "mem_writes"),
            (EventClass::Message, self.messages, "messages"),
            (EventClass::Stall, self.stalls, "stalls"),
        ];
        for (class, counter, field) in pairs {
            let traced = trace.count(class);
            if traced != counter {
                return Err(format!(
                    "{field}: trace={traced} stats={counter} (class {})",
                    class.label()
                ));
            }
        }
        Ok(())
    }

    /// Sum the work counters (everything except `cycles`).
    fn sum_work(self, rhs: Stats) -> Stats {
        Stats {
            cycles: self.cycles,
            instructions: self.instructions + rhs.instructions,
            alu_ops: self.alu_ops + rhs.alu_ops,
            mem_reads: self.mem_reads + rhs.mem_reads,
            mem_writes: self.mem_writes + rhs.mem_writes,
            messages: self.messages + rhs.messages,
            stalls: self.stalls + rhs.stalls,
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles={} instrs={} ipc={:.2} alu={} mem={}r/{}w msgs={} stalls={}",
            self.cycles,
            self.instructions,
            self.ipc(),
            self.alu_ops,
            self.mem_reads,
            self.mem_writes,
            self.messages,
            self.stalls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(Stats::default().ipc(), 0.0);
        let s = Stats {
            cycles: 10,
            instructions: 25,
            ..Stats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_merge_sums_work_and_maxes_cycles() {
        let a = Stats {
            cycles: 10,
            instructions: 5,
            alu_ops: 3,
            ..Stats::default()
        };
        let b = Stats {
            cycles: 7,
            instructions: 4,
            mem_reads: 2,
            ..Stats::default()
        };
        let c = a.merge_parallel(b);
        assert_eq!(c.cycles, 10); // parallel processors: wall clock is the max
        assert_eq!(c.instructions, 9);
        assert_eq!(c.alu_ops, 3);
        assert_eq!(c.mem_reads, 2);
    }

    #[test]
    fn sequential_accumulation_sums_cycles_too() {
        let a = Stats {
            cycles: 10,
            instructions: 5,
            ..Stats::default()
        };
        let b = Stats {
            cycles: 7,
            instructions: 4,
            ..Stats::default()
        };
        let c = a.accumulate_sequential(b);
        assert_eq!(c.cycles, 17); // phases back to back: wall clock adds
        assert_eq!(c.instructions, 9);
    }

    #[test]
    fn reconcile_accepts_exact_traces_and_names_the_first_mismatch() {
        use crate::telemetry::EventKind;
        let mut trace = EventTrace::new();
        trace.push(1, EventKind::Issue);
        trace.push(1, EventKind::AluOp);
        trace.push(2, EventKind::Stall);
        let stats = Stats {
            cycles: 2,
            instructions: 1,
            alu_ops: 1,
            stalls: 1,
            ..Stats::default()
        };
        assert_eq!(stats.reconcile(&trace), Ok(()));
        let short = Stats { stalls: 0, ..stats };
        let err = short.reconcile(&trace).unwrap_err();
        assert!(err.contains("stalls"), "err: {err}");
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = Stats {
            cycles: 1,
            instructions: 1,
            ..Stats::default()
        };
        let t = s.to_string();
        assert!(t.contains("cycles=1") && t.contains("msgs=0"));
    }
}

//! Cooperative cancellation for the machine run loops.
//!
//! A [`CancelToken`] carries two independent stop signals that compose
//! with the watchdog cycle budgets threaded through every run loop:
//!
//! * a **deadline cycle** — checked exactly where the watchdog budget is
//!   checked, so a deadline of `d` stops the run after precisely `d`
//!   simulated cycles with partial [`Stats`] that are bit-identical
//!   across the dense, event-driven and shard-parallel schedulers (the
//!   same identity contract the watchdog already satisfies, DESIGN.md
//!   §9/§10);
//! * an **asynchronous flag** — an `Arc<AtomicBool>` any thread may
//!   raise (a service worker observing a client disconnect, an operator
//!   abort).  Flag cancellation is *prompt* — dense and event loops poll
//!   it every simulated cycle, the shard coordinator once per slice —
//!   but the exact stop cycle depends on when the flag was raised, so it
//!   is not replayable the way a deadline is.
//!
//! Both paths surface as the typed
//! [`MachineError::Cancelled`](crate::error::MachineError::Cancelled)
//! carrying the partial statistics, mirroring
//! [`MachineError::WatchdogTimeout`](crate::error::MachineError::WatchdogTimeout).
//! When a deadline and the watchdog budget coincide the cancellation
//! wins: the caller asked to stop, the budget merely ran out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::MachineError;
use crate::exec::Stats;
use crate::telemetry::{EventKind, Tracer};

/// A cloneable cancellation handle: clones share the same flag, so a
/// token given to a machine can be cancelled from another thread.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: u64,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never fires on its own (no deadline, flag down).
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: u64::MAX,
        }
    }

    /// Set the deterministic deadline: the run stops after exactly
    /// `cycles` simulated cycles with [`MachineError::Cancelled`].
    pub fn with_deadline(mut self, cycles: u64) -> CancelToken {
        self.deadline = cycles;
        self
    }

    /// The deadline cycle (`u64::MAX` when none was set).
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// Raise the asynchronous cancellation flag.  Every clone of this
    /// token observes it on its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has the asynchronous flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Hot-loop poll of the asynchronous flag (relaxed: the loops only
    /// need promptness, not ordering against other memory).
    #[inline]
    pub(crate) fn flag_raised(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The per-run budget resolved from a watchdog cycle limit and a
/// [`CancelToken`] deadline: whichever ceiling is lower owns the run,
/// and [`RunBudget::trip`] emits the matching typed error.  Cancellation
/// wins ties so that "cancel at the budget" behaves like every other
/// cancel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunBudget {
    limit: u64,
    cancel_owns: bool,
}

impl RunBudget {
    /// Resolve the effective ceiling for one run.
    pub(crate) fn resolve(cycle_limit: u64, cancel: &CancelToken) -> RunBudget {
        let deadline = cancel.deadline();
        if deadline <= cycle_limit {
            RunBudget {
                limit: deadline,
                cancel_owns: true,
            }
        } else {
            RunBudget {
                limit: cycle_limit,
                cancel_owns: false,
            }
        }
    }

    /// The effective cycle ceiling (min of watchdog budget and deadline).
    #[inline]
    pub(crate) fn limit(&self) -> u64 {
        self.limit
    }

    /// Build the typed error for a run that hit the ceiling at `cycle`,
    /// recording the matching trace event.
    pub(crate) fn trip<T: Tracer>(
        &self,
        cycle: u64,
        partial: Stats,
        tracer: &mut T,
    ) -> MachineError {
        if self.cancel_owns {
            tracer.record(cycle, EventKind::Cancelled);
            MachineError::Cancelled {
                at_cycle: cycle,
                partial,
            }
        } else {
            tracer.record(cycle, EventKind::Watchdog);
            MachineError::WatchdogTimeout {
                limit: self.limit,
                partial,
            }
        }
    }
}

/// Build the typed error for a run stopped by the asynchronous flag at
/// `cycle`, recording the trace event.
pub(crate) fn flag_trip<T: Tracer>(cycle: u64, partial: Stats, tracer: &mut T) -> MachineError {
    tracer.record(cycle, EventKind::Cancelled);
    MachineError::Cancelled {
        at_cycle: cycle,
        partial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::NullTracer;

    #[test]
    fn default_token_never_fires() {
        let t = CancelToken::new();
        assert_eq!(t.deadline(), u64::MAX);
        assert!(!t.is_cancelled());
        let budget = RunBudget::resolve(1_000, &t);
        assert_eq!(budget.limit(), 1_000);
        assert!(matches!(
            budget.trip(1_000, Stats::default(), &mut NullTracer),
            MachineError::WatchdogTimeout { limit: 1_000, .. }
        ));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled() && t.flag_raised());
    }

    #[test]
    fn deadline_below_budget_owns_the_run() {
        let t = CancelToken::new().with_deadline(10);
        let budget = RunBudget::resolve(1_000, &t);
        assert_eq!(budget.limit(), 10);
        assert!(matches!(
            budget.trip(10, Stats::default(), &mut NullTracer),
            MachineError::Cancelled { at_cycle: 10, .. }
        ));
    }

    #[test]
    fn deadline_at_budget_still_cancels() {
        let t = CancelToken::new().with_deadline(1_000);
        let budget = RunBudget::resolve(1_000, &t);
        assert!(matches!(
            budget.trip(1_000, Stats::default(), &mut NullTracer),
            MachineError::Cancelled {
                at_cycle: 1_000,
                ..
            }
        ));
    }

    #[test]
    fn deadline_above_budget_leaves_the_watchdog_in_charge() {
        let t = CancelToken::new().with_deadline(2_000);
        let budget = RunBudget::resolve(1_000, &t);
        assert_eq!(budget.limit(), 1_000);
        assert!(matches!(
            budget.trip(1_000, Stats::default(), &mut NullTracer),
            MachineError::WatchdogTimeout { limit: 1_000, .. }
        ));
    }
}

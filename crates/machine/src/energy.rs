//! A simple activity-based energy model over execution statistics.
//!
//! The paper motivates the CGRA design space with the energy gap between
//! ASICs and FPGAs; this model lets the executable machines report an
//! energy figure alongside cycles so the flexibility/efficiency trade-off
//! can be *measured* on the simulated workloads.  Costs are per-event
//! picojoules (order-of-magnitude 90 nm figures); the interconnect
//! multiplier prices the flexibility: events routed through crossbars
//! cost more than direct-wired ones.

use crate::exec::Stats;
use crate::telemetry::{EventClass, EventTrace};

/// Per-event energy costs in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One ALU operation.
    pub alu_pj: f64,
    /// One data-memory read.
    pub mem_read_pj: f64,
    /// One data-memory write.
    pub mem_write_pj: f64,
    /// One instruction fetched/issued.
    pub issue_pj: f64,
    /// One DP–DP message transfer.
    pub message_pj: f64,
    /// Static leakage per cycle for the whole machine.
    pub static_pj_per_cycle: f64,
    /// Multiplier applied to memory and message energy when the relation
    /// is switched through a crossbar (flexibility tax, >= 1).
    pub crossbar_factor: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_pj: 2.0,
            mem_read_pj: 8.0,
            mem_write_pj: 9.0,
            issue_pj: 3.0,
            message_pj: 6.0,
            static_pj_per_cycle: 1.0,
            crossbar_factor: 1.8,
        }
    }
}

/// An itemised energy estimate for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyEstimate {
    /// ALU energy.
    pub alu_pj: f64,
    /// Memory energy (reads + writes, crossbar factor applied if shared).
    pub memory_pj: f64,
    /// Instruction-issue energy.
    pub issue_pj: f64,
    /// Interconnect (message) energy.
    pub message_pj: f64,
    /// Static energy.
    pub static_pj: f64,
}

impl EnergyEstimate {
    /// Total picojoules.
    pub fn total_pj(&self) -> f64 {
        self.alu_pj + self.memory_pj + self.issue_pj + self.message_pj + self.static_pj
    }

    /// Energy per useful instruction (pJ/instr), given the run stats.
    pub fn per_instruction(&self, stats: &Stats) -> f64 {
        if stats.instructions == 0 {
            0.0
        } else {
            self.total_pj() / stats.instructions as f64
        }
    }
}

impl EnergyModel {
    /// Price a run.  `crossbar_memory` / `crossbar_messages` say whether
    /// the machine's DP–DM / DP–DP relations are crossbars (the
    /// flexibility tax applies).
    pub fn estimate(
        &self,
        stats: &Stats,
        crossbar_memory: bool,
        crossbar_messages: bool,
    ) -> EnergyEstimate {
        let mem_factor = if crossbar_memory {
            self.crossbar_factor
        } else {
            1.0
        };
        let msg_factor = if crossbar_messages {
            self.crossbar_factor
        } else {
            1.0
        };
        EnergyEstimate {
            alu_pj: stats.alu_ops as f64 * self.alu_pj,
            memory_pj: (stats.mem_reads as f64 * self.mem_read_pj
                + stats.mem_writes as f64 * self.mem_write_pj)
                * mem_factor,
            issue_pj: stats.instructions as f64 * self.issue_pj,
            message_pj: stats.messages as f64 * self.message_pj * msg_factor,
            static_pj: stats.cycles as f64 * self.static_pj_per_cycle,
        }
    }

    /// Price a run from its *traced* event counts instead of re-deriving
    /// activity from [`Stats`].  Because the trace's per-class totals are
    /// monotonic (independent of ring capacity) this agrees exactly with
    /// [`EnergyModel::estimate`] whenever the trace reconciles with the
    /// statistics; `cycles` is passed explicitly because elapsed time is a
    /// clock property, not an event count.
    pub fn estimate_from_trace(
        &self,
        trace: &EventTrace,
        cycles: u64,
        crossbar_memory: bool,
        crossbar_messages: bool,
    ) -> EnergyEstimate {
        let stats = Stats {
            cycles,
            instructions: trace.count(EventClass::Issue),
            alu_ops: trace.count(EventClass::AluOp),
            mem_reads: trace.count(EventClass::MemRead),
            mem_writes: trace.count(EventClass::MemWrite),
            messages: trace.count(EventClass::Message),
            stalls: trace.count(EventClass::Stall),
        };
        self.estimate(&stats, crossbar_memory, crossbar_messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArraySubtype;
    use crate::workload::{run_vector_add_array, run_vector_add_uni};

    #[test]
    fn itemised_terms_sum_to_total() {
        let stats = Stats {
            cycles: 100,
            instructions: 80,
            alu_ops: 40,
            mem_reads: 10,
            mem_writes: 5,
            messages: 3,
            stalls: 0,
        };
        let model = EnergyModel::default();
        let e = model.estimate(&stats, false, false);
        let by_hand = 40.0 * 2.0 + (10.0 * 8.0 + 5.0 * 9.0) + 80.0 * 3.0 + 3.0 * 6.0 + 100.0;
        assert!((e.total_pj() - by_hand).abs() < 1e-9);
    }

    #[test]
    fn crossbar_factor_taxes_flexible_machines() {
        let stats = Stats {
            mem_reads: 100,
            messages: 100,
            ..Stats::default()
        };
        let model = EnergyModel::default();
        let rigid = model.estimate(&stats, false, false);
        let flexible = model.estimate(&stats, true, true);
        assert!(flexible.total_pj() > rigid.total_pj());
        assert!((flexible.memory_pj / rigid.memory_pj - 1.8).abs() < 1e-9);
    }

    #[test]
    fn simd_beats_scalar_on_static_energy_for_the_same_work() {
        // Same arithmetic work, far fewer cycles => less static energy and
        // less issue overhead per element on the array machine.
        let a: Vec<i64> = (0..32).collect();
        let b: Vec<i64> = (32..64).collect();
        let uni = run_vector_add_uni(&a, &b).unwrap();
        let simd = run_vector_add_array(ArraySubtype::I, &a, &b).unwrap();
        let model = EnergyModel::default();
        let e_uni = model.estimate(&uni.stats, false, false);
        let e_simd = model.estimate(&simd.stats, false, false);
        assert!(e_simd.static_pj < e_uni.static_pj);
        assert!(e_simd.per_instruction(&simd.stats) <= e_uni.per_instruction(&uni.stats) * 1.2);
    }

    #[test]
    fn trace_based_estimate_matches_stats_based_estimate() {
        use crate::program::{Assembler, Program};
        use crate::telemetry::EventTrace;
        use crate::uniprocessor::UniProcessor;
        let mut asm = Assembler::new();
        asm.movi(0, 2)
            .movi(1, 3)
            .emit(crate::isa::Instr::Add(2, 0, 1))
            .movi(3, 0)
            .emit(crate::isa::Instr::Store(3, 2))
            .emit(crate::isa::Instr::Halt);
        let prog: Program = asm.assemble().unwrap();
        let mut m = UniProcessor::new(8);
        let mut trace = EventTrace::new();
        let stats = m.run_traced(&prog, &mut trace).unwrap();
        let model = EnergyModel::default();
        let from_stats = model.estimate(&stats, false, false);
        let from_trace = model.estimate_from_trace(&trace, stats.cycles, false, false);
        assert_eq!(from_stats, from_trace);
        assert!(from_trace.total_pj() > 0.0);
    }

    #[test]
    fn zero_instruction_runs_have_zero_per_instruction_energy() {
        let e = EnergyEstimate::default();
        assert_eq!(e.per_instruction(&Stats::default()), 0.0);
    }
}

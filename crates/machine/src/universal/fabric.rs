//! The configurable LUT fabric: cells + programmable routing + optional
//! per-cell flip-flops.
//!
//! Loading a [`Bitstream`] turns the raw fabric into a
//! [`ConfiguredFabric`]; the same silicon becomes a datapath (pure
//! combinational network), an instruction processor (a registered state
//! machine), or both at once — the defining property of the USP class.

use std::sync::Mutex;

use crate::cancel::{flag_trip, CancelToken, RunBudget};
use crate::error::MachineError;
use crate::exec::Stats;
use crate::profile::Phase;
use crate::shard::{plan_cuts, resolve_shards, SenseBarrier};
use crate::telemetry::{EventKind, NullTracer, Tracer};

use super::lut::LutCell;

/// Where a cell input or a fabric output comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Primary input number `k`.
    Primary(usize),
    /// Output of cell `id` (its FF output if the cell is registered).
    Cell(usize),
    /// Constant zero.
    Zero,
    /// Constant one.
    One,
}

/// Configuration of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellConfig {
    /// The LUT contents.
    pub lut: LutCell,
    /// Input routing, one source per LUT input.
    pub inputs: Vec<Source>,
    /// Route the output through a flip-flop (sequential) or not
    /// (combinational).
    pub registered: bool,
}

/// A full fabric configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitstream {
    /// Cell configurations (cells beyond the vector are unused).
    pub cells: Vec<CellConfig>,
    /// Fabric outputs.
    pub outputs: Vec<Source>,
}

impl Bitstream {
    /// Total configuration bits: truth tables + routing selects + the
    /// FF-mode bit per used cell (mirrors the `skilltax-estimate` LUT
    /// model: table + routing).
    pub fn config_bits(&self, fabric: &LutFabric) -> u64 {
        let route_bits = |_: &Source| -> u64 {
            // Each source select addresses primaries + cells + 2 constants.
            let space = (fabric.primary_inputs + fabric.n_cells + 2) as u64;
            u64::from(64 - (space - 1).leading_zeros())
        };
        let mut bits = 0u64;
        for cell in &self.cells {
            bits += cell.lut.table_bits() as u64;
            bits += 1; // registered flag
            for src in &cell.inputs {
                bits += route_bits(src);
            }
        }
        for out in &self.outputs {
            bits += route_bits(out);
        }
        bits
    }
}

/// An unconfigured fabric: capacity only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutFabric {
    /// Number of cells.
    pub n_cells: usize,
    /// LUT arity.
    pub k: usize,
    /// Number of primary inputs.
    pub primary_inputs: usize,
}

impl LutFabric {
    /// A fabric of `n_cells` k-LUTs with `primary_inputs` input pads.
    pub fn new(n_cells: usize, k: usize, primary_inputs: usize) -> LutFabric {
        LutFabric {
            n_cells,
            k,
            primary_inputs,
        }
    }

    /// Validate a bitstream and produce a runnable configured fabric.
    ///
    /// Rejected: too many cells, arity mismatches, dangling sources, and
    /// *combinational cycles* (a cycle is only legal if it passes through
    /// at least one registered cell).
    pub fn configure(&self, bitstream: &Bitstream) -> Result<ConfiguredFabric, MachineError> {
        if bitstream.cells.len() > self.n_cells {
            return Err(MachineError::config(format!(
                "bitstream uses {} cells but the fabric has {}",
                bitstream.cells.len(),
                self.n_cells
            )));
        }
        let n = bitstream.cells.len();
        let check_source = |src: &Source| -> Result<(), MachineError> {
            match *src {
                Source::Primary(k) if k >= self.primary_inputs => {
                    Err(MachineError::config(format!(
                        "source references primary input {k} of {}",
                        self.primary_inputs
                    )))
                }
                Source::Cell(id) if id >= n => Err(MachineError::config(format!(
                    "source references cell {id} of {n}"
                ))),
                _ => Ok(()),
            }
        };
        for (id, cell) in bitstream.cells.iter().enumerate() {
            if cell.lut.arity() != cell.inputs.len() {
                return Err(MachineError::config(format!(
                    "cell {id}: {}-LUT with {} routed inputs",
                    cell.lut.arity(),
                    cell.inputs.len()
                )));
            }
            if cell.lut.arity() > self.k {
                return Err(MachineError::config(format!(
                    "cell {id}: {}-LUT on a {}-LUT fabric",
                    cell.lut.arity(),
                    self.k
                )));
            }
            for src in &cell.inputs {
                check_source(src)?;
            }
        }
        for out in &bitstream.outputs {
            check_source(out)?;
        }

        // Topologically order the combinational subgraph.
        let order = combinational_order(&bitstream.cells)?;

        // Cell→cell consumer lists (all Source::Cell edges, registered or
        // not) drive the incremental re-settle in `step`.
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, cell) in bitstream.cells.iter().enumerate() {
            for src in &cell.inputs {
                if let Source::Cell(p) = *src {
                    consumers[p].push(id);
                }
            }
        }

        Ok(ConfiguredFabric {
            bitstream: bitstream.clone(),
            comb_order: order,
            consumers,
            state: vec![false; n],
            value: vec![false; n],
            last_inputs: Vec::new(),
            cache_valid: false,
            dense_reference: false,
            shards: 1,
            cancel: CancelToken::new(),
        })
    }
}

/// Topological order over non-registered dependencies; errors on
/// combinational cycles.
fn combinational_order(cells: &[CellConfig]) -> Result<Vec<usize>, MachineError> {
    let n = cells.len();
    // indegree counts only edges from *unregistered* producer cells.
    let mut indegree = vec![0usize; n];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, cell) in cells.iter().enumerate() {
        for src in &cell.inputs {
            if let Source::Cell(p) = *src {
                if !cells[p].registered {
                    indegree[id] += 1;
                    consumers[p].push(id);
                }
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop() {
        order.push(id);
        for &c in &consumers[id] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push(c);
            }
        }
    }
    if order.len() != n {
        return Err(MachineError::config(
            "combinational cycle: a feedback loop must pass through a registered cell",
        ));
    }
    Ok(order)
}

/// A fabric with a loaded bitstream, ready to run.
#[derive(Debug, Clone)]
pub struct ConfiguredFabric {
    bitstream: Bitstream,
    comb_order: Vec<usize>,
    consumers: Vec<Vec<usize>>,
    state: Vec<bool>,
    /// Cached settled cell values for (`state`, `last_inputs`); only
    /// meaningful while `cache_valid`.
    value: Vec<bool>,
    last_inputs: Vec<bool>,
    cache_valid: bool,
    dense_reference: bool,
    shards: usize,
    cancel: CancelToken,
}

impl ConfiguredFabric {
    /// Current flip-flop state.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Force the full settle-latch-settle clock edge (the reference
    /// path) instead of the incremental dirty-cone re-settle.  Both
    /// produce identical outputs and state trajectories.
    pub fn with_dense_reference(mut self, dense: bool) -> ConfiguredFabric {
        self.dense_reference = dense;
        self
    }

    /// Request shard-parallel clocking for [`ConfiguredFabric::run_until`]
    /// (`0` = one shard per available core, honouring `SKILLTAX_THREADS`).
    ///
    /// The fabric is cut along *weakly-connected components* of the
    /// cell→cell routing graph: regions that share no wire evolve
    /// independently, so each worker clocks its own region and the
    /// coordinator assembles the fabric outputs at a per-edge barrier.
    /// Outputs, flip-flop trajectories, `Stats`, and telemetry are
    /// bit-identical to the single-threaded clock loop; fabrics that are
    /// one connected region simply fall back to it.
    pub fn with_shards(mut self, shards: usize) -> ConfiguredFabric {
        self.shards = shards;
        self
    }

    /// Attach a cancellation token to [`ConfiguredFabric::run_until`]: a
    /// deadline stops the run after that exact number of clock edges
    /// (identically on the single-threaded and shard-parallel paths); a
    /// raised flag stops it at the next edge poll.
    pub fn with_cancel(mut self, cancel: CancelToken) -> ConfiguredFabric {
        self.cancel = cancel;
        self
    }

    /// Reset all flip-flops to zero.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|b| *b = false);
        self.cache_valid = false;
    }

    /// Compute every cell's combinational value for the given primary
    /// inputs (registered cells contribute their *current* FF value to
    /// consumers).
    fn settle(&self, inputs: &[bool]) -> Result<Vec<bool>, MachineError> {
        let cells = &self.bitstream.cells;
        let mut value = vec![false; cells.len()];
        let resolve = |src: &Source, value: &[bool]| -> Result<bool, MachineError> {
            Ok(match *src {
                Source::Primary(k) => *inputs
                    .get(k)
                    .ok_or_else(|| MachineError::config(format!("missing primary input {k}")))?,
                Source::Cell(id) => {
                    if cells[id].registered {
                        self.state[id]
                    } else {
                        value[id]
                    }
                }
                Source::Zero => false,
                Source::One => true,
            })
        };
        for &id in &self.comb_order {
            let cell = &cells[id];
            let ins: Result<Vec<bool>, MachineError> =
                cell.inputs.iter().map(|s| resolve(s, &value)).collect();
            value[id] = cell.lut.eval(&ins?)?;
        }
        Ok(value)
    }

    /// Resolve one source against settled cell values (registered
    /// producers contribute their FF state).
    fn resolve_from(
        &self,
        src: &Source,
        inputs: &[bool],
        value: &[bool],
    ) -> Result<bool, MachineError> {
        Ok(match *src {
            Source::Primary(k) => *inputs
                .get(k)
                .ok_or_else(|| MachineError::config(format!("missing primary input {k}")))?,
            Source::Cell(id) => {
                if self.bitstream.cells[id].registered {
                    self.state[id]
                } else {
                    value[id]
                }
            }
            Source::Zero => false,
            Source::One => true,
        })
    }

    /// Read the fabric outputs from settled cell values.
    fn outputs_from(&self, inputs: &[bool], value: &[bool]) -> Result<Vec<bool>, MachineError> {
        self.bitstream
            .outputs
            .iter()
            .map(|src| self.resolve_from(src, inputs, value))
            .collect()
    }

    /// Evaluate the fabric combinationally and read the outputs (the
    /// *datapath* view: no clock edge, FFs unchanged).
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, MachineError> {
        let value = self.settle(inputs)?;
        self.outputs_from(inputs, &value)
    }

    /// One clock cycle: settle, latch every registered cell, and return
    /// the post-edge outputs (the *state machine* view).
    ///
    /// The default path keeps the settled values cached across edges and
    /// only re-evaluates the *dirty cone* downstream of flip-flops that
    /// actually changed at the latch — on a fabric where most state
    /// holds steady, an edge costs O(changed cone) instead of two full
    /// network settles.  [`ConfiguredFabric::with_dense_reference`]
    /// forces the full recompute for differential testing.
    pub fn step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, MachineError> {
        if self.dense_reference {
            let value = self.settle(inputs)?;
            for (id, cell) in self.bitstream.cells.iter().enumerate() {
                if cell.registered {
                    self.state[id] = value[id];
                }
            }
            return self.eval(inputs);
        }
        // Pre-edge settle: reuse the cache when neither the inputs nor
        // the state changed since it was filled (the cache is maintained
        // post-latch below, so it already reflects the current state).
        if !self.cache_valid || self.last_inputs != inputs {
            match self.settle(inputs) {
                Ok(value) => {
                    self.value = value;
                    self.last_inputs = inputs.to_vec();
                    self.cache_valid = true;
                }
                Err(err) => {
                    self.cache_valid = false;
                    return Err(err);
                }
            }
        }
        // Latch, seeding the dirty set with consumers of FFs that flipped.
        let mut dirty = vec![false; self.bitstream.cells.len()];
        let mut any_flipped = false;
        for (id, cell) in self.bitstream.cells.iter().enumerate() {
            if cell.registered && self.state[id] != self.value[id] {
                self.state[id] = self.value[id];
                any_flipped = true;
                for &c in &self.consumers[id] {
                    dirty[c] = true;
                }
            }
        }
        // Post-edge re-settle over the dirty cone only, in topological
        // order.  A recomputed cell propagates dirtiness only if it is
        // unregistered (consumers of a registered cell read its FF, which
        // will not move again until the next edge).
        if any_flipped {
            for idx in 0..self.comb_order.len() {
                let id = self.comb_order[idx];
                if !dirty[id] {
                    continue;
                }
                let ins: Result<Vec<bool>, MachineError> = self.bitstream.cells[id]
                    .inputs
                    .iter()
                    .map(|s| self.resolve_from(s, inputs, &self.value))
                    .collect();
                let new = match ins.and_then(|ins| self.bitstream.cells[id].lut.eval(&ins)) {
                    Ok(v) => v,
                    Err(err) => {
                        self.cache_valid = false;
                        return Err(err);
                    }
                };
                if new != self.value[id] {
                    self.value[id] = new;
                    if !self.bitstream.cells[id].registered {
                        for &c in &self.consumers[id] {
                            dirty[c] = true;
                        }
                    }
                }
            }
        }
        let out = self.outputs_from(inputs, &self.value);
        if out.is_err() {
            self.cache_valid = false;
        }
        out
    }

    /// Clock the fabric until `done(outputs)` holds, with a cycle-budget
    /// watchdog: a state machine that never satisfies the predicate comes
    /// back as a typed [`MachineError::WatchdogTimeout`] with partial
    /// [`Stats`] instead of hanging the caller.
    pub fn run_until(
        &mut self,
        inputs: &[bool],
        limit: u64,
        done: impl FnMut(&[bool]) -> bool,
    ) -> Result<(Vec<bool>, Stats), MachineError> {
        self.run_until_traced(inputs, limit, done, &mut NullTracer)
    }

    /// [`ConfiguredFabric::run_until`] with observation hooks: one `Issue`
    /// event per clock edge (the fabric-wide evaluation), a `Watchdog`
    /// event if the budget trips.  With a [`NullTracer`] this
    /// monomorphises back to the plain clock loop.
    pub fn run_until_traced<T: Tracer>(
        &mut self,
        inputs: &[bool],
        limit: u64,
        mut done: impl FnMut(&[bool]) -> bool,
        tracer: &mut T,
    ) -> Result<(Vec<bool>, Stats), MachineError> {
        if let Some(regions) = self.shard_regions(inputs) {
            return self.run_until_sharded(inputs, limit, done, tracer, &regions);
        }
        let budget = RunBudget::resolve(limit, &self.cancel);
        let mut stats = Stats::default();
        tracer.span_enter(0, Phase::Run);
        tracer.span_enter(0, Phase::Decode);
        tracer.span_exit(0);
        tracer.span_enter(0, Phase::Slice);
        loop {
            if self.cancel.flag_raised() {
                return Err(flag_trip(stats.cycles, stats, tracer));
            }
            if stats.cycles >= budget.limit() {
                return Err(budget.trip(stats.cycles, stats, tracer));
            }
            let out = self.step(inputs)?;
            stats.cycles += 1;
            stats.instructions += 1; // one fabric-wide evaluation per edge
            tracer.record(stats.cycles, EventKind::Issue);
            if done(&out) {
                tracer.span_exit(stats.cycles);
                tracer.span_exit(stats.cycles);
                return Ok((out, stats));
            }
        }
    }

    /// Decide whether this run can shard, and into which cell regions.
    ///
    /// Regions are the weakly-connected components of the cell→cell
    /// routing graph (components ordered by their smallest cell id, then
    /// grouped into contiguous shard runs).  A component never reads
    /// another component's wires, so each evolves exactly as it would in
    /// the full fabric.  Falls back (`None`) when sharding is off, the
    /// dense reference path is forced, fewer than two regions exist, or
    /// `inputs` does not cover every routed primary — the single-threaded
    /// settle reports the missing-input error in `comb_order` position,
    /// an ordering a regional scan cannot reproduce.
    fn shard_regions(&self, inputs: &[bool]) -> Option<Vec<Vec<usize>>> {
        if self.shards == 1 || self.dense_reference {
            return None;
        }
        let shards = resolve_shards(self.shards);
        if shards < 2 {
            return None;
        }
        let cells = &self.bitstream.cells;
        let n = cells.len();
        if n < 2 {
            return None;
        }
        let routed_primary = |src: &Source| match *src {
            Source::Primary(k) => k >= inputs.len(),
            _ => false,
        };
        if cells
            .iter()
            .flat_map(|c| c.inputs.iter())
            .chain(self.bitstream.outputs.iter())
            .any(routed_primary)
        {
            return None;
        }
        // Union-find over Source::Cell edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (id, cell) in cells.iter().enumerate() {
            for src in &cell.inputs {
                if let Source::Cell(p) = *src {
                    let (a, b) = (find(&mut parent, id), find(&mut parent, p));
                    parent[a] = b;
                }
            }
        }
        // Components keyed by root, ordered by smallest member id.
        let mut component_of = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for id in 0..n {
            let root = find(&mut parent, id);
            if component_of[root] == usize::MAX {
                component_of[root] = components.len();
                components.push(Vec::new());
            }
            components[component_of[root]].push(id);
        }
        let g = components.len();
        if g < 2 {
            return None;
        }
        let mut allowed = vec![true; g];
        allowed[0] = false;
        let cuts = plan_cuts(g, shards, &allowed)?;
        let mut regions: Vec<Vec<usize>> = Vec::with_capacity(cuts.len());
        for (s, &start) in cuts.iter().enumerate() {
            let end = cuts.get(s + 1).copied().unwrap_or(g);
            regions.push(components[start..end].iter().flatten().copied().collect());
        }
        Some(regions)
    }

    /// The shard-parallel clock loop: each worker owns a disjoint cell
    /// region (a clone of the fabric whose `comb_order` is filtered to
    /// its cells) and advances it one edge per barrier slice; the
    /// coordinator assembles the fabric outputs from the owning regions,
    /// evaluates `done`, and records the same `Issue`/`Watchdog` events
    /// as the single-threaded loop.  Flip-flop state is gathered back
    /// into `self` when the run ends, so post-run [`state`] reads and
    /// later `step`s continue identically.
    ///
    /// [`state`]: ConfiguredFabric::state
    fn run_until_sharded<T: Tracer>(
        &mut self,
        inputs: &[bool],
        limit: u64,
        mut done: impl FnMut(&[bool]) -> bool,
        tracer: &mut T,
        regions: &[Vec<usize>],
    ) -> Result<(Vec<bool>, Stats), MachineError> {
        let budget = RunBudget::resolve(limit, &self.cancel);
        let limit = budget.limit();
        let cancel = self.cancel.clone();
        let k = regions.len();
        let n = self.bitstream.cells.len();
        let mut shard_of = vec![usize::MAX; n];
        for (s, cells) in regions.iter().enumerate() {
            for &c in cells {
                shard_of[c] = s;
            }
        }
        let seats: Vec<ConfiguredFabric> = regions
            .iter()
            .map(|cells| {
                let mut child = self.clone();
                child.comb_order.retain(|id| cells.contains(id));
                child.cache_valid = false;
                child.shards = 1;
                child
            })
            .collect();
        let barrier = SenseBarrier::new(k + 1);
        let decision = Mutex::new(EdgeDecision::Stop);
        let slots: Vec<Mutex<EdgeReport>> =
            (0..k).map(|_| Mutex::new(EdgeReport::default())).collect();

        let (run_result, stats, children) = std::thread::scope(|scope| {
            let handles: Vec<_> = seats
                .into_iter()
                .enumerate()
                .map(|(s, mut child)| {
                    let barrier = &barrier;
                    let decision = &decision;
                    let slot = &slots[s];
                    scope.spawn(move || {
                        let mut sense = false;
                        loop {
                            barrier.wait(&mut sense);
                            if matches!(
                                *decision.lock().expect("decision lock"),
                                EdgeDecision::Stop
                            ) {
                                break;
                            }
                            let result = child.step(inputs);
                            let mut report = slot.lock().expect("report lock");
                            match result {
                                Ok(outputs) => report.outputs = outputs,
                                Err(e) => report.error = Some(e),
                            }
                            drop(report);
                            barrier.wait(&mut sense);
                        }
                        child
                    })
                })
                .collect();

            let mut sense = false;
            let mut stats = Stats::default();
            // Coordinator-side spans: one coherent timeline per run.
            tracer.span_enter(0, Phase::Run);
            tracer.span_enter(0, Phase::Decode);
            tracer.span_exit(0);
            tracer.span_enter(0, Phase::Slice);
            let run_result: Result<Option<Vec<bool>>, MachineError> = loop {
                if cancel.flag_raised() {
                    break Err(flag_trip(stats.cycles, stats, tracer));
                }
                if stats.cycles >= limit {
                    break Err(budget.trip(stats.cycles, stats, tracer));
                }
                *decision.lock().expect("decision lock") = EdgeDecision::Run;
                barrier.wait(&mut sense); // release the edge
                barrier.wait(&mut sense); // all regions have latched
                let mut error: Option<MachineError> = None;
                for slot in &slots {
                    let mut report = slot.lock().expect("report lock");
                    if error.is_none() {
                        error = report.error.take();
                    }
                }
                if let Some(e) = error {
                    break Err(e);
                }
                let out: Vec<bool> = self
                    .bitstream
                    .outputs
                    .iter()
                    .enumerate()
                    .map(|(oi, src)| match *src {
                        // Primaries were range-checked by `shard_regions`.
                        Source::Primary(p) => inputs[p],
                        Source::Cell(id) => {
                            slots[shard_of[id]].lock().expect("report lock").outputs[oi]
                        }
                        Source::Zero => false,
                        Source::One => true,
                    })
                    .collect();
                tracer.span_mark(stats.cycles + 1, Phase::Barrier);
                stats.cycles += 1;
                stats.instructions += 1; // one fabric-wide evaluation per edge
                tracer.record(stats.cycles, EventKind::Issue);
                if done(&out) {
                    tracer.span_exit(stats.cycles);
                    tracer.span_exit(stats.cycles);
                    break Ok(Some(out));
                }
            };
            *decision.lock().expect("decision lock") = EdgeDecision::Stop;
            barrier.wait(&mut sense);
            let children: Vec<ConfiguredFabric> = handles
                .into_iter()
                .map(|h| h.join().expect("fabric shard worker panicked"))
                .collect();
            (run_result, stats, children)
        });
        for (s, cells) in regions.iter().enumerate() {
            for &c in cells {
                self.state[c] = children[s].state[c];
            }
        }
        self.cache_valid = false;
        let out = run_result?.expect("sharded run ended without outputs or error");
        Ok((out, stats))
    }
}

/// What the coordinator tells fabric-region workers to do next.
#[derive(Clone, Copy)]
enum EdgeDecision {
    /// Clock one edge with the run's primary inputs.
    Run,
    /// The run is over; workers return their region fabrics.
    Stop,
}

/// One region's result for one clock edge.
#[derive(Default)]
struct EdgeReport {
    /// The fabric outputs as seen by this region (entries whose source
    /// lies in another region read false and are ignored).
    outputs: Vec<bool>,
    /// An evaluation error, if the edge failed.
    error: Option<MachineError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universal::lut::{tables, LutCell};

    fn lut2(table: [bool; 4]) -> LutCell {
        LutCell::new(2, table.to_vec()).unwrap()
    }

    #[test]
    fn combinational_network_evaluates() {
        // out = (a AND b) XOR c — three primaries, two cells.
        let fabric = LutFabric::new(8, 2, 3);
        let bs = Bitstream {
            cells: vec![
                CellConfig {
                    lut: lut2(tables::AND2),
                    inputs: vec![Source::Primary(0), Source::Primary(1)],
                    registered: false,
                },
                CellConfig {
                    lut: lut2(tables::XOR2),
                    inputs: vec![Source::Cell(0), Source::Primary(2)],
                    registered: false,
                },
            ],
            outputs: vec![Source::Cell(1)],
        };
        let configured = fabric.configure(&bs).unwrap();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = configured.eval(&[a, b, c]).unwrap();
                    assert_eq!(out, vec![(a && b) ^ c]);
                }
            }
        }
    }

    #[test]
    fn registered_cell_makes_a_toggle_flip_flop() {
        // cell0 = XOR(cell0, enable), registered: a T flip-flop.
        let fabric = LutFabric::new(4, 2, 1);
        let bs = Bitstream {
            cells: vec![CellConfig {
                lut: lut2(tables::XOR2),
                inputs: vec![Source::Cell(0), Source::Primary(0)],
                registered: true,
            }],
            outputs: vec![Source::Cell(0)],
        };
        let mut f = fabric.configure(&bs).unwrap();
        assert_eq!(f.eval(&[true]).unwrap(), vec![false]);
        assert_eq!(f.step(&[true]).unwrap(), vec![true]);
        assert_eq!(f.step(&[true]).unwrap(), vec![false]);
        assert_eq!(f.step(&[false]).unwrap(), vec![false]); // hold
        f.reset();
        assert_eq!(f.state(), &[false]);
    }

    #[test]
    fn run_until_stops_when_the_predicate_holds() {
        // The T flip-flop toggles every cycle; wait for it to read true.
        let fabric = LutFabric::new(4, 2, 1);
        let bs = Bitstream {
            cells: vec![CellConfig {
                lut: lut2(tables::XOR2),
                inputs: vec![Source::Cell(0), Source::Primary(0)],
                registered: true,
            }],
            outputs: vec![Source::Cell(0)],
        };
        let mut f = fabric.configure(&bs).unwrap();
        let (out, stats) = f.run_until(&[true], 16, |o| o[0]).unwrap();
        assert_eq!(out, vec![true]);
        assert_eq!(stats.cycles, 1);
    }

    #[test]
    fn run_until_trips_the_watchdog_on_a_stuck_machine() {
        // With the toggle input held low the FF never changes, so the
        // predicate can never hold.
        let fabric = LutFabric::new(4, 2, 1);
        let bs = Bitstream {
            cells: vec![CellConfig {
                lut: lut2(tables::XOR2),
                inputs: vec![Source::Cell(0), Source::Primary(0)],
                registered: true,
            }],
            outputs: vec![Source::Cell(0)],
        };
        let mut f = fabric.configure(&bs).unwrap();
        match f.run_until(&[false], 32, |o| o[0]) {
            Err(MachineError::WatchdogTimeout { limit: 32, partial }) => {
                assert_eq!(partial.cycles, 32);
            }
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
    }

    #[test]
    fn combinational_cycles_rejected() {
        let fabric = LutFabric::new(4, 2, 1);
        let bs = Bitstream {
            cells: vec![
                CellConfig {
                    lut: lut2(tables::OR2),
                    inputs: vec![Source::Cell(1), Source::Primary(0)],
                    registered: false,
                },
                CellConfig {
                    lut: lut2(tables::AND2),
                    inputs: vec![Source::Cell(0), Source::Primary(0)],
                    registered: false,
                },
            ],
            outputs: vec![Source::Cell(1)],
        };
        assert!(fabric.configure(&bs).is_err());
    }

    #[test]
    fn registered_feedback_is_legal() {
        // Same loop as above but through an FF: fine.
        let fabric = LutFabric::new(4, 2, 1);
        let bs = Bitstream {
            cells: vec![
                CellConfig {
                    lut: lut2(tables::OR2),
                    inputs: vec![Source::Cell(1), Source::Primary(0)],
                    registered: false,
                },
                CellConfig {
                    lut: lut2(tables::AND2),
                    inputs: vec![Source::Cell(0), Source::Primary(0)],
                    registered: true,
                },
            ],
            outputs: vec![Source::Cell(1)],
        };
        assert!(fabric.configure(&bs).is_ok());
    }

    #[test]
    fn capacity_and_dangling_sources_checked() {
        let fabric = LutFabric::new(1, 2, 1);
        let two_cells = Bitstream {
            cells: vec![
                CellConfig {
                    lut: lut2(tables::AND2),
                    inputs: vec![Source::Primary(0), Source::Zero],
                    registered: false,
                };
                2
            ],
            outputs: vec![],
        };
        assert!(fabric.configure(&two_cells).is_err());
        let dangling = Bitstream {
            cells: vec![CellConfig {
                lut: lut2(tables::AND2),
                inputs: vec![Source::Primary(5), Source::Zero],
                registered: false,
            }],
            outputs: vec![],
        };
        assert!(fabric.configure(&dangling).is_err());
    }

    #[test]
    fn config_bits_grow_with_used_cells() {
        let fabric = LutFabric::new(64, 2, 4);
        let one = Bitstream {
            cells: vec![CellConfig {
                lut: lut2(tables::AND2),
                inputs: vec![Source::Primary(0), Source::Primary(1)],
                registered: false,
            }],
            outputs: vec![Source::Cell(0)],
        };
        let mut two = one.clone();
        two.cells.push(CellConfig {
            lut: lut2(tables::OR2),
            inputs: vec![Source::Cell(0), Source::Primary(2)],
            registered: false,
        });
        assert!(two.config_bits(&fabric) > one.config_bits(&fabric));
    }
}

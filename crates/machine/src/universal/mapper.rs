//! Mapping logic onto the LUT fabric — and the paper's "both paradigms"
//! demonstration.
//!
//! Two canonical configurations are provided:
//!
//! * [`ripple_adder`] — a pure combinational datapath (the fabric acting
//!   as a **data processor**, data-flow style: results appear as soon as
//!   the operands do, no instructions anywhere);
//! * [`program_counter`] — a registered state machine computing
//!   `next_pc = branch ? target : pc + 1`, which is precisely Skillicorn's
//!   definition of an **instruction processor** ("a state machine which
//!   determines the next instruction to be executed").
//!
//! The same [`LutFabric`] runs either bitstream, which is the executable
//! content of the USP class: role exchange by reconfiguration.

use crate::error::MachineError;

use super::fabric::{Bitstream, CellConfig, LutFabric, Source};
use super::lut::LutCell;

/// A small boolean expression language for ad-hoc mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// Primary input `k`.
    Input(usize),
    /// Constant.
    Const(bool),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Exclusive or.
    Xor(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Reference evaluation.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            BoolExpr::Input(k) => inputs[*k],
            BoolExpr::Const(c) => *c,
            BoolExpr::Not(a) => !a.eval(inputs),
            BoolExpr::And(a, b) => a.eval(inputs) && b.eval(inputs),
            BoolExpr::Or(a, b) => a.eval(inputs) || b.eval(inputs),
            BoolExpr::Xor(a, b) => a.eval(inputs) ^ b.eval(inputs),
        }
    }

    /// Number of LUT cells a naive mapping uses.
    pub fn cell_count(&self) -> usize {
        match self {
            BoolExpr::Input(_) | BoolExpr::Const(_) => 0,
            BoolExpr::Not(a) => 1 + a.cell_count(),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) | BoolExpr::Xor(a, b) => {
                1 + a.cell_count() + b.cell_count()
            }
        }
    }
}

/// Map a list of boolean expressions (one per fabric output) onto a
/// fabric, one cell per operator.
pub fn map_exprs(fabric: &LutFabric, exprs: &[BoolExpr]) -> Result<Bitstream, MachineError> {
    let mut bs = Bitstream::default();
    let mut outputs = Vec::with_capacity(exprs.len());
    for expr in exprs {
        let src = map_one(&mut bs, expr)?;
        outputs.push(src);
    }
    bs.outputs = outputs;
    if bs.cells.len() > fabric.n_cells {
        return Err(MachineError::config(format!(
            "expression needs {} cells but the fabric has {}",
            bs.cells.len(),
            fabric.n_cells
        )));
    }
    Ok(bs)
}

fn map_one(bs: &mut Bitstream, expr: &BoolExpr) -> Result<Source, MachineError> {
    Ok(match expr {
        BoolExpr::Input(k) => Source::Primary(*k),
        BoolExpr::Const(false) => Source::Zero,
        BoolExpr::Const(true) => Source::One,
        BoolExpr::Not(a) => {
            let a = map_one(bs, a)?;
            push_cell(
                bs,
                LutCell::from_fn(2, |b| !b[0])?,
                vec![a, Source::Zero],
                false,
            )
        }
        BoolExpr::And(a, b) => {
            let (a, b) = (map_one(bs, a)?, map_one(bs, b)?);
            push_cell(
                bs,
                LutCell::from_fn(2, |x| x[0] && x[1])?,
                vec![a, b],
                false,
            )
        }
        BoolExpr::Or(a, b) => {
            let (a, b) = (map_one(bs, a)?, map_one(bs, b)?);
            push_cell(
                bs,
                LutCell::from_fn(2, |x| x[0] || x[1])?,
                vec![a, b],
                false,
            )
        }
        BoolExpr::Xor(a, b) => {
            let (a, b) = (map_one(bs, a)?, map_one(bs, b)?);
            push_cell(bs, LutCell::from_fn(2, |x| x[0] ^ x[1])?, vec![a, b], false)
        }
    })
}

fn push_cell(bs: &mut Bitstream, lut: LutCell, inputs: Vec<Source>, registered: bool) -> Source {
    bs.cells.push(CellConfig {
        lut,
        inputs,
        registered,
    });
    Source::Cell(bs.cells.len() - 1)
}

/// A `bits`-wide ripple-carry adder bitstream: primaries are
/// `a[0..bits], b[0..bits]`; outputs are `sum[0..bits], carry_out`.
pub fn ripple_adder(fabric: &LutFabric, bits: usize) -> Result<Bitstream, MachineError> {
    if bits == 0 {
        return Err(MachineError::config("adder width must be positive"));
    }
    let mut bs = Bitstream::default();
    let mut carry: Source = Source::Zero;
    let mut sums = Vec::with_capacity(bits + 1);
    for i in 0..bits {
        let a = Source::Primary(i);
        let b = Source::Primary(bits + i);
        // sum_i = a ^ b ^ cin; needs a 3-LUT.
        let sum = push_cell(
            &mut bs,
            LutCell::from_fn(3, |x| x[0] ^ x[1] ^ x[2])?,
            vec![a, b, carry],
            false,
        );
        // cout = majority(a, b, cin).
        let cout = push_cell(
            &mut bs,
            LutCell::from_fn(3, |x| {
                (u8::from(x[0]) + u8::from(x[1]) + u8::from(x[2])) >= 2
            })?,
            vec![a, b, carry],
            false,
        );
        sums.push(sum);
        carry = cout;
    }
    sums.push(carry);
    bs.outputs = sums;
    if bs.cells.len() > fabric.n_cells || fabric.k < 3 {
        return Err(MachineError::config(format!(
            "adder needs {} 3-LUTs; fabric has {} {}-LUTs",
            bs.cells.len(),
            fabric.n_cells,
            fabric.k
        )));
    }
    Ok(bs)
}

/// A `bits`-wide program counter bitstream — the instruction-processor
/// state machine.  Primaries: `branch, target[0..bits]`.  Outputs:
/// `pc[0..bits]`.  Each clock: `pc <- branch ? target : pc + 1`.
pub fn program_counter(fabric: &LutFabric, bits: usize) -> Result<Bitstream, MachineError> {
    if bits == 0 {
        return Err(MachineError::config("PC width must be positive"));
    }
    if fabric.k < 4 {
        return Err(MachineError::config("the PC mapping needs 4-LUTs"));
    }
    let mut bs = Bitstream::default();
    // State cells are allocated first so their ids are 0..bits; each is a
    // registered 4-LUT of (pc_i, carry_i, branch, target_i):
    //   next = branch ? target : pc ^ carry       (increment-by-one logic)
    // carry_0 = 1; carry_{i+1} = pc_i AND carry_i (combinational chain).
    for i in 0..bits {
        bs.cells.push(CellConfig {
            lut: LutCell::from_fn(4, |x| if x[2] { x[3] } else { x[0] ^ x[1] })?,
            // Inputs are wired below once the carry chain exists.
            inputs: vec![Source::Zero; 4],
            registered: true,
        });
        let _ = i;
    }
    // Carry chain cells: carry_1..carry_{bits-1} (carry_0 is constant One).
    let mut carries: Vec<Source> = vec![Source::One];
    for i in 1..bits {
        let prev = carries[i - 1];
        let c = push_cell(
            &mut bs,
            LutCell::from_fn(2, |x| x[0] && x[1])?,
            vec![Source::Cell(i - 1), prev],
            false,
        );
        carries.push(c);
    }
    // Wire the state cells (bit index addresses cells, carries and
    // primaries in lockstep, so a range loop is the clear form here).
    #[allow(clippy::needless_range_loop)]
    for i in 0..bits {
        bs.cells[i].inputs = vec![
            Source::Cell(i),        // pc_i (registered: reads own FF)
            carries[i],             // carry into bit i
            Source::Primary(0),     // branch
            Source::Primary(1 + i), // target_i
        ];
    }
    bs.outputs = (0..bits).map(Source::Cell).collect();
    if bs.cells.len() > fabric.n_cells {
        return Err(MachineError::config(format!(
            "PC needs {} cells; fabric has {}",
            bs.cells.len(),
            fabric.n_cells
        )));
    }
    Ok(bs)
}

/// A `bits`-wide equality comparator: primaries `a[0..bits], b[0..bits]`,
/// one output (`a == b`).
pub fn comparator(fabric: &LutFabric, bits: usize) -> Result<Bitstream, MachineError> {
    if bits == 0 {
        return Err(MachineError::config("comparator width must be positive"));
    }
    let mut bs = Bitstream::default();
    let mut all_eq: Option<Source> = None;
    for i in 0..bits {
        let eq = push_cell(
            &mut bs,
            LutCell::from_fn(2, |x| x[0] == x[1])?,
            vec![Source::Primary(i), Source::Primary(bits + i)],
            false,
        );
        all_eq = Some(match all_eq {
            None => eq,
            Some(acc) => push_cell(
                &mut bs,
                LutCell::from_fn(2, |x| x[0] && x[1])?,
                vec![acc, eq],
                false,
            ),
        });
    }
    bs.outputs = vec![all_eq.expect("bits >= 1")];
    if bs.cells.len() > fabric.n_cells {
        return Err(MachineError::config("fabric too small for the comparator"));
    }
    Ok(bs)
}

/// A `bits`-wide two-operation ALU slice: primaries
/// `mode, a[0..bits], b[0..bits]`; outputs `r[0..bits]` where
/// `r = mode ? (a XOR b) : (a AND b)` — the smallest demonstration that a
/// LUT fabric implements a *configurable* data processor (the op select
/// is a runtime input; the function repertoire is configuration).
pub fn alu_slice(fabric: &LutFabric, bits: usize) -> Result<Bitstream, MachineError> {
    if bits == 0 {
        return Err(MachineError::config("ALU width must be positive"));
    }
    if fabric.k < 3 {
        return Err(MachineError::config("the ALU slice needs 3-LUTs"));
    }
    let mut bs = Bitstream::default();
    let mut outs = Vec::with_capacity(bits);
    for i in 0..bits {
        let r = push_cell(
            &mut bs,
            LutCell::from_fn(3, |x| if x[2] { x[0] ^ x[1] } else { x[0] && x[1] })?,
            vec![
                Source::Primary(1 + i),
                Source::Primary(1 + bits + i),
                Source::Primary(0),
            ],
            false,
        );
        outs.push(r);
    }
    bs.outputs = outs;
    if bs.cells.len() > fabric.n_cells {
        return Err(MachineError::config("fabric too small for the ALU slice"));
    }
    Ok(bs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_to_usize(bits: &[bool]) -> usize {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (usize::from(b) << i))
    }

    fn usize_to_bits(v: usize, n: usize) -> Vec<bool> {
        (0..n).map(|i| v >> i & 1 == 1).collect()
    }

    #[test]
    fn mapped_expression_matches_reference_exhaustively() {
        // (a XOR b) AND NOT c
        let expr = BoolExpr::And(
            Box::new(BoolExpr::Xor(
                Box::new(BoolExpr::Input(0)),
                Box::new(BoolExpr::Input(1)),
            )),
            Box::new(BoolExpr::Not(Box::new(BoolExpr::Input(2)))),
        );
        let fabric = LutFabric::new(16, 2, 3);
        let bs = map_exprs(&fabric, std::slice::from_ref(&expr)).unwrap();
        let configured = fabric.configure(&bs).unwrap();
        for v in 0..8 {
            let inputs = usize_to_bits(v, 3);
            assert_eq!(
                configured.eval(&inputs).unwrap(),
                vec![expr.eval(&inputs)],
                "inputs {inputs:?}"
            );
        }
        assert_eq!(expr.cell_count(), 3);
    }

    #[test]
    fn ripple_adder_adds_exhaustively() {
        let bits = 4;
        let fabric = LutFabric::new(64, 3, 2 * bits);
        let bs = ripple_adder(&fabric, bits).unwrap();
        let configured = fabric.configure(&bs).unwrap();
        for a in 0..16usize {
            for b in 0..16usize {
                let mut inputs = usize_to_bits(a, bits);
                inputs.extend(usize_to_bits(b, bits));
                let out = configured.eval(&inputs).unwrap();
                assert_eq!(bits_to_usize(&out), a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn program_counter_counts_and_branches() {
        let bits = 3;
        let fabric = LutFabric::new(64, 4, 1 + bits);
        let bs = program_counter(&fabric, bits).unwrap();
        let mut pc = fabric.configure(&bs).unwrap();
        // Sequential fetch: 1, 2, 3, ...
        let no_branch: Vec<bool> = {
            let mut v = vec![false];
            v.extend(usize_to_bits(0, bits));
            v
        };
        for expect in 1..=5usize {
            let out = pc.step(&no_branch).unwrap();
            assert_eq!(bits_to_usize(&out), expect % 8);
        }
        // Branch to 6.
        let mut branch = vec![true];
        branch.extend(usize_to_bits(6, bits));
        let out = pc.step(&branch).unwrap();
        assert_eq!(bits_to_usize(&out), 6);
        // And keep counting: 7, 0 (wrap).
        assert_eq!(bits_to_usize(&pc.step(&no_branch).unwrap()), 7);
        assert_eq!(bits_to_usize(&pc.step(&no_branch).unwrap()), 0);
    }

    #[test]
    fn same_fabric_runs_both_paradigms() {
        // The USP claim: one fabric, two roles, swapped by reconfiguration.
        let fabric = LutFabric::new(64, 4, 8);
        let dp_view = ripple_adder(&fabric, 3).unwrap();
        let ip_view = program_counter(&fabric, 3).unwrap();
        let adder = fabric.configure(&dp_view).unwrap();
        let mut pc = fabric.configure(&ip_view).unwrap();
        // Datapath: 5 + 2 = 7.
        let mut inputs = usize_to_bits(5, 3);
        inputs.extend(usize_to_bits(2, 3));
        inputs.extend([false, false]); // unused pads
        assert_eq!(bits_to_usize(&adder.eval(&inputs).unwrap()), 7);
        // Instruction processor: counts.
        let mut no_branch = vec![false];
        no_branch.extend(usize_to_bits(0, 3));
        no_branch.extend([false; 4]);
        assert_eq!(bits_to_usize(&pc.step(&no_branch).unwrap()), 1);
    }

    #[test]
    fn comparator_is_exhaustively_correct() {
        let bits = 3;
        let fabric = LutFabric::new(32, 2, 2 * bits);
        let cfg = fabric
            .configure(&comparator(&fabric, bits).unwrap())
            .unwrap();
        for a in 0..8usize {
            for b in 0..8usize {
                let mut inputs = usize_to_bits(a, bits);
                inputs.extend(usize_to_bits(b, bits));
                assert_eq!(cfg.eval(&inputs).unwrap(), vec![a == b], "{a} vs {b}");
            }
        }
    }

    #[test]
    fn alu_slice_switches_operations_at_runtime() {
        let bits = 4;
        let fabric = LutFabric::new(32, 3, 1 + 2 * bits);
        let cfg = fabric
            .configure(&alu_slice(&fabric, bits).unwrap())
            .unwrap();
        for a in 0..16usize {
            for b in 0..16usize {
                for mode in [false, true] {
                    let mut inputs = vec![mode];
                    inputs.extend(usize_to_bits(a, bits));
                    inputs.extend(usize_to_bits(b, bits));
                    let out = bits_to_usize(&cfg.eval(&inputs).unwrap());
                    let expect = if mode { a ^ b } else { a & b };
                    assert_eq!(out, expect, "a={a} b={b} mode={mode}");
                }
            }
        }
    }

    #[test]
    fn too_small_fabrics_are_rejected() {
        let tiny = LutFabric::new(2, 3, 8);
        assert!(ripple_adder(&tiny, 4).is_err());
        let two_lut = LutFabric::new(64, 2, 8);
        assert!(ripple_adder(&two_lut, 4).is_err());
        assert!(program_counter(&two_lut, 4).is_err());
        assert!(ripple_adder(&LutFabric::new(64, 3, 8), 0).is_err());
        assert!(program_counter(&LutFabric::new(64, 4, 8), 0).is_err());
    }
}

//! Lookup-table cells: the fine-grained building block of universal-flow
//! machines.
//!
//! A k-LUT stores a 2^k-entry truth table and can therefore implement any
//! boolean function of k inputs — which is why the *role* of a cell (part
//! of an IP, a DP, or a memory) is decided purely by configuration.

use crate::error::MachineError;

/// One k-input lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutCell {
    k: usize,
    table: Vec<bool>,
}

impl LutCell {
    /// Build a cell from an explicit truth table (`table[i]` is the output
    /// when the inputs spell the binary number `i`, input 0 = LSB).
    pub fn new(k: usize, table: Vec<bool>) -> Result<LutCell, MachineError> {
        if k == 0 || k > 8 {
            return Err(MachineError::config(format!("LUT arity {k} outside 1..=8")));
        }
        if table.len() != 1 << k {
            return Err(MachineError::config(format!(
                "a {k}-LUT needs {} table entries, got {}",
                1 << k,
                table.len()
            )));
        }
        Ok(LutCell { k, table })
    }

    /// Build a cell by sampling a boolean function.
    pub fn from_fn(k: usize, f: impl Fn(&[bool]) -> bool) -> Result<LutCell, MachineError> {
        let mut table = Vec::with_capacity(1 << k);
        for row in 0..(1usize << k) {
            let bits: Vec<bool> = (0..k).map(|b| row >> b & 1 == 1).collect();
            table.push(f(&bits));
        }
        LutCell::new(k, table)
    }

    /// Input arity.
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Truth-table bits (the cell's configuration word, routing excluded).
    pub fn table_bits(&self) -> usize {
        self.table.len()
    }

    /// Evaluate the cell.
    pub fn eval(&self, inputs: &[bool]) -> Result<bool, MachineError> {
        if inputs.len() != self.k {
            return Err(MachineError::config(format!(
                "{}-LUT evaluated with {} inputs",
                self.k,
                inputs.len()
            )));
        }
        let row = inputs
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i));
        Ok(self.table[row])
    }

    /// The raw truth table.
    pub fn table(&self) -> &[bool] {
        &self.table
    }
}

/// Common 2-input tables.
pub mod tables {
    /// AND truth table (inputs LSB-first).
    pub const AND2: [bool; 4] = [false, false, false, true];
    /// OR truth table.
    pub const OR2: [bool; 4] = [false, true, true, true];
    /// XOR truth table.
    pub const XOR2: [bool; 4] = [false, true, true, false];
    /// NAND truth table.
    pub const NAND2: [bool; 4] = [true, true, true, false];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table_lookup() {
        let and = LutCell::new(2, tables::AND2.to_vec()).unwrap();
        assert!(!and.eval(&[false, true]).unwrap());
        assert!(and.eval(&[true, true]).unwrap());
        let xor = LutCell::new(2, tables::XOR2.to_vec()).unwrap();
        assert!(xor.eval(&[true, false]).unwrap());
        assert!(!xor.eval(&[true, true]).unwrap());
    }

    #[test]
    fn from_fn_samples_all_rows() {
        // 3-input majority.
        let maj = LutCell::from_fn(3, |b| {
            (u8::from(b[0]) + u8::from(b[1]) + u8::from(b[2])) >= 2
        })
        .unwrap();
        assert!(maj.eval(&[true, true, false]).unwrap());
        assert!(!maj.eval(&[true, false, false]).unwrap());
        assert_eq!(maj.table_bits(), 8);
    }

    #[test]
    fn bad_shapes_rejected() {
        assert!(LutCell::new(0, vec![]).is_err());
        assert!(LutCell::new(9, vec![false; 512]).is_err());
        assert!(LutCell::new(2, vec![false; 3]).is_err());
        let and = LutCell::new(2, tables::AND2.to_vec()).unwrap();
        assert!(and.eval(&[true]).is_err());
    }

    #[test]
    fn a_lut_can_be_any_function_of_its_arity() {
        // Exhaustive: every 2-input boolean function is implementable.
        for code in 0u8..16 {
            let table: Vec<bool> = (0..4).map(|i| code >> i & 1 == 1).collect();
            let cell = LutCell::new(2, table.clone()).unwrap();
            #[allow(clippy::needless_range_loop)]
            for row in 0..4 {
                let inputs = [row & 1 == 1, row >> 1 & 1 == 1];
                assert_eq!(cell.eval(&inputs).unwrap(), table[row]);
            }
        }
    }
}

//! Universal-flow machines (USP): the LUT fabric that implements either
//! paradigm.
//!
//! [`lut`] defines the cell, [`fabric`] the configurable array with
//! programmable routing and flip-flops, and [`mapper`] the mapping of
//! boolean expressions, a ripple-carry adder (data-flow role) and a
//! program counter (instruction-flow role) onto the same fabric.

pub mod fabric;
pub mod lut;
pub mod mapper;

pub use fabric::{Bitstream, CellConfig, ConfiguredFabric, LutFabric, Source};
pub use lut::LutCell;
pub use mapper::{alu_slice, comparator, map_exprs, program_counter, ripple_adder, BoolExpr};

use skilltax_model::{ArchSpec, Count, Granularity, Link, Relation};

/// A taxonomy-facing wrapper: the USP machine as a whole (fabric plus its
/// structural description).
#[derive(Debug, Clone, Copy)]
pub struct UniversalMachine {
    fabric: LutFabric,
}

impl UniversalMachine {
    /// A universal machine over the given fabric.
    pub fn new(fabric: LutFabric) -> UniversalMachine {
        UniversalMachine { fabric }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> LutFabric {
        self.fabric
    }

    /// The structural [`ArchSpec`]: variable counts, everything crossbar.
    pub fn spec(&self) -> ArchSpec {
        ArchSpec::builder(format!("usp-{}x{}lut", self.fabric.n_cells, self.fabric.k))
            .granularity(Granularity::FineLut)
            .ips(Count::variable())
            .dps(Count::variable())
            .link(Relation::IpIp, Link::crossbar_v_v())
            .link(Relation::IpDp, Link::crossbar_v_v())
            .link(Relation::IpIm, Link::crossbar_v_v())
            .link(Relation::DpDm, Link::crossbar_v_v())
            .link(Relation::DpDp, Link::crossbar_v_v())
            .build_unchecked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_taxonomy::classify;

    #[test]
    fn universal_machine_classifies_as_usp() {
        let m = UniversalMachine::new(LutFabric::new(256, 4, 16));
        let c = classify(&m.spec()).unwrap();
        assert_eq!(c.name().to_string(), "USP");
        assert_eq!(c.serial(), 47);
    }

    #[test]
    fn spec_is_valid_under_hard_validation() {
        let m = UniversalMachine::new(LutFabric::new(16, 2, 4));
        assert!(m.spec().validate().is_ok());
    }
}

//! # skilltax-trends
//!
//! The stand-in for the paper's Fig 1 data source.  The paper compiled
//! publication counts per parallel-computing topic (1995–2010) from the
//! IEEE database; offline we substitute a deterministic generative model —
//! logistic adoption curves per topic with documented parameters plus
//! seeded ±5% noise — that reproduces the *shape* the paper reports (the
//! sharp post-2005 rise of multicore and reconfigurable computing).
//!
//! ```
//! use skilltax_trends::{PublicationDatabase, Topic};
//!
//! let db = PublicationDatabase::default();
//! assert!(db.last_five_year_growth(Topic::Multicore) > 5.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod model;

pub use dataset::{PublicationDatabase, Record, FIRST_YEAR, LAST_YEAR};
pub use model::{LogisticCurve, Topic};

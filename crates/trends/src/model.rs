//! The synthetic bibliometric model behind Fig 1.
//!
//! The paper compiles publication counts per parallel-computing topic from
//! the IEEE database (1995–2010).  That database is not available offline,
//! so we substitute a *documented, deterministic* generative model: each
//! topic follows a logistic adoption curve (slow start, inflection, rapid
//! growth toward a ceiling) plus small seeded noise.  Only the qualitative
//! shape matters for the figure — which topics rise and when — and the
//! parameters below encode exactly the shape the paper describes: research
//! interest "in multicore and reconfigurable computer architectures has
//! increased significantly in the last five years" (2005–2010).

use std::fmt;

/// A logistic publication-count curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticCurve {
    /// Pre-adoption baseline publications per year.
    pub baseline: f64,
    /// Saturation level (publications per year at maturity).
    pub ceiling: f64,
    /// Year of the inflection point (steepest growth).
    pub inflection: f64,
    /// Growth rate (per year) at the inflection.
    pub rate: f64,
}

impl LogisticCurve {
    /// Expected publications in `year` (noise-free).
    pub fn value(&self, year: u16) -> f64 {
        let x = f64::from(year) - self.inflection;
        self.baseline + (self.ceiling - self.baseline) / (1.0 + (-self.rate * x).exp())
    }

    /// Year-over-year growth at `year`.
    pub fn slope(&self, year: u16) -> f64 {
        self.value(year + 1) - self.value(year)
    }
}

/// A research topic tracked by Fig 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Topic {
    /// General parallel-computing publications.
    ParallelComputing,
    /// Multi-core / many-core architectures.
    Multicore,
    /// Reconfigurable computing (architecture-level).
    ReconfigurableComputing,
    /// FPGA devices and design.
    Fpga,
    /// Coarse-grained reconfigurable architectures.
    Cgra,
    /// Parallel programming models.
    ParallelProgramming,
}

impl Topic {
    /// All topics, in legend order.
    pub const ALL: [Topic; 6] = [
        Topic::ParallelComputing,
        Topic::Multicore,
        Topic::ReconfigurableComputing,
        Topic::Fpga,
        Topic::Cgra,
        Topic::ParallelProgramming,
    ];

    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Topic::ParallelComputing => "Parallel Computing",
            Topic::Multicore => "Multicore Architectures",
            Topic::ReconfigurableComputing => "Reconfigurable Computing",
            Topic::Fpga => "FPGA",
            Topic::Cgra => "CGRA",
            Topic::ParallelProgramming => "Parallel Programming",
        }
    }

    /// The documented curve parameters for this topic.
    ///
    /// * Multicore: negligible before 2004 (the term barely existed),
    ///   inflecting sharply around 2007 — the paper's "last five years".
    /// * Reconfigurable computing: steady niche through the 90s, strong
    ///   growth from the mid-2000s.
    /// * FPGA: established since the mid-90s with steady growth.
    /// * CGRA: small absolute numbers, rising late.
    /// * Parallel computing / programming: large established fields with a
    ///   renewed post-2005 rise.
    pub fn curve(&self) -> LogisticCurve {
        match self {
            Topic::ParallelComputing => LogisticCurve {
                baseline: 900.0,
                ceiling: 2_600.0,
                inflection: 2006.5,
                rate: 0.55,
            },
            Topic::Multicore => LogisticCurve {
                baseline: 5.0,
                ceiling: 1_400.0,
                inflection: 2007.0,
                rate: 0.9,
            },
            Topic::ReconfigurableComputing => LogisticCurve {
                baseline: 120.0,
                ceiling: 950.0,
                inflection: 2005.5,
                rate: 0.6,
            },
            Topic::Fpga => LogisticCurve {
                baseline: 300.0,
                ceiling: 1_600.0,
                inflection: 2004.0,
                rate: 0.35,
            },
            Topic::Cgra => LogisticCurve {
                baseline: 2.0,
                ceiling: 160.0,
                inflection: 2006.0,
                rate: 0.7,
            },
            Topic::ParallelProgramming => LogisticCurve {
                baseline: 400.0,
                ceiling: 1_100.0,
                inflection: 2006.0,
                rate: 0.5,
            },
        }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_curve_is_monotone_between_baseline_and_ceiling() {
        for topic in Topic::ALL {
            let curve = topic.curve();
            let mut last = f64::MIN;
            for year in 1990..=2015 {
                let v = curve.value(year);
                assert!(v >= last, "{topic} dips at {year}");
                assert!(
                    v >= curve.baseline * 0.99 && v <= curve.ceiling * 1.01,
                    "{topic} {year}"
                );
                last = v;
            }
        }
    }

    #[test]
    fn multicore_explodes_after_2005() {
        let c = Topic::Multicore.curve();
        assert!(c.value(2000) < 50.0, "{}", c.value(2000));
        assert!(c.value(2010) > 1_000.0, "{}", c.value(2010));
        // Steepest around the inflection.
        assert!(c.slope(2007) > c.slope(2000) * 10.0);
        assert!(c.slope(2007) > c.slope(2013));
    }

    #[test]
    fn the_last_five_years_dominate_for_the_papers_two_topics() {
        // The paper's claim: interest in multicore and reconfigurable
        // architectures rose significantly in 2005-2010.
        for topic in [Topic::Multicore, Topic::ReconfigurableComputing] {
            let c = topic.curve();
            let early: f64 = (1995..2005).map(|y| c.value(y)).sum();
            let late: f64 = (2005..2010).map(|y| c.value(y)).sum();
            assert!(late > early, "{topic}: late {late} vs early {early}");
        }
    }

    #[test]
    fn fpga_is_established_earlier_than_cgra() {
        assert!(Topic::Fpga.curve().value(1998) > 50.0 * Topic::Cgra.curve().value(1998));
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::BTreeSet;
        let labels: BTreeSet<&str> = Topic::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), Topic::ALL.len());
    }
}

//! The generated publication dataset and Fig 1 series.

use skilltax_model::XorShift64;

use crate::model::Topic;

/// First year of the Fig 1 window.
pub const FIRST_YEAR: u16 = 1995;
/// Last year of the Fig 1 window (the paper covers "the last 15 years"
/// from ~2010).
pub const LAST_YEAR: u16 = 2010;

/// One (topic, year) publication count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// The research topic.
    pub topic: Topic,
    /// Publication year.
    pub year: u16,
    /// Number of publications.
    pub count: u32,
}

/// The synthetic stand-in for the IEEE database: deterministic for a given
/// seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicationDatabase {
    records: Vec<Record>,
    seed: u64,
}

impl PublicationDatabase {
    /// Generate the database: logistic expectation plus ±5% seeded noise.
    pub fn generate(seed: u64) -> PublicationDatabase {
        let mut rng = XorShift64::new(seed);
        let mut records = Vec::new();
        for topic in Topic::ALL {
            let curve = topic.curve();
            for year in FIRST_YEAR..=LAST_YEAR {
                let expected = curve.value(year);
                let noise = rng.range_f64(-0.05, 0.05);
                let count = (expected * (1.0 + noise)).round().max(0.0) as u32;
                records.push(Record { topic, year, count });
            }
        }
        PublicationDatabase { records, seed }
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Count for one (topic, year) cell.
    pub fn count(&self, topic: Topic, year: u16) -> Option<u32> {
        self.records
            .iter()
            .find(|r| r.topic == topic && r.year == year)
            .map(|r| r.count)
    }

    /// Per-year series for one topic, in year order.
    pub fn series(&self, topic: Topic) -> Vec<(u16, u32)> {
        self.records
            .iter()
            .filter(|r| r.topic == topic)
            .map(|r| (r.year, r.count))
            .collect()
    }

    /// Total publications for a topic over an inclusive year range.
    pub fn total(&self, topic: Topic, from: u16, to: u16) -> u64 {
        self.records
            .iter()
            .filter(|r| r.topic == topic && (from..=to).contains(&r.year))
            .map(|r| u64::from(r.count))
            .sum()
    }

    /// Growth ratio: publications in the last five years of the window
    /// divided by the five years before them (the paper's observation).
    pub fn last_five_year_growth(&self, topic: Topic) -> f64 {
        let late = self.total(topic, LAST_YEAR - 4, LAST_YEAR) as f64;
        let earlier = self.total(topic, LAST_YEAR - 9, LAST_YEAR - 5) as f64;
        if earlier == 0.0 {
            f64::INFINITY
        } else {
            late / earlier
        }
    }

    /// The complete Fig 1 data: `(topic, series)` for every topic.
    pub fn fig1(&self) -> Vec<(Topic, Vec<(u16, u32)>)> {
        Topic::ALL.iter().map(|&t| (t, self.series(t))).collect()
    }
}

impl Default for PublicationDatabase {
    /// The canonical dataset used by the figure regeneration (seed 2012,
    /// the paper's year).
    fn default() -> Self {
        PublicationDatabase::generate(2012)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(
            PublicationDatabase::generate(7),
            PublicationDatabase::generate(7)
        );
        assert_ne!(
            PublicationDatabase::generate(7).records(),
            PublicationDatabase::generate(8).records()
        );
    }

    #[test]
    fn covers_every_topic_and_year() {
        let db = PublicationDatabase::default();
        let years = usize::from(LAST_YEAR - FIRST_YEAR) + 1;
        assert_eq!(db.records().len(), Topic::ALL.len() * years);
        for topic in Topic::ALL {
            let series = db.series(topic);
            assert_eq!(series.len(), years);
            assert_eq!(series.first().unwrap().0, FIRST_YEAR);
            assert_eq!(series.last().unwrap().0, LAST_YEAR);
        }
    }

    #[test]
    fn noise_stays_within_five_percent_of_the_curve() {
        let db = PublicationDatabase::default();
        for r in db.records() {
            let expected = r.topic.curve().value(r.year);
            let deviation = (f64::from(r.count) - expected).abs();
            assert!(
                deviation <= expected * 0.05 + 1.0,
                "{} {}: {} vs {}",
                r.topic,
                r.year,
                r.count,
                expected
            );
        }
    }

    #[test]
    fn papers_growth_observation_holds_in_the_data() {
        let db = PublicationDatabase::default();
        assert!(db.last_five_year_growth(Topic::Multicore) > 5.0);
        assert!(db.last_five_year_growth(Topic::ReconfigurableComputing) > 1.5);
        // Established fields grow more modestly.
        assert!(db.last_five_year_growth(Topic::Fpga) < 3.0);
    }

    #[test]
    fn fig1_exposes_all_series() {
        let db = PublicationDatabase::default();
        let fig = db.fig1();
        assert_eq!(fig.len(), 6);
        assert!(db.count(Topic::Multicore, 2008).unwrap() > 0);
        assert_eq!(db.count(Topic::Multicore, 1890), None);
    }
}

//! Property tests for the bibliometric model: determinism, bounds, and
//! shape invariants for any seed.

use proptest::prelude::*;

use skilltax_trends::{PublicationDatabase, Topic, FIRST_YEAR, LAST_YEAR};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_seed_is_deterministic(seed in 0u64..10_000) {
        let a = PublicationDatabase::generate(seed);
        let b = PublicationDatabase::generate(seed);
        prop_assert_eq!(a.records(), b.records());
        prop_assert_eq!(a.seed(), seed);
    }

    #[test]
    fn counts_track_their_curve_for_any_seed(seed in 0u64..10_000) {
        let db = PublicationDatabase::generate(seed);
        for r in db.records() {
            let expected = r.topic.curve().value(r.year);
            prop_assert!(
                (f64::from(r.count) - expected).abs() <= expected * 0.05 + 1.0,
                "{} {} deviates",
                r.topic,
                r.year
            );
        }
    }

    #[test]
    fn the_papers_shape_claim_holds_for_any_seed(seed in 0u64..10_000) {
        // Multicore rises far faster in the last five years than FPGA —
        // noise never inverts the ordering.
        let db = PublicationDatabase::generate(seed);
        prop_assert!(
            db.last_five_year_growth(Topic::Multicore)
                > db.last_five_year_growth(Topic::Fpga)
        );
        prop_assert!(db.last_five_year_growth(Topic::Multicore) > 4.0);
    }

    #[test]
    fn totals_are_consistent_with_series(seed in 0u64..10_000, topic_idx in 0usize..6) {
        let topic = Topic::ALL[topic_idx];
        let db = PublicationDatabase::generate(seed);
        let from_series: u64 =
            db.series(topic).iter().map(|(_, c)| u64::from(*c)).sum();
        prop_assert_eq!(db.total(topic, FIRST_YEAR, LAST_YEAR), from_series);
        // Sub-ranges partition the total.
        let mid = (FIRST_YEAR + LAST_YEAR) / 2;
        prop_assert_eq!(
            db.total(topic, FIRST_YEAR, mid) + db.total(topic, mid + 1, LAST_YEAR),
            from_series
        );
    }
}

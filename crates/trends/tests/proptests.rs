//! Property-style tests for the bibliometric model: determinism, bounds,
//! and shape invariants for any seed.
//!
//! These run as deterministic seeded sweeps (`sweep_cases`) instead of
//! `proptest` so the workspace builds hermetically.

use skilltax_model::rng::sweep_cases;
use skilltax_trends::{PublicationDatabase, Topic, FIRST_YEAR, LAST_YEAR};

#[test]
fn any_seed_is_deterministic() {
    sweep_cases(0x7E0, 64, |case, rng| {
        let seed = rng.below(10_000);
        let a = PublicationDatabase::generate(seed);
        let b = PublicationDatabase::generate(seed);
        assert_eq!(a.records(), b.records(), "case {case} seed {seed}");
        assert_eq!(a.seed(), seed);
    });
}

#[test]
fn counts_track_their_curve_for_any_seed() {
    sweep_cases(0x7E1, 64, |case, rng| {
        let seed = rng.below(10_000);
        let db = PublicationDatabase::generate(seed);
        for r in db.records() {
            let expected = r.topic.curve().value(r.year);
            assert!(
                (f64::from(r.count) - expected).abs() <= expected * 0.05 + 1.0,
                "case {case} seed {seed}: {} {} deviates",
                r.topic,
                r.year
            );
        }
    });
}

#[test]
fn the_papers_shape_claim_holds_for_any_seed() {
    sweep_cases(0x7E2, 64, |case, rng| {
        // Multicore rises far faster in the last five years than FPGA —
        // noise never inverts the ordering.
        let seed = rng.below(10_000);
        let db = PublicationDatabase::generate(seed);
        assert!(
            db.last_five_year_growth(Topic::Multicore) > db.last_five_year_growth(Topic::Fpga),
            "case {case} seed {seed}"
        );
        assert!(
            db.last_five_year_growth(Topic::Multicore) > 4.0,
            "case {case} seed {seed}"
        );
    });
}

#[test]
fn totals_are_consistent_with_series() {
    sweep_cases(0x7E3, 64, |case, rng| {
        let seed = rng.below(10_000);
        let topic = *rng.pick(&Topic::ALL);
        let db = PublicationDatabase::generate(seed);
        let from_series: u64 = db.series(topic).iter().map(|(_, c)| u64::from(*c)).sum();
        assert_eq!(
            db.total(topic, FIRST_YEAR, LAST_YEAR),
            from_series,
            "case {case}"
        );
        // Sub-ranges partition the total.
        let mid = (FIRST_YEAR + LAST_YEAR) / 2;
        assert_eq!(
            db.total(topic, FIRST_YEAR, mid) + db.total(topic, mid + 1, LAST_YEAR),
            from_series,
            "case {case}"
        );
    });
}

//! Instruction-flow uni-processors (IUP): classic single-core controllers.

use crate::entry::SurveyEntry;

/// ARM7TDMI — 32-bit RISC microcontroller core (TI TMS470R1A256 flavour).
pub fn arm7tdmi() -> SurveyEntry {
    SurveyEntry::new(
        "ARM7TDMI",
        "1 | 1 | none | 1-1 | 1-1 | 1-1 | none",
        "[10]",
        1994,
        "A 16/32-bit RISC flash microcontroller core: one instruction \
         processor directly coupled to one data processor, with dedicated \
         instruction and data memory paths. The canonical Von Neumann \
         uni-processor of the survey.",
        "IUP",
        0,
        None,
    )
}

/// Atmel AT89C51 — 8-bit 8051-family microcontroller.
pub fn at89c51() -> SurveyEntry {
    SurveyEntry::new(
        "AT89C51",
        "1 | 1 | none | 1-1 | 1-1 | 1-1 | none",
        "[11]",
        1994,
        "An 8-bit microcontroller with 4K bytes of flash: like the ARM7TDMI \
         a plain instruction-flow uni-processor, included to show that the \
         class is bitwidth-agnostic.",
        "IUP",
        0,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniprocessors_classify_as_iup_with_zero_flexibility() {
        for entry in [arm7tdmi(), at89c51()] {
            assert_eq!(entry.classify().unwrap().name().to_string(), "IUP");
            assert_eq!(entry.computed_flexibility(), 0);
            assert!(entry.agrees_with_paper());
        }
    }
}

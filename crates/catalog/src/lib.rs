//! # skilltax-catalog
//!
//! The paper's survey (Section IV, Table III): structural descriptions of
//! all 25 architectures — uni-processors, CGRAs, multicores, dataflow
//! fabrics, spatial arrays and the FPGA — each carrying the Section IV
//! prose, a citation and the paper's printed class/flexibility so the
//! engine's derivations can be validated row by row.
//!
//! ```
//! use skilltax_catalog::{by_name, full_survey};
//!
//! let survey = full_survey();
//! assert_eq!(survey.len(), 25);
//!
//! let morphosys = by_name("MorphoSys").unwrap();
//! assert_eq!(morphosys.classify().unwrap().name().to_string(), "IAP-II");
//! assert_eq!(morphosys.computed_flexibility(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod array_type_ii;
pub mod array_type_iv;
pub mod dataflow;
pub mod entry;
pub mod modern;
pub mod multiprocessors;
pub mod spatial;
pub mod survey;
pub mod uniprocessors;
pub mod universal;

pub use entry::SurveyEntry;
pub use modern::{modern_cases, ModernEntry};
pub use survey::{by_name, full_survey, regenerate_table_iii, SurveyRow};

//! Data-flow multi-processors (DMP-*): fabrics with no instruction
//! processor at all — data tokens carry their own routing/operation.

use crate::entry::SurveyEntry;

/// REDEFINE — runtime-reconfigurable polymorphic ASIC.
pub fn redefine() -> SurveyEntry {
    SurveyEntry::new(
        "Redefine",
        "0 | 64 | none | none | none | 22x1 | 64x64",
        "[30]",
        2009,
        "A static dataflow architecture executing coarse-grained HyperOps \
         on an 8x8 matrix of compute elements joined by a packet-switched \
         NoC; each element holds an ALU, a router and operand storage. A \
         run-time unit supplies compute and transport metadata — there is \
         no instruction processor.",
        "DMP-IV",
        3,
        None,
    )
}

/// Colt — wormhole run-time reconfigurable dataflow fabric.
pub fn colt() -> SurveyEntry {
    SurveyEntry::new(
        "Colt",
        "0 | 16 | none | none | none | 16x6 | 16x16",
        "[31]",
        1996,
        "A 4x4 matrix of data processing elements behind a crossbar; the \
         data stream itself carries routing information and reconfigures \
         the fabric at run time (wormhole reconfiguration). Colt has no \
         internal memory — its six I/O ports can be connected to external \
         memories, hence the 16x6 DP-DM shape.",
        "DMP-IV",
        3,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataflow_machines_classify_as_dmp_iv() {
        for entry in [redefine(), colt()] {
            assert!(entry.spec.is_dataflow(), "{}", entry.name());
            assert_eq!(
                entry.classify().unwrap().name().to_string(),
                "DMP-IV",
                "{}",
                entry.name()
            );
            assert_eq!(entry.computed_flexibility(), 3, "{}", entry.name());
            assert!(entry.agrees_with_paper(), "{}", entry.name());
        }
    }

    #[test]
    fn colt_io_crossbar_is_16_by_6() {
        use skilltax_model::Relation;
        let sw = colt()
            .spec
            .connectivity
            .link(Relation::DpDm)
            .switch()
            .copied()
            .unwrap();
        assert_eq!(sw.crosspoints(), Some(96));
    }
}

//! Array processors of Type II (IAP-II): one host/control IP commanding `n`
//! DPs, with DP–DP crossbar connectivity but direct DP–DM paths.

use crate::entry::SurveyEntry;

/// IMAGINE — the Stanford stream processor.
pub fn imagine() -> SurveyEntry {
    SurveyEntry::new(
        "IMAGINE",
        "1 | 6 | none | 1-6 | 1-1 | 6-1 | 6x6",
        "[12]",
        2002,
        "Stream processor with 6 arithmetic clusters (DPs) controlled by a \
         host processor; the clusters connect to each other and to a \
         multi-ported stream register file through a circuit-switched \
         network.",
        "IAP-II",
        2,
        None,
    )
}

/// MorphoSys — dynamically reconfigurable system-on-chip.
pub fn morphosys() -> SurveyEntry {
    SurveyEntry::new(
        "MorphoSys",
        "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64",
        "[13]",
        1999,
        "An 8x8 fabric of reconfigurable cells (RCs) arranged in rows and \
         columns, driven by a TinyRISC host; RCs connect to each other and \
         stream data through a frame buffer.",
        "IAP-II",
        2,
        None,
    )
}

/// REMARC — reconfigurable multimedia array coprocessor.
pub fn remarc() -> SurveyEntry {
    SurveyEntry::new(
        "REMARC",
        "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64",
        "[14]",
        1998,
        "An 8x8 array of NANO processors, each storing instructions locally \
         while a single global control unit supplies the program counter — \
         a SIMD array despite the distributed instruction storage.",
        "IAP-II",
        2,
        None,
    )
}

/// RICA — the reconfigurable instruction cell array template.
pub fn rica() -> SurveyEntry {
    SurveyEntry::new(
        "RICA",
        "1 | n | none | 1-n | 1-1 | n-1 | nxn",
        "[8]",
        2008,
        "An architectural template generated per application domain: \
         instruction cells (DPs) loosely coupled to data memory through I/O \
         ports and tightly coupled to a RISC control processor. Kept \
         symbolic (`n`) because the instance size is a template parameter.",
        "IAP-II",
        2,
        None,
    )
}

/// PADDI — reconfigurable multiprocessor IC for DSP datapath prototyping.
pub fn paddi() -> SurveyEntry {
    SurveyEntry::new(
        "PADDI",
        "1 | 8 | none | 1-8 | 1-8 | 8-1 | 8x8",
        "[15]",
        1992,
        "Eight execution units connected to each other and the I/O bus \
         through a crossbar; a global instruction sequencer feeds all units \
         in a VLIW fashion.",
        "IAP-II",
        2,
        None,
    )
}

/// Chimaera — reconfigurable functional unit on a host processor.
pub fn chimaera() -> SurveyEntry {
    SurveyEntry::new(
        "Chimaera",
        "1 | n | none | 1-n | 1-1 | n-1 | nxn",
        "[17]",
        2004,
        "A reconfigurable array of FPGA-style 2/3-input lookup tables \
         coupled to a shadow register file; a host processor controls both. \
         The LUT-based array distinguishes it from the other coarse-grain \
         members of the class, but its control organisation is the same.",
        "IAP-II",
        2,
        None,
    )
}

/// ADRES — RISC core plus reconfigurable-cell matrix template.
pub fn adres() -> SurveyEntry {
    SurveyEntry::new(
        "ADRES",
        "1 | 64 | none | 1-64 | 1-1 | 8-1 | 64x64",
        "[18]",
        2005,
        "A RISC processor with an 8x8 reconfigurable-cell fabric; only the \
         first row of cells couples tightly to the multi-ported register \
         file (hence the 8-1 DP-DM link), the rest reach it through a \
         mux-based inter-cell network.",
        "IAP-II",
        2,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_type_ii_arrays_classify_as_iap_ii() {
        for entry in [
            imagine(),
            morphosys(),
            remarc(),
            rica(),
            paddi(),
            chimaera(),
            adres(),
        ] {
            assert_eq!(
                entry.classify().unwrap().name().to_string(),
                "IAP-II",
                "{}",
                entry.name()
            );
            assert_eq!(entry.computed_flexibility(), 2, "{}", entry.name());
            assert!(entry.agrees_with_paper(), "{}", entry.name());
        }
    }

    #[test]
    fn concrete_sizes_match_the_paper() {
        assert_eq!(imagine().spec.dps.value(), Some(6));
        assert_eq!(morphosys().spec.dps.value(), Some(64));
        assert_eq!(paddi().spec.dps.value(), Some(8));
        assert_eq!(rica().spec.dps.value(), None); // template
    }
}

//! Instruction-flow spatial processors (ISP-*): machines whose IPs can
//! connect to other IPs, composing bigger processors out of smaller ones —
//! the classes the paper's IP–IP extension creates.

use crate::entry::SurveyEntry;

/// DRRA — dynamically reconfigurable resource array (the authors' own
/// architecture).
pub fn drra() -> SurveyEntry {
    SurveyEntry::new(
        "DRRA",
        // All switched relations use a sliding window (3 hops left/right,
        // 14 reachable elements), written nx14: a limited crossbar.
        "n | n | nx14 | n-n | n-n | nx14 | nx14",
        "[32]",
        2010,
        "A template of distributed control, memory and datapath resources; \
         every element reaches every other element within 3 hops left or \
         right (a 14-element window). Control elements couple tightly to \
         their local datapath and memory but can talk to other control \
         elements inside the window — IP-IP connectivity, hence spatial.",
        "ISP-IV",
        5,
        None,
    )
}

/// MATRIX — configurable instruction distribution with deployable
/// resources.
pub fn matrix() -> SurveyEntry {
    SurveyEntry::new(
        "Matrix",
        "n | n | nxn | nxn | nxn | nxn | nxn",
        "[33]",
        1996,
        "Every element can be configured as data or instruction storage, \
         register file or datapath resource, communicating via nearest \
         neighbour, length-four bypass and global buses. MATRIX can vary \
         its IP/DP split but cannot implement dataflow machines, so it \
         lands in ISP-XVI rather than USP.",
        "ISP-XVI",
        7,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drra_is_isp_iv() {
        let d = drra();
        let c = d.classify().unwrap();
        assert_eq!(c.name().to_string(), "ISP-IV");
        assert_eq!(c.serial(), 34);
        assert_eq!(d.computed_flexibility(), 5);
        assert!(d.agrees_with_paper());
    }

    #[test]
    fn matrix_is_the_most_flexible_instruction_flow_entry() {
        let m = matrix();
        assert_eq!(m.classify().unwrap().name().to_string(), "ISP-XVI");
        assert_eq!(m.computed_flexibility(), 7);
        assert!(m.agrees_with_paper());
    }

    #[test]
    fn spatial_entries_have_ip_ip_connectivity() {
        use skilltax_model::Relation;
        for entry in [drra(), matrix()] {
            assert!(
                entry.spec.connectivity.link(Relation::IpIp).is_crossbar(),
                "{}",
                entry.name()
            );
        }
    }
}

//! Survey-entry type: one Table III row with its paper-reported claims.

use skilltax_model::{dsl, ArchSpec};
use skilltax_taxonomy::{classify, flexibility_of_spec, Classification, TaxonomyError};

/// One surveyed architecture: the structural description from Table III
/// plus the name/flexibility the paper reports, so the engine's derivations
/// can be checked row by row.
#[derive(Debug, Clone)]
pub struct SurveyEntry {
    /// The structural description (Table III columns IPs..DP-DP plus
    /// Section IV prose as metadata).
    pub spec: ArchSpec,
    /// The taxonomic name printed in Table III (e.g. `"IAP-II"`).
    pub paper_class: &'static str,
    /// The flexibility value printed in Table III.
    pub paper_flexibility: u32,
    /// Documented discrepancy between the paper's tables, if any (the
    /// computed value then follows Table II's scoring, not Table III's
    /// printed number).
    pub erratum: Option<&'static str>,
}

impl SurveyEntry {
    /// Build an entry from the row notation and metadata.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: &str,
        row: &str,
        citation: &'static str,
        year: u16,
        description: &'static str,
        paper_class: &'static str,
        paper_flexibility: u32,
        erratum: Option<&'static str>,
    ) -> SurveyEntry {
        let mut spec = dsl::parse_row(name, row)
            .unwrap_or_else(|e| panic!("catalog row for {name} is malformed: {e}"));
        spec.meta.citation = citation.to_owned();
        spec.meta.year = Some(year);
        spec.meta.description = description.to_owned();
        SurveyEntry {
            spec,
            paper_class,
            paper_flexibility,
            erratum,
        }
    }

    /// Architecture name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Classify the entry with the engine.
    pub fn classify(&self) -> Result<Classification, TaxonomyError> {
        classify(&self.spec)
    }

    /// Compute the flexibility value with the engine (Table II scoring).
    pub fn computed_flexibility(&self) -> u32 {
        flexibility_of_spec(&self.spec)
    }

    /// Does the engine's derivation agree with the paper's printed row?
    /// (Rows with a documented erratum compare against the scoring system,
    /// i.e. they *should* disagree with the printed number.)
    pub fn agrees_with_paper(&self) -> bool {
        let class_ok = self
            .classify()
            .map(|c| c.name().to_string() == self.paper_class)
            .unwrap_or(false);
        let flex = self.computed_flexibility();
        let flex_ok = if self.erratum.is_some() {
            flex != self.paper_flexibility
        } else {
            flex == self.paper_flexibility
        };
        class_ok && flex_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_builder_populates_metadata() {
        let e = SurveyEntry::new(
            "Demo",
            "1 | 64 | none | 1-64 | 1-1 | 64-1 | 64x64",
            "[99]",
            1999,
            "demo machine",
            "IAP-II",
            2,
            None,
        );
        assert_eq!(e.name(), "Demo");
        assert_eq!(e.spec.meta.citation, "[99]");
        assert_eq!(e.spec.meta.year, Some(1999));
        assert!(e.agrees_with_paper());
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_rows_panic_at_construction() {
        let _ = SurveyEntry::new("Bad", "1 | 2 | 3", "[0]", 2000, "", "IUP", 0, None);
    }
}

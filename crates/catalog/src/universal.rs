//! Universal-flow spatial processors (USP): fine-grained fabrics whose
//! cells can become IPs, DPs or memories on reconfiguration.

use crate::entry::SurveyEntry;

/// Generic FPGA (the paper cites Altera's portfolio).
pub fn fpga() -> SurveyEntry {
    SurveyEntry::new(
        "FPGA",
        "v | v | vxv | vxv | vxv | vxv | vxv",
        "[34]",
        2011,
        "Configuration logic blocks (CLBs) implement IPs or DPs as the \
         bitstream dictates; any CLB can connect to any other. The number \
         of IPs and DPs — and the width, depth and bitwidth of every \
         datapath — is decided at configuration time, making the FPGA the \
         only surveyed architecture that can implement both instruction \
         flow and data flow machines.",
        "USP",
        8,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_is_usp_with_maximum_flexibility() {
        let f = fpga();
        assert!(f.spec.is_universal());
        let c = f.classify().unwrap();
        assert_eq!(c.name().to_string(), "USP");
        assert_eq!(c.serial(), 47);
        assert_eq!(f.computed_flexibility(), 8);
        assert!(f.agrees_with_paper());
    }
}

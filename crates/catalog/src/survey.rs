//! The full 25-entry survey (Table III) and its derived regeneration.

use crate::array_type_ii::{adres, chimaera, imagine, morphosys, paddi, remarc, rica};
use crate::array_type_iv::{egra, elm, garp, montium, piperench};
use crate::dataflow::{colt, redefine};
use crate::entry::SurveyEntry;
use crate::multiprocessors::{core2duo, cortex_a9, pact_xpp, paddi2, pleiades, rapid};
use crate::spatial::{drra, matrix};
use crate::uniprocessors::{arm7tdmi, at89c51};
use crate::universal::fpga;

/// All 25 surveyed architectures, in the row order of Table III.
pub fn full_survey() -> Vec<SurveyEntry> {
    vec![
        arm7tdmi(),
        at89c51(),
        imagine(),
        morphosys(),
        remarc(),
        rica(),
        paddi(),
        pact_xpp(),
        chimaera(),
        adres(),
        montium(),
        garp(),
        piperench(),
        egra(),
        elm(),
        paddi2(),
        cortex_a9(),
        core2duo(),
        pleiades(),
        rapid(),
        redefine(),
        colt(),
        drra(),
        matrix(),
        fpga(),
    ]
}

/// Look an entry up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<SurveyEntry> {
    full_survey()
        .into_iter()
        .find(|e| e.name().eq_ignore_ascii_case(name))
}

/// One regenerated Table III row: structure plus the engine's derivations.
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Architecture name.
    pub name: String,
    /// The seven structural columns.
    pub structure: String,
    /// Citation key.
    pub citation: String,
    /// Engine-derived class name.
    pub class: String,
    /// Engine-derived flexibility.
    pub flexibility: u32,
    /// The paper's printed class and flexibility (for comparison columns).
    pub paper: (&'static str, u32),
    /// Erratum note, if the paper's printed row is internally inconsistent.
    pub erratum: Option<&'static str>,
}

/// Regenerate Table III: run the classifier and scorer over every entry.
pub fn regenerate_table_iii() -> Vec<SurveyRow> {
    full_survey()
        .into_iter()
        .map(|entry| {
            let class = entry
                .classify()
                .map(|c| c.name().to_string())
                .unwrap_or_else(|e| format!("<{e}>"));
            SurveyRow {
                name: entry.spec.name.clone(),
                structure: entry.spec.row_notation(),
                citation: entry.spec.meta.citation.clone(),
                class,
                flexibility: entry.computed_flexibility(),
                paper: (entry.paper_class, entry.paper_flexibility),
                erratum: entry.erratum,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_25_entries_in_table_iii_order() {
        let survey = full_survey();
        assert_eq!(survey.len(), 25);
        let names: Vec<&str> = survey.iter().map(|e| e.name()).collect();
        assert_eq!(names[0], "ARM7TDMI");
        assert_eq!(names[7], "PACT XPP");
        assert_eq!(names[24], "FPGA");
    }

    #[test]
    fn every_entry_agrees_with_the_paper() {
        for entry in full_survey() {
            assert!(
                entry.agrees_with_paper(),
                "{}: engine={:?}/{} paper={}/{}",
                entry.name(),
                entry.classify().map(|c| c.name().to_string()),
                entry.computed_flexibility(),
                entry.paper_class,
                entry.paper_flexibility
            );
        }
    }

    #[test]
    fn exactly_one_documented_erratum() {
        let errata: Vec<String> = full_survey()
            .into_iter()
            .filter(|e| e.erratum.is_some())
            .map(|e| e.spec.name)
            .collect();
        assert_eq!(errata, vec!["PACT XPP".to_owned()]);
    }

    #[test]
    fn regenerated_table_matches_paper_classes_row_by_row() {
        for row in regenerate_table_iii() {
            assert_eq!(row.class, row.paper.0, "{}", row.name);
            if row.erratum.is_none() {
                assert_eq!(row.flexibility, row.paper.1, "{}", row.name);
            }
        }
    }

    #[test]
    fn flexibility_ordering_matches_fig_7() {
        // Fig 7's ranking: FPGA (8) highest, Matrix (7) second, DRRA (5,
        // tied with RaPiD) third among the named architectures.
        let rows = regenerate_table_iii();
        let flex = |n: &str| rows.iter().find(|r| r.name == n).unwrap().flexibility;
        assert_eq!(flex("FPGA"), 8);
        assert_eq!(flex("Matrix"), 7);
        assert_eq!(flex("DRRA"), 5);
        for row in &rows {
            if row.name != "FPGA" {
                assert!(row.flexibility < flex("FPGA"), "{}", row.name);
            }
            if row.name != "FPGA" && row.name != "Matrix" {
                assert!(row.flexibility < flex("Matrix"), "{}", row.name);
            }
        }
    }

    #[test]
    fn by_name_lookup_is_case_insensitive() {
        assert!(by_name("morphosys").is_some());
        assert!(by_name("MORPHOSYS").is_some());
        assert!(by_name("Transputer").is_none());
    }

    #[test]
    fn all_entries_have_descriptions_and_citations() {
        for entry in full_survey() {
            assert!(!entry.spec.meta.description.is_empty(), "{}", entry.name());
            assert!(
                entry.spec.meta.citation.starts_with('['),
                "{}",
                entry.name()
            );
            assert!(entry.spec.meta.year.is_some(), "{}", entry.name());
        }
    }

    #[test]
    fn survey_covers_eight_distinct_classes() {
        use std::collections::BTreeSet;
        let classes: BTreeSet<String> = regenerate_table_iii()
            .into_iter()
            .map(|r| r.class)
            .collect();
        let expected: BTreeSet<String> = [
            "IUP", "IAP-II", "IAP-IV", "IMP-I", "IMP-II", "IMP-XIV", "DMP-IV", "ISP-IV", "ISP-XVI",
            "USP",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        assert_eq!(classes, expected);
    }
}

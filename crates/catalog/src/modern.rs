//! Beyond the paper: classifying *post-2012* architectures with the same
//! engine — the predictive use the paper claims for its taxonomy ("this
//! work is also significant for the design of new computer
//! architectures").
//!
//! These entries are **extensions**, not reproductions: the expected
//! class is our own documented analysis, and each entry carries the
//! rationale.  They double as regression tests that the classifier
//! generalises past the paper's survey.

use skilltax_model::{dsl, ArchSpec};
use skilltax_taxonomy::{classify, flexibility_of_spec};

/// A modern (post-paper) classification case.
#[derive(Debug, Clone)]
pub struct ModernEntry {
    /// Structural description.
    pub spec: ArchSpec,
    /// The class our analysis expects.
    pub expected_class: &'static str,
    /// Expected flexibility under the Table II scoring.
    pub expected_flexibility: u32,
    /// Why the structure is what it is.
    pub rationale: &'static str,
}

impl ModernEntry {
    fn new(
        name: &str,
        row: &str,
        year: u16,
        expected_class: &'static str,
        expected_flexibility: u32,
        rationale: &'static str,
    ) -> ModernEntry {
        let mut spec = dsl::parse_row(name, row).expect("modern rows are well formed");
        spec.meta.year = Some(year);
        spec.meta.description = rationale.to_owned();
        ModernEntry {
            spec,
            expected_class,
            expected_flexibility,
            rationale,
        }
    }

    /// Does the engine agree with the documented analysis?
    pub fn engine_agrees(&self) -> bool {
        classify(&self.spec)
            .map(|c| c.name().to_string() == self.expected_class)
            .unwrap_or(false)
            && flexibility_of_spec(&self.spec) == self.expected_flexibility
    }
}

/// A GPU streaming multiprocessor (SIMT): one warp scheduler (IP)
/// broadcasting to 32 CUDA cores with a banked shared memory any lane can
/// address and register shuffles between lanes.
pub fn gpu_sm() -> ModernEntry {
    ModernEntry::new(
        "GPU-SM (SIMT)",
        "1 | 32 | none | 1-32 | 1-1 | 32x32 | 32x32",
        2016,
        "IAP-IV",
        3,
        "SIMT is architecturally a single-instruction array: one scheduler \
         issues to 32 lanes; shared memory is a banked crossbar (any lane, \
         any bank) and warp-shuffle instructions are a DP-DP crossbar — \
         the most flexible array sub-type.",
    )
}

/// A systolic matrix unit (TPU-style): no instruction processors at all;
/// weights/activations flow between neighbouring MACs.
pub fn systolic_mxu() -> ModernEntry {
    ModernEntry::new(
        "Systolic MXU",
        "0 | 256 | none | none | none | 256-256 | none",
        2017,
        "DMP-I",
        1,
        "A systolic array executes on data arrival with no instruction \
         stream (data flow); each MAC's operand paths are fixed \
         nearest-neighbour wires decided at design time, so both data \
         relations are direct: the least flexible data-flow multiprocessor.",
    )
}

/// A many-core server CPU: dozens of cores, private L1/L2 control, one
/// coherent shared memory.
pub fn manycore_cpu() -> ModernEntry {
    ModernEntry::new(
        "Manycore CPU",
        "64 | 64 | none | 64-64 | 64-64 | 64x64 | none",
        2019,
        "IMP-III",
        3,
        "Each core pairs its own front-end (IP) with its own back-end (DP); \
         coherence gives every core access to all memory (DP-DM crossbar) \
         but cores do not exchange operands directly.",
    )
}

/// A tiled research many-core with an operand network between cores.
pub fn tiled_manycore() -> ModernEntry {
    ModernEntry::new(
        "Tiled manycore (NoC)",
        "16 | 16 | none | 16-16 | 16-16 | 16x16 | 16x16",
        2015,
        "IMP-IV",
        4,
        "Tiles are full cores on a packet-switched NoC carrying both memory \
         traffic and direct core-to-core operand messages: crossbar-class \
         DP-DM and DP-DP.",
    )
}

/// A vector engine: one scalar control processor, long-vector lanes over
/// a banked gather/scatter memory system, no inter-lane exchange.
pub fn vector_engine() -> ModernEntry {
    ModernEntry::new(
        "Vector engine",
        "1 | 32 | none | 1-32 | 1-1 | 32x32 | none",
        2018,
        "IAP-III",
        2,
        "Classic vector architecture: one instruction stream, gather/ \
         scatter reaches any bank (DP-DM crossbar), lanes stay isolated.",
    )
}

/// A modern FPGA SoC fabric (still the universal class).
pub fn fpga_soc() -> ModernEntry {
    ModernEntry::new(
        "FPGA SoC fabric",
        "v | v | vxv | vxv | vxv | vxv | vxv",
        2020,
        "USP",
        8,
        "LUT fabrics remain role-exchangeable: the class is stable across \
         a decade of process nodes.",
    )
}

/// All modern cases.
pub fn modern_cases() -> Vec<ModernEntry> {
    vec![
        gpu_sm(),
        systolic_mxu(),
        manycore_cpu(),
        tiled_manycore(),
        vector_engine(),
        fpga_soc(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_engine_agrees_with_every_documented_analysis() {
        for case in modern_cases() {
            assert!(
                case.engine_agrees(),
                "{}: expected {}/{} got {:?}/{}",
                case.spec.name,
                case.expected_class,
                case.expected_flexibility,
                classify(&case.spec).map(|c| c.name().to_string()),
                flexibility_of_spec(&case.spec)
            );
        }
    }

    #[test]
    fn modern_cases_span_both_paradigms() {
        let cases = modern_cases();
        assert!(cases.iter().any(|c| c.spec.is_dataflow()));
        assert!(cases
            .iter()
            .any(|c| !c.spec.is_dataflow() && !c.spec.is_universal()));
        assert!(cases.iter().any(|c| c.spec.is_universal()));
    }

    #[test]
    fn simt_and_vector_differ_exactly_in_the_lane_exchange() {
        use skilltax_taxonomy::compare_names;
        let gpu = classify(&gpu_sm().spec).unwrap().name();
        let vec = classify(&vector_engine().spec).unwrap().name();
        let cmp = compare_names(gpu, vec);
        assert!(cmp.same_machine && cmp.same_processing);
        assert_eq!(
            cmp.only_in_a,
            vec![skilltax_model::Relation::DpDp],
            "the GPU's extra crossbar is the warp shuffle"
        );
    }

    #[test]
    fn systolic_array_is_less_flexible_than_every_surveyed_cgra() {
        let systolic = flexibility_of_spec(&systolic_mxu().spec);
        for entry in crate::full_survey() {
            if entry.spec.is_dataflow() {
                assert!(systolic < entry.computed_flexibility(), "{}", entry.name());
            }
        }
    }

    #[test]
    fn every_case_documents_its_rationale_and_year() {
        for case in modern_cases() {
            assert!(!case.rationale.is_empty());
            assert!(case.spec.meta.year.unwrap() > 2012, "{}", case.spec.name);
        }
    }
}

//! Instruction-flow multi-processors (IMP-*): several IPs, several DPs, no
//! IP–IP composition.

use crate::entry::SurveyEntry;

/// PADDI-2 — data-driven multiprocessor IC for DSP.
pub fn paddi2() -> SurveyEntry {
    SurveyEntry::new(
        "PADDI-2",
        "48 | 48 | none | 48-48 | 48-48 | 48-48 | 48-48",
        "[25]",
        1995,
        "48 processing elements, each with its own local control unit \
         (IP) tightly coupled to its datapath and local memory, joined by \
         a hierarchical interconnection network. All relations are direct, \
         so despite the 48-way parallelism the organisation is the least \
         flexible multiprocessor shape.",
        "IMP-I",
        2,
        None,
    )
}

/// ARM Cortex-A9 quad-core.
pub fn cortex_a9() -> SurveyEntry {
    SurveyEntry::new(
        "Cortex-A9",
        "4 | 4 | none | 4-4 | 4-4 | 4-4 | none",
        "[26]",
        2009,
        "Quad-core application processor: four IP/DP pairs working in \
         parallel, each pair a conventional core — separate Von Neumann \
         machines in the taxonomy's terms.",
        "IMP-I",
        2,
        None,
    )
}

/// Intel Core 2 Duo.
pub fn core2duo() -> SurveyEntry {
    SurveyEntry::new(
        "Core2Duo",
        "2 | 2 | none | 2-2 | 2-2 | 2-2 | none",
        "[27]",
        2008,
        "Dual-core desktop processor: two IPs directly connected to two \
         DPs working in parallel.",
        "IMP-I",
        2,
        None,
    )
}

/// Pleiades — heterogeneous reconfigurable DSP (Berkeley).
pub fn pleiades() -> SurveyEntry {
    SurveyEntry::new(
        "Pleiades",
        "n | n | none | n-n | n-n | n-1 | nxn",
        "[28]",
        1997,
        "A host processor surrounded by satellite processors connected \
         through a circuit-switched network; satellites keep direct memory \
         access while talking to each other through the switched fabric.",
        "IMP-II",
        3,
        None,
    )
}

/// PACT XPP — self-reconfigurable data processing array.
pub fn pact_xpp() -> SurveyEntry {
    SurveyEntry::new(
        "PACT XPP",
        "n | n | none | n-n | n-n | n-n | nxn",
        "[16]",
        2003,
        "A self-reconfigurable array of processing array elements with \
         local control, connected by a packet-oriented network — an IMP-II \
         organisation like Pleiades.",
        "IMP-II",
        2,
        Some(
            "Table III prints flexibility 2 for PACT XPP, but Table II \
             assigns IMP-II the value 3 (and the structurally identical \
             Pleiades row is printed as 3). The scoring system gives 3: \
             two n-counts plus one crossbar.",
        ),
    )
}

/// RaPiD — reconfigurable pipelined datapath.
pub fn rapid() -> SurveyEntry {
    SurveyEntry::new(
        "RaPiD",
        // The paper uses a second symbol m for the functional-unit count;
        // structurally m is another design-time constant, so the model's
        // single symbolic n captures the same class and score.
        "n | n | none | nxn | nxn | n-1 | nxn",
        "[29]",
        1999,
        "A row of functional units joined by a bus-based interconnection \
         network; instruction processors drive the units through the same \
         kind of bus network used for data, so both IP-DP and IP-IM are \
         switched. The buses do not scale, which the paper notes as the \
         architecture's limitation.",
        "IMP-XIV",
        5,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imp_i_machines_classify_identically() {
        for entry in [paddi2(), cortex_a9(), core2duo()] {
            assert_eq!(
                entry.classify().unwrap().name().to_string(),
                "IMP-I",
                "{}",
                entry.name()
            );
            assert_eq!(entry.computed_flexibility(), 2, "{}", entry.name());
            assert!(entry.agrees_with_paper(), "{}", entry.name());
        }
    }

    #[test]
    fn pleiades_is_imp_ii_with_flexibility_3() {
        let p = pleiades();
        assert_eq!(p.classify().unwrap().name().to_string(), "IMP-II");
        assert_eq!(p.computed_flexibility(), 3);
        assert!(p.agrees_with_paper());
    }

    #[test]
    fn pact_xpp_erratum_is_detected() {
        // Structurally IMP-II; the scoring system gives 3; the paper's
        // Table III prints 2 — a documented internal inconsistency.
        let x = pact_xpp();
        assert_eq!(x.classify().unwrap().name().to_string(), "IMP-II");
        assert_eq!(x.computed_flexibility(), 3);
        assert_ne!(x.computed_flexibility(), x.paper_flexibility);
        assert!(x.erratum.is_some());
        assert!(x.agrees_with_paper()); // erratum-aware agreement
    }

    #[test]
    fn rapid_lands_in_imp_xiv() {
        let r = rapid();
        let c = r.classify().unwrap();
        assert_eq!(c.name().to_string(), "IMP-XIV");
        assert_eq!(c.serial(), 28);
        assert_eq!(r.computed_flexibility(), 5);
        assert!(r.agrees_with_paper());
    }
}

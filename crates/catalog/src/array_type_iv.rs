//! Array processors of Type IV (IAP-IV): crossbars on both the DP–DM and
//! DP–DP relations — the most flexible array organisation.

use crate::entry::SurveyEntry;

/// MONTIUM — coarse-grained reconfigurable processor tile (U. Twente).
pub fn montium() -> SurveyEntry {
    SurveyEntry::new(
        "Montium",
        "1 | 5 | none | 1-5 | 1-1 | 5x10 | 5x5",
        "[19]",
        2004,
        "A tile of 5 datapath units connected to 10 memory banks through a \
         full circuit-switched network; a sequencer drives datapaths, \
         interconnect and memories in a VLIW fashion.",
        "IAP-IV",
        3,
        None,
    )
}

/// GARP — MIPS core with a row-organised reconfigurable fabric.
pub fn garp() -> SurveyEntry {
    SurveyEntry::new(
        "GARP",
        // The paper writes the DP count as 24xn (23 2-bit logic elements
        // plus control per row, n rows) and the DP-side switches as
        // (24n)x1 and (24n)x(24n); our extent notation spells 24n as 24xn.
        "1 | 24xn | none | 1-24xn | 1-1 | 24xnx1 | 24xnx24xn",
        "[20]",
        2000,
        "A MIPS processor tightly coupled to a reconfigurable fabric of \
         rows, each with about two dozen 2-bit logic elements; elements \
         compose into wider datapaths and are loosely coupled to memory.",
        "IAP-IV",
        3,
        None,
    )
}

/// PipeRench — pipelined reconfigurable coprocessor for streaming media.
pub fn piperench() -> SurveyEntry {
    SurveyEntry::new(
        "Piperench",
        "1 | n | none | 1-n | 1-1 | nx1 | nxn",
        "[21]",
        1999,
        "Rows (stripes) of processing elements joined by horizontal and \
         vertical buses; a single input controller feeds the fabric from \
         an input/output FIFO, virtualising pipeline stages across the \
         physical stripes.",
        "IAP-IV",
        3,
        None,
    )
}

/// EGRA — expression-grained reconfigurable array template.
pub fn egra() -> SurveyEntry {
    SurveyEntry::new(
        "EGRA",
        "1 | n | none | 1-n | 1-1 | nxn | nxn",
        "[23]",
        2011,
        "An architectural template placing ALU, multiplier and memory \
         blocks in rows and columns, connected by nearest-neighbour, \
         vertical and horizontal buses; an external controller drives each \
         reconfigurable ALU cluster. Cell mix and count are template \
         parameters, hence the symbolic n.",
        "IAP-IV",
        3,
        None,
    )
}

/// ELM — energy-efficient embedded processor (Stanford).
pub fn elm() -> SurveyEntry {
    SurveyEntry::new(
        "ELM",
        "1 | 2 | none | 1-2 | 1-1 | 2x2 | 2x2",
        "[24]",
        2008,
        "An energy-focused embedded architecture: a small ensemble of \
         datapaths with switched access to operand registers and memory, \
         under one instruction sequencer.",
        "IAP-IV",
        3,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_model::Count;

    #[test]
    fn all_type_iv_arrays_classify_as_iap_iv() {
        for entry in [montium(), garp(), piperench(), egra(), elm()] {
            assert_eq!(
                entry.classify().unwrap().name().to_string(),
                "IAP-IV",
                "{}",
                entry.name()
            );
            assert_eq!(entry.computed_flexibility(), 3, "{}", entry.name());
            assert!(entry.agrees_with_paper(), "{}", entry.name());
        }
    }

    #[test]
    fn garp_uses_the_scaled_symbolic_count() {
        let g = garp();
        assert_eq!(g.spec.dps, Count::scaled_n(24));
        // With n = 4 rows, the fabric has 96 logic elements.
        assert_eq!(g.spec.dps.value_with_n(4), Some(96));
    }

    #[test]
    fn montium_memory_crossbar_is_asymmetric() {
        use skilltax_model::Relation;
        let m = montium();
        let sw = m
            .spec
            .connectivity
            .link(Relation::DpDm)
            .switch()
            .copied()
            .unwrap();
        assert_eq!(sw.crosspoints(), Some(50)); // 5 DPs x 10 memories
    }
}

//! Bounded-memory discipline for the pooled request path.
//!
//! The service's single-core simulate tier must be **allocation-free in
//! steady state**: the pool hands out a reset machine, the request token
//! is installed by cloning an `Arc` (a refcount bump), the spin program
//! comes out of the engine's `Arc` cache, and the run loop itself never
//! touches the heap.  Mirroring the machine crate's `shard_alloc` suite,
//! a counting global allocator pins this down two ways: repeated warm
//! requests allocate *zero* bytes, and quadrupling the work per request
//! does not change the allocation count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skilltax_machine::CancelToken;
use skilltax_service::{Engine, EngineConfig, JobKind, JobOutcome, JobRequest, Scheduler};

/// The system allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Delegates every call to `System` verbatim and only adds a relaxed
// counter bump on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn simulate(iters: i64) -> JobRequest {
    JobRequest {
        tenant: "alloc".into(),
        kind: JobKind::Simulate {
            cores: 1,
            iters,
            scheduler: Scheduler::Event,
            fault_seed: None,
        },
        deadline_cycles: None,
    }
}

/// Allocations attributable to executing one warm pooled request.
fn allocs_for(engine: &Engine, request: &JobRequest, cancel: &CancelToken) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let outcome = engine.execute(request, cancel);
    let after = ALLOCS.load(Ordering::Relaxed);
    match outcome {
        JobOutcome::Completed {
            stats: Some(stats), ..
        } => assert!(stats.cycles > 0),
        other => panic!("pooled simulate failed: {other:?}"),
    }
    after - before
}

#[test]
fn warm_pooled_requests_allocate_nothing() {
    let engine = Engine::new(EngineConfig::default());
    engine.pool().prewarm(1);
    let cancel = CancelToken::new();
    let short = simulate(400);
    let long = simulate(1_600);
    // Warm up: program cache entries, request construction, lazy statics.
    for _ in 0..3 {
        allocs_for(&engine, &short, &cancel);
        allocs_for(&engine, &long, &cancel);
    }
    let warm_short = allocs_for(&engine, &short, &cancel);
    let warm_long = allocs_for(&engine, &long, &cancel);
    assert_eq!(
        warm_short, 0,
        "a warm pooled request touched the heap ({warm_short} allocations)"
    );
    assert_eq!(
        warm_short, warm_long,
        "allocation count grew with work per request"
    );
    assert_eq!(
        engine.pool().cold_builds(),
        0,
        "the prewarmed pool never cold-builds"
    );
}

#[test]
fn deadline_requests_cost_constant_allocations() {
    // A per-request deadline needs a fresh token per request (one Arc),
    // but the cost must not scale with the work the request does.
    let engine = Engine::new(EngineConfig::default());
    engine.pool().prewarm(1);
    let with_deadline = |iters: i64| JobRequest {
        deadline_cycles: Some(50),
        ..simulate(iters)
    };
    let run = |iters: i64| {
        let cancel = CancelToken::new();
        let before = ALLOCS.load(Ordering::Relaxed);
        let outcome = engine.execute(&with_deadline(iters), &cancel);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert!(
            matches!(outcome, JobOutcome::Cancelled { at_cycle: 50, .. }),
            "{outcome:?}"
        );
        after - before
    };
    for _ in 0..3 {
        run(4_000);
        run(16_000);
    }
    assert_eq!(
        run(4_000),
        run(16_000),
        "deadline-request allocations grew with work per request"
    );
}

//! Golden-file snapshot of the Prometheus exposition the service
//! renders for a hand-constructed metrics state, plus structural checks
//! (name legality, bucket monotonicity) over the real document — the
//! contract a scraper depends on.
//!
//! Refresh after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p skilltax-service prometheus` (twice:
//! `include_str!` inlines at compile time).

use skilltax_service::{prometheus_text, ServiceMetrics};

fn sample_metrics() -> ServiceMetrics {
    let mut m = ServiceMetrics::default();
    m.submitted = 12;
    m.admitted = 9;
    m.rejected_queue_full = 1;
    m.rejected_quota = 1;
    m.rejected_oversized = 1;
    m.outcomes.insert("completed", 7);
    m.outcomes.insert("timed-out", 1);
    m.in_flight = 1;
    m.peak_depth = 4;
    m.per_tenant.insert("acme".into(), (5, 4));
    // A hostile tenant id: quote, backslash and newline must all be
    // escaped or the line-oriented format is corrupted.
    m.per_tenant.insert("evil\"corp\\x\n".into(), (4, 3));
    m.trace_events_dropped = 3;
    for wait_ms in [0, 1, 3, 900] {
        m.queue_wait_ms.record(wait_ms);
    }
    for cycles in [64, 100_000] {
        m.run_cycles.record(cycles);
    }
    m
}

#[test]
fn the_exposition_matches_the_golden_file() {
    let rendered = prometheus_text(&sample_metrics());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom"),
            &rendered,
        )
        .expect("write golden");
    }
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, golden,
        "exposition drifted; UPDATE_GOLDEN=1 refreshes after an intentional change"
    );
}

#[test]
fn every_emitted_name_and_label_line_is_legal() {
    let doc = prometheus_text(&sample_metrics());
    fn legal_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }
    for line in doc.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let keyword = words.next().unwrap_or_default();
            assert!(matches!(keyword, "HELP" | "TYPE"), "{line}");
            assert!(legal_name(words.next().unwrap_or_default()), "{line}");
            continue;
        }
        // Sample line: name[{labels}] value — name up to '{' or space.
        let name_end = line.find(['{', ' ']).expect("sample has a value");
        assert!(legal_name(&line[..name_end]), "{line}");
        // The value (after the last space outside braces) parses.
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
    }
}

#[test]
fn histogram_bucket_series_are_cumulative_and_end_at_inf() {
    let doc = prometheus_text(&sample_metrics());
    for family in ["skilltax_queue_wait_ms", "skilltax_run_cycles"] {
        let prefix = format!("{family}_bucket{{le=\"");
        let counts: Vec<u64> = doc
            .lines()
            .filter(|l| l.starts_with(&prefix))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty(), "no buckets for {family}");
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "{family} buckets not monotone: {counts:?}"
        );
        let inf_line = doc
            .lines()
            .filter(|l| l.starts_with(&prefix))
            .next_back()
            .unwrap();
        assert!(inf_line.contains("le=\"+Inf\""), "{inf_line}");
        let count_line = doc
            .lines()
            .find(|l| l.starts_with(&format!("{family}_count")))
            .unwrap();
        assert_eq!(
            counts.last().copied().unwrap(),
            count_line
                .rsplit(' ')
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap(),
            "+Inf bucket must equal _count for {family}"
        );
    }
}

//! The chaos soak as an integration gate: a seeded hostile tenant mix
//! against a real service, with every invariant a *reported* violation.
//!
//! The headline assertion is worker-count independence: because the
//! harness scripts its virtual clock, drains between phases, and
//! freezes dispatch while measuring shedding, the entire report —
//! admissions, rejections by kind, outcomes by label, per-tenant
//! ledgers, peak depth — is bit-identical whether the service runs one
//! worker or eight.  That is the service-level twin of the machine
//! crate's scheduler-identity contract.

use skilltax_service::{run_chaos, ChaosConfig};

#[test]
fn the_soak_passes_and_exercises_every_rejection_path() {
    let report = run_chaos(&ChaosConfig {
        rounds: 6,
        ..ChaosConfig::default()
    });
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.admitted > 0);
    // The hostile cast really did get refused in a typed way.
    assert!(report.rejections.contains_key("oversized"), "{report:?}");
    assert!(report.rejections.contains_key("queue-full"), "{report:?}");
    // And the admitted work really did hit the typed terminal outcomes.
    assert!(report.outcomes.contains_key("completed"), "{report:?}");
    assert!(report.outcomes.contains_key("cancelled"), "{report:?}");
    // The bounded queue stayed bounded, and was actually filled.
    assert_eq!(report.peak_depth, ChaosConfig::default().queue_capacity);
}

#[test]
fn the_report_is_identical_across_worker_counts() {
    let run = |workers: usize| {
        run_chaos(&ChaosConfig {
            rounds: 6,
            workers,
            ..ChaosConfig::default()
        })
    };
    let base = run(1);
    assert!(base.passed(), "violations: {:#?}", base.violations);
    for workers in [2usize, 8] {
        let report = run(workers);
        assert_eq!(
            base, report,
            "chaos report diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn the_report_replays_bit_identically_for_a_fixed_seed() {
    let config = ChaosConfig {
        rounds: 4,
        seed: 0xDEAD_BEEF,
        ..ChaosConfig::default()
    };
    assert_eq!(run_chaos(&config), run_chaos(&config));
}

#[test]
fn different_seeds_still_satisfy_the_invariants() {
    for seed in [1u64, 7, 42] {
        let report = run_chaos(&ChaosConfig {
            rounds: 3,
            seed,
            ..ChaosConfig::default()
        });
        assert!(
            report.passed(),
            "seed {seed} violations: {:#?}",
            report.violations
        );
    }
}

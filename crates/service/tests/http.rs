//! End-to-end tests of the hand-rolled HTTP front end over a real
//! loopback socket: happy-path jobs, typed 4xx mappings with
//! `Retry-After`, header/body caps, and the slow-loris defences.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use skilltax_service::{serve, HttpConfig, Service, ServiceConfig};

fn start(queue: usize, workers: usize) -> (Arc<Service>, skilltax_service::HttpServer) {
    let service = Arc::new(Service::start(ServiceConfig {
        queue_capacity: queue,
        workers,
        ..ServiceConfig::default()
    }));
    let server = serve(
        Arc::clone(&service),
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            max_header_bytes: 2048,
            max_body_bytes: 4096,
            ..HttpConfig::default()
        },
    )
    .expect("bind loopback");
    (service, server)
}

/// Send raw bytes, read the whole response (the server always closes).
fn roundtrip(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn post_jobs(addr: SocketAddr, body: &str) -> String {
    roundtrip(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn a_job_round_trips_to_a_completed_outcome() {
    let (_service, server) = start(8, 2);
    let response = post_jobs(
        server.local_addr(),
        "tenant=acme&kind=simulate&cores=1&iters=50",
    );
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("\"outcome\":\"completed\""), "{response}");
    assert!(response.contains("\"cycles\":"), "{response}");
}

#[test]
fn classify_and_metrics_and_health_respond() {
    let (_service, server) = start(8, 2);
    let addr = server.local_addr();
    let response = post_jobs(
        addr,
        "tenant=acme&kind=classify&name=SIMD&row=1 %7C 16 %7C none %7C none %7C 1-n %7C none %7C none",
    );
    assert!(response.contains("\"outcome\":\"completed\""), "{response}");
    assert!(response.contains("class"), "{response}");
    let health = roundtrip(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(health.contains("\"ok\":true"), "{health}");
    let metrics = roundtrip(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(metrics.contains("\"submitted\":"), "{metrics}");
}

/// The fleet-backed Monte-Carlo fault study end to end: the job routes
/// through the structure-of-arrays `ArrayFleet` batch executor, and the
/// same request is deterministic — two runs return byte-identical
/// bodies (seeded fault plans, no wall-clock in the outcome).
#[test]
fn faultsweep_round_trips_deterministically() {
    let (_service, server) = start(8, 2);
    let addr = server.local_addr();
    let body = "tenant=lab&kind=faultsweep&subtype=III&lanes=4&seeds=16\
                &fault_seed=9&stall_ppm=200000&flip_ppm=50000";
    let first = post_jobs(addr, body);
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    assert!(first.contains("\"outcome\":\"completed\""), "{first}");
    assert!(first.contains("faultsweep IAP-III"), "{first}");
    assert!(first.contains("16 seeds"), "{first}");
    assert!(first.contains("faults injected"), "{first}");
    assert!(first.contains("\"cycles\":"), "{first}");
    let second = post_jobs(addr, body);
    let json = |resp: &str| resp.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    assert_eq!(json(&first), json(&second), "fault study must be seeded");

    // Typed rejections: an unknown array class is a 400, a fault rate
    // above one (10^6 ppm) is a 413 with the offending field named.
    let response = post_jobs(addr, "tenant=lab&kind=faultsweep&subtype=IX");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(
        response.contains("\"rejected\":\"malformed\""),
        "{response}"
    );
    let response = post_jobs(addr, "tenant=lab&kind=faultsweep&flip_ppm=1500000");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    assert!(
        response.contains("\"rejected\":\"oversized\"") && response.contains("flip_ppm"),
        "{response}"
    );
}

#[test]
fn malformed_and_oversized_map_to_typed_4xx() {
    let (_service, server) = start(8, 1);
    let addr = server.local_addr();
    let response = post_jobs(addr, "tenant=t&kind=warp");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(
        response.contains("\"rejected\":\"malformed\""),
        "{response}"
    );
    let response = post_jobs(addr, "tenant=t&kind=simulate&cores=100000");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    assert!(
        response.contains("\"rejected\":\"oversized\""),
        "{response}"
    );
    let response = roundtrip(addr, "GET /nowhere HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
}

#[test]
fn a_full_queue_is_429_with_a_retry_after_header() {
    let (service, server) = start(2, 1);
    service.pause();
    let addr = server.local_addr();
    // Fill the queue directly (paused dispatch keeps it full).
    for _ in 0..2 {
        let request =
            skilltax_service::proto::parse_request("tenant=t&kind=simulate&iters=10").unwrap();
        service.submit(0, request).unwrap();
    }
    let response = post_jobs(addr, "tenant=t&kind=simulate&iters=10");
    assert!(response.starts_with("HTTP/1.1 429"), "{response}");
    assert!(response.contains("Retry-After:"), "{response}");
    assert!(
        response.contains("\"rejected\":\"queue-full\""),
        "{response}"
    );
    service.resume();
}

#[test]
fn slow_loris_headers_time_out_without_blocking_real_clients() {
    let (_service, server) = start(8, 1);
    let addr = server.local_addr();
    // The loris: opens a connection and sends half a request line, then
    // stalls.  Its connection thread must answer 408 on its own timeout.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris.write_all(b"POST /jobs HTTP/1.1\r\nContent-").unwrap();
    // Meanwhile a well-behaved client gets served immediately.
    let response = post_jobs(addr, "tenant=polite&kind=simulate&iters=20");
    assert!(response.contains("\"outcome\":\"completed\""), "{response}");
    // Now collect the loris's fate: a typed 408 once the read times out.
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut fate = String::new();
    loris.read_to_string(&mut fate).expect("read loris fate");
    assert!(fate.starts_with("HTTP/1.1 408"), "{fate}");
}

#[test]
fn slow_loris_bodies_time_out_too() {
    let (_service, server) = start(8, 1);
    let mut loris = TcpStream::connect(server.local_addr()).expect("connect");
    // Full header promising a body that never arrives.
    loris
        .write_all(b"POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 500\r\n\r\ntenant=")
        .unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut fate = String::new();
    loris.read_to_string(&mut fate).expect("read fate");
    assert!(fate.starts_with("HTTP/1.1 408"), "{fate}");
}

#[test]
fn oversized_heads_and_bodies_are_capped() {
    let (_service, server) = start(8, 1);
    let addr = server.local_addr();
    // A header block that never ends and exceeds the cap.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let huge = format!("POST /jobs HTTP/1.1\r\nX-Pad: {}\r\n", "a".repeat(4000));
    stream.write_all(huge.as_bytes()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");
    // A declared body over the cap is refused before it is read.
    let response = roundtrip(
        addr,
        "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 999999\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
}

#[test]
fn malformed_content_length_is_rejected_not_defaulted() {
    let (_service, server) = start(8, 1);
    let addr = server.local_addr();
    // Before the fix these all fell through `parse().ok()` to a silent
    // zero-length body; now each is an explicit 400.
    for bad in [
        "Content-Length: abc",
        "Content-Length: -5",
        "Content-Length: 1x",
        "Content-Length:",
        "Content-Length: 99999999999999999999999999",
        "Content-Length: 7\r\nContent-Length: 9",
    ] {
        let response = roundtrip(
            addr,
            &format!("POST /jobs HTTP/1.1\r\nHost: t\r\n{bad}\r\n\r\nbody"),
        );
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "{bad:?} -> {response}"
        );
        assert!(response.contains("Content-Length"), "{bad:?} -> {response}");
    }
    // Duplicated but *identical* declarations stay acceptable.
    let body = "tenant=t&kind=simulate&iters=10";
    let response = roundtrip(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {n}\r\nContent-Length: {n}\r\n\r\n{body}",
            n = body.len()
        ),
    );
    assert!(response.contains("\"outcome\":\"completed\""), "{response}");
}

/// A perf stub: enough to prove the front end routes `/perf/*` through
/// a mounted [`skilltax_service::PerfSource`].
struct StubPerf;

impl skilltax_service::PerfSource for StubPerf {
    fn benchmarks(&self, _label: Option<&str>) -> Result<String, skilltax_service::PerfError> {
        Ok("{\"labels\":[\"stub\"]}".into())
    }

    fn trajectory(
        &self,
        _label: Option<&str>,
        bench: &str,
        _counter: &str,
    ) -> Result<String, skilltax_service::PerfError> {
        if bench == "ghost" {
            return Err(skilltax_service::PerfError::NotFound(
                "no benchmark 'ghost'".into(),
            ));
        }
        Ok(format!("{{\"bench\":\"{bench}\"}}"))
    }

    fn compare(
        &self,
        _label: Option<&str>,
        from: &str,
        to: &str,
    ) -> Result<String, skilltax_service::PerfError> {
        Ok(format!("{{\"from\":\"{from}\",\"to\":\"{to}\"}}"))
    }
}

#[test]
fn perf_endpoints_route_through_a_mounted_source() {
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = skilltax_service::serve_with_perf(
        Arc::clone(&service),
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            ..HttpConfig::default()
        },
        Some(Arc::new(StubPerf)),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let response = roundtrip(addr, "GET /perf/benchmarks HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("\"stub\""), "{response}");
    let response = roundtrip(
        addr,
        "GET /perf/trajectory?bench=machine%2Fx&counter=cycles HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert!(response.contains("machine/x"), "{response}");
    let response = roundtrip(
        addr,
        "GET /perf/trajectory?bench=ghost&counter=cycles HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    let response = roundtrip(addr, "GET /perf/compare?from=a HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    let response = roundtrip(addr, "POST /perf/compare HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");
}

#[test]
fn perf_routes_without_a_mounted_store_are_404() {
    let (_service, server) = start(8, 1);
    let response = roundtrip(
        server.local_addr(),
        "GET /perf/benchmarks HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    assert!(response.contains("no perf store"), "{response}");
}

#[test]
fn metrics_speak_prometheus_on_request_and_json_by_default() {
    let (_service, server) = start(8, 2);
    let addr = server.local_addr();
    let response = post_jobs(addr, "tenant=acme&kind=simulate&cores=1&iters=50");
    assert!(response.contains("\"outcome\":\"completed\""), "{response}");
    // Default stays JSON so existing scrapers keep working.
    let json = roundtrip(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(json.contains("Content-Type: application/json"), "{json}");
    assert!(json.contains("\"trace_events_dropped\":"), "{json}");
    // The query string opts into the exposition format…
    let prom = roundtrip(
        addr,
        "GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert!(prom.starts_with("HTTP/1.1 200 OK"), "{prom}");
    assert!(
        prom.contains("Content-Type: text/plain; version=0.0.4"),
        "{prom}"
    );
    assert!(
        prom.contains("# TYPE skilltax_jobs_submitted_total counter"),
        "{prom}"
    );
    assert!(prom.contains("skilltax_jobs_submitted_total 1"), "{prom}");
    assert!(
        prom.contains("skilltax_tenant_jobs_total{tenant=\"acme\",stage=\"admitted\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("skilltax_queue_wait_ms_bucket{le=\"+Inf\"} 1"),
        "{prom}"
    );
    assert!(prom.contains("skilltax_run_cycles_count 1"), "{prom}");
    // …and so does an Accept header preferring text/plain.
    let sniffed = roundtrip(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\n\r\n",
    );
    assert!(
        sniffed.contains("Content-Type: text/plain; version=0.0.4"),
        "{sniffed}"
    );
    // An explicit format=json overrides the Accept sniff.
    let forced = roundtrip(
        addr,
        "GET /metrics?format=json HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\n\r\n",
    );
    assert!(
        forced.contains("Content-Type: application/json"),
        "{forced}"
    );
}

#[test]
fn profiled_jobs_land_in_the_trace_ring_with_nested_spans() {
    let (service, server) = start(8, 2);
    let addr = server.local_addr();
    // An unprofiled job must not occupy the ring.
    let plain = post_jobs(addr, "tenant=acme&kind=simulate&cores=1&iters=50");
    assert!(plain.contains("\"outcome\":\"completed\""), "{plain}");
    assert!(service.traces().is_empty());
    // A profiled one assembles the full service-over-machine timeline.
    let profiled = post_jobs(
        addr,
        "tenant=acme&kind=simulate&cores=2&iters=80&profile=true",
    );
    assert!(profiled.contains("\"outcome\":\"completed\""), "{profiled}");
    let traces = service.traces();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.tenant, "acme");
    assert_eq!(trace.outcome, "completed");
    assert!(trace.cycles > 0);
    let labels: Vec<&str> = trace.spans.iter().map(|s| s.0.as_str()).collect();
    for phase in [
        "job",
        "parse",
        "admission",
        "queue_wait",
        "pool_acquire",
        "run",
        "respond",
    ] {
        assert!(labels.contains(&phase), "missing {phase}: {labels:?}");
    }
    // Strict nesting: every child sits inside its parent's extent, the
    // root owns everything, and stamps are monotone per span.
    let (_, root_start, root_end, root_parent) = &trace.spans[0];
    assert_eq!(*root_parent, None);
    for (label, start, end, parent) in &trace.spans {
        assert!(start <= end, "{label} runs backwards");
        if let Some(p) = parent {
            let (_, ps, pe, _) = &trace.spans[*p];
            assert!(ps <= start && end <= pe, "{label} escapes its parent");
        } else {
            assert!(root_start <= start && end <= root_end);
        }
    }
    // The machine run sits under the service `run` span.
    let run_idx = trace.spans.iter().position(|s| s.0 == "run").unwrap();
    let machine_children = trace.spans.iter().filter(|s| s.3 == Some(run_idx)).count();
    assert!(machine_children > 0, "no machine spans grafted under run");
}

#[test]
fn trace_jobs_serves_a_chrome_trace_document() {
    let (_service, server) = start(8, 2);
    let addr = server.local_addr();
    // Empty ring still yields a valid (empty) document.
    let empty = roundtrip(addr, "GET /trace/jobs HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(empty.starts_with("HTTP/1.1 200 OK"), "{empty}");
    assert!(empty.contains("\"traceEvents\":[]"), "{empty}");
    let response = post_jobs(addr, "tenant=acme&kind=simulate&cores=1&iters=60&profile=1");
    assert!(response.contains("\"outcome\":\"completed\""), "{response}");
    let doc = roundtrip(addr, "GET /trace/jobs HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(doc.contains("\"traceEvents\":["), "{doc}");
    assert!(doc.contains("\"ph\":\"X\""), "{doc}");
    assert!(doc.contains("\"name\":\"queue_wait\""), "{doc}");
    assert!(doc.contains("\"name\":\"respond\""), "{doc}");
    assert!(doc.contains("job 1 acme/simulate (completed)"), "{doc}");
}

#[test]
fn shutdown_stops_accepting() {
    let (_service, mut server) = start(8, 1);
    let addr = server.local_addr();
    server.shutdown();
    // The listener is gone: connecting either fails outright or the
    // connection is never served.
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(!out.contains("\"ok\":true"), "served after shutdown");
    }
}

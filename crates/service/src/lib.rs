//! skilltax-service: a multi-tenant simulation job service over the
//! taxonomy, estimate and machine crates.
//!
//! The service accepts classify / estimate / simulate / sweep jobs on a
//! bounded worker pool with four robustness layers (DESIGN.md §11):
//!
//! * **Admission control** ([`admission`], [`quota`]) — a bounded job
//!   queue with typed [`proto::Rejection`]s and retry-after hints,
//!   per-tenant token buckets, and deficit-round-robin dispatch so no
//!   tenant starves another.
//! * **Deadlines and cancellation** — every run loop in the machine
//!   crate polls a [`skilltax_machine::CancelToken`]; deadline stops are
//!   deterministic and return partial statistics.
//! * **Bounded memory** ([`pool`]) — machine instances are reset and
//!   reused, making the steady-state request path allocation-free.
//! * **Retry and degradation** ([`engine`]) — transient fault storms are
//!   retried under the machine crate's bounded backoff, with
//!   `run_resilient` degradation as the fallback tier.
//!
//! The [`http`] module is a hand-rolled HTTP/1.1 front end over
//! `std::net` (connection timeouts, header/body caps, slow-loris safe),
//! [`perf`] defines the pluggable read-only `GET /perf/*` query surface
//! the bench crate's history store mounts behind it, and [`chaos`] is
//! the deterministic soak harness that proves the invariants hold under
//! a hostile tenant mix.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod chaos;
pub mod engine;
pub mod http;
pub mod perf;
pub mod pool;
pub mod proto;
pub mod quota;
pub mod service;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use engine::{Engine, EngineConfig, RunCapture};
pub use http::{prometheus_text, serve, serve_with_perf, HttpConfig, HttpServer};
pub use perf::{PerfError, PerfSource};
pub use pool::UniPool;
pub use proto::{JobKind, JobOutcome, JobRequest, Rejection, RequestLimits, Scheduler};
pub use quota::{QuotaConfig, QuotaLedger};
pub use service::{JobTicket, JobTrace, Service, ServiceConfig, ServiceMetrics, TraceSpan};

//! The service protocol: typed requests, typed terminal outcomes, typed
//! rejections, and the deliberately minimal wire format the HTTP front
//! end speaks (`key=value` lines in, JSON out — hermetic, no parser
//! dependencies).

use std::fmt;

use skilltax_machine::array::ArraySubtype;
use skilltax_machine::{MachineError, Stats};

/// Hard caps a request must respect at admission (oversized work is a
/// typed rejection, not a queued job that times out an hour later).
#[derive(Debug, Clone, Copy)]
pub struct RequestLimits {
    /// Largest simulated cycle budget a single job may ask for.
    pub max_cycles: u64,
    /// Largest core/lane count a single job may ask for.
    pub max_cores: usize,
    /// Largest sweep point count a single job may ask for.  Headroom
    /// raised from 64 once all-single-core sweeps started routing
    /// through the structure-of-arrays fleet executor (DESIGN.md §14),
    /// which amortizes decode across points instead of paying the full
    /// per-point scheduler cost.
    pub max_sweep_points: usize,
}

impl Default for RequestLimits {
    fn default() -> RequestLimits {
        RequestLimits {
            max_cycles: 5_000_000,
            max_cores: 256,
            max_sweep_points: 256,
        }
    }
}

/// Which scheduler a simulate job runs under (the service exposes all
/// three so clients can cross-check the identity contract end to end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// The dense per-cycle reference loop.
    Dense,
    /// The event-driven active-set loop (the default).
    Event,
    /// The shard-parallel runner with the given width (`0` = auto).
    Sharded(usize),
}

/// What a job asks the service to compute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Classify an architecture row (the Table III DSL) into the
    /// extended taxonomy.
    Classify {
        /// Architecture name.
        name: String,
        /// The `ips | dps | ... | dp-dp` row.
        row: String,
    },
    /// Estimate area and configuration bits for an architecture row.
    Estimate {
        /// Architecture name.
        name: String,
        /// The `ips | dps | ... | dp-dp` row.
        row: String,
    },
    /// Run a spin workload on a machine and return its statistics.
    Simulate {
        /// Core count (1 = uni-processor, pooled).
        cores: usize,
        /// Loop iterations per core.
        iters: i64,
        /// Scheduler choice for multi-core runs.
        scheduler: Scheduler,
        /// Optional fault-plan seed: enables the transient-stall storm
        /// the retry/degradation tiers are exercised against.
        fault_seed: Option<u64>,
    },
    /// Simulate over a range of core counts and return cycles per point.
    Sweep {
        /// Core counts to simulate.
        cores: Vec<usize>,
        /// Loop iterations per core.
        iters: i64,
    },
    /// Seeded Monte-Carlo fault study on a SIMD array machine: every
    /// seed runs the same lane kernel under an independent deterministic
    /// fault plan.  The engine executes all seeds as one
    /// structure-of-arrays [`ArrayFleet`](skilltax_machine::fleet::ArrayFleet)
    /// batch (DESIGN.md §14), bit-identical to per-seed `run_resilient`.
    FaultSweep {
        /// Array sub-type (IAP-I..IV) under study.
        subtype: ArraySubtype,
        /// Data-path lanes per array instance.
        lanes: usize,
        /// Monte-Carlo population: seed `k` runs plan `seed0 + k`.
        seeds: usize,
        /// Base fault seed.
        seed0: u64,
        /// Transient DP stall probability, parts per million.  Integer
        /// ppm keeps [`JobKind`] `Eq` and the wire format float-free.
        stall_ppm: u32,
        /// Memory bit-flip probability, parts per million.
        flip_ppm: u32,
    },
}

impl JobKind {
    /// A short label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Classify { .. } => "classify",
            JobKind::Estimate { .. } => "estimate",
            JobKind::Simulate { .. } => "simulate",
            JobKind::Sweep { .. } => "sweep",
            JobKind::FaultSweep { .. } => "faultsweep",
        }
    }

    /// The admission-time cost of the job in quota tokens: heavier work
    /// charges more, so one tenant's big simulations drain its bucket
    /// faster than another tenant's classifications.
    pub fn cost(&self) -> u64 {
        match self {
            JobKind::Classify { .. } | JobKind::Estimate { .. } => 1,
            JobKind::Simulate { cores, .. } => 1 + (*cores as u64) / 16,
            JobKind::Sweep { cores, .. } => 1 + cores.len() as u64,
            JobKind::FaultSweep { seeds, .. } => 1 + *seeds as u64,
        }
    }
}

/// One admitted unit of work.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The tenant the job is billed to (quota + fairness identity).
    pub tenant: String,
    /// The work itself.
    pub kind: JobKind,
    /// Optional deadline in *simulated cycles*: the run is cancelled
    /// deterministically once it has consumed this many cycles.
    pub deadline_cycles: Option<u64>,
}

/// Why a request was refused at the front door.  Every rejection carries
/// enough structure for the client to act on it (the HTTP layer maps
/// these onto 4xx statuses and a `Retry-After` hint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded job queue is full; retry after the hinted delay.
    QueueFull {
        /// Jobs currently queued.
        depth: usize,
        /// Queue capacity.
        capacity: usize,
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant's token bucket is empty; retry once it refills.
    QuotaExhausted {
        /// Tokens the job needed.
        needed: u64,
        /// Milliseconds until the bucket holds that many tokens again.
        retry_after_ms: u64,
    },
    /// The request exceeds a hard size cap and would never be admitted.
    Oversized {
        /// Which limit was violated.
        what: &'static str,
        /// The configured cap.
        limit: u64,
        /// What the request asked for.
        got: u64,
    },
    /// The request could not be parsed or validated.
    Malformed(String),
    /// The service is draining and admits nothing new.
    ShuttingDown,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull {
                depth,
                capacity,
                retry_after_ms,
            } => write!(
                f,
                "queue full ({depth}/{capacity}); retry after {retry_after_ms} ms"
            ),
            Rejection::QuotaExhausted {
                needed,
                retry_after_ms,
            } => write!(
                f,
                "quota exhausted (needed {needed} tokens); retry after {retry_after_ms} ms"
            ),
            Rejection::Oversized { what, limit, got } => {
                write!(
                    f,
                    "oversized request: {what} = {got} exceeds the cap {limit}"
                )
            }
            Rejection::Malformed(why) => write!(f, "malformed request: {why}"),
            Rejection::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl Rejection {
    /// The client backoff hint, if the rejection is retryable.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Rejection::QueueFull { retry_after_ms, .. }
            | Rejection::QuotaExhausted { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

/// The typed terminal outcome of an *admitted* job.  Every admitted job
/// reaches exactly one of these — the chaos suite's core invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job completed cleanly.
    Completed {
        /// Human-readable result line (class name, area figure, …).
        summary: String,
        /// Run statistics for simulate/sweep jobs.
        stats: Option<Stats>,
    },
    /// The job completed, but only by degrading around injected faults
    /// (the `run_resilient` fallback tier).
    Degraded {
        /// Run statistics of the degraded run.
        stats: Stats,
        /// Faults the plan injected.
        faults_injected: u64,
        /// Whole-job retries the engine spent before degrading.
        retries: u32,
    },
    /// The job was cancelled (deadline or client disconnect) with the
    /// partial statistics at the stop cycle.
    Cancelled {
        /// The cycle the run stopped at.
        at_cycle: u64,
        /// Statistics accumulated up to the stop.
        partial: Stats,
    },
    /// The run exceeded its watchdog budget.
    TimedOut {
        /// The budget that tripped.
        limit: u64,
        /// Statistics accumulated up to the trip.
        partial: Stats,
    },
    /// The job failed with a typed machine error (after the retry and
    /// degradation tiers were exhausted).
    Failed {
        /// The rendered error.
        error: String,
        /// Whole-job retries the engine spent before giving up.
        retries: u32,
    },
}

impl JobOutcome {
    /// A short label for logs, metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed { .. } => "completed",
            JobOutcome::Degraded { .. } => "degraded",
            JobOutcome::Cancelled { .. } => "cancelled",
            JobOutcome::TimedOut { .. } => "timed-out",
            JobOutcome::Failed { .. } => "failed",
        }
    }

    /// Map a machine error onto the matching typed outcome.
    pub fn from_error(error: MachineError, retries: u32) -> JobOutcome {
        match error {
            MachineError::Cancelled { at_cycle, partial } => {
                JobOutcome::Cancelled { at_cycle, partial }
            }
            MachineError::WatchdogTimeout { limit, partial } => {
                JobOutcome::TimedOut { limit, partial }
            }
            other => JobOutcome::Failed {
                error: other.to_string(),
                retries,
            },
        }
    }
}

/// Parse the wire body: one `key=value` pair per `&`-separated field
/// (the shape `curl --data` produces), keys case-sensitive.
///
/// Recognised keys: `tenant`, `kind` (`classify` | `estimate` |
/// `simulate` | `sweep` | `faultsweep`), `name`, `row`, `cores` (single
/// number, or a comma list for sweeps), `iters`, `scheduler` (`dense` |
/// `event` | `sharded` | `sharded:N`), `fault_seed`, `deadline_cycles`,
/// and for fault sweeps `subtype` (`I`..`IV`), `lanes`, `seeds`,
/// `stall_ppm`, `flip_ppm` (fault rates as integer parts per million).
pub fn parse_request(body: &str) -> Result<JobRequest, Rejection> {
    let mut tenant = None;
    let mut kind = None;
    let mut name = None;
    let mut row = None;
    let mut cores = None;
    let mut iters = None;
    let mut scheduler = Scheduler::Event;
    let mut fault_seed = None;
    let mut deadline_cycles = None;
    let mut subtype = None;
    let mut lanes = None;
    let mut seeds = None;
    let mut stall_ppm = None;
    let mut flip_ppm = None;
    for pair in body.split('&').filter(|p| !p.trim().is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| Rejection::Malformed(format!("field without '=': {pair:?}")))?;
        let value = value.trim();
        match key.trim() {
            "tenant" => tenant = Some(value.to_string()),
            "kind" => kind = Some(value.to_string()),
            "name" => name = Some(value.to_string()),
            "row" => row = Some(value.replace("%7C", "|").replace("%20", " ")),
            "cores" => cores = Some(value.to_string()),
            "iters" => {
                iters = Some(value.parse::<i64>().map_err(|_| {
                    Rejection::Malformed(format!("iters is not a number: {value:?}"))
                })?)
            }
            "scheduler" => {
                scheduler = match value {
                    "dense" => Scheduler::Dense,
                    "event" => Scheduler::Event,
                    "sharded" => Scheduler::Sharded(0),
                    other => match other.strip_prefix("sharded:") {
                        Some(n) => Scheduler::Sharded(n.parse().map_err(|_| {
                            Rejection::Malformed(format!("bad shard width: {other:?}"))
                        })?),
                        None => {
                            return Err(Rejection::Malformed(format!(
                                "unknown scheduler: {other:?}"
                            )))
                        }
                    },
                }
            }
            "fault_seed" => {
                fault_seed = Some(value.parse::<u64>().map_err(|_| {
                    Rejection::Malformed(format!("fault_seed is not a number: {value:?}"))
                })?)
            }
            "deadline_cycles" => {
                deadline_cycles = Some(value.parse::<u64>().map_err(|_| {
                    Rejection::Malformed(format!("deadline_cycles is not a number: {value:?}"))
                })?)
            }
            "subtype" => {
                subtype = Some(match value {
                    "I" => ArraySubtype::I,
                    "II" => ArraySubtype::II,
                    "III" => ArraySubtype::III,
                    "IV" => ArraySubtype::IV,
                    other => {
                        return Err(Rejection::Malformed(format!(
                            "unknown array subtype (expected I..IV): {other:?}"
                        )))
                    }
                })
            }
            "lanes" => {
                lanes = Some(value.parse::<usize>().map_err(|_| {
                    Rejection::Malformed(format!("lanes is not a number: {value:?}"))
                })?)
            }
            "seeds" => {
                seeds = Some(value.parse::<usize>().map_err(|_| {
                    Rejection::Malformed(format!("seeds is not a number: {value:?}"))
                })?)
            }
            "stall_ppm" => {
                stall_ppm = Some(value.parse::<u32>().map_err(|_| {
                    Rejection::Malformed(format!("stall_ppm is not a number: {value:?}"))
                })?)
            }
            "flip_ppm" => {
                flip_ppm = Some(value.parse::<u32>().map_err(|_| {
                    Rejection::Malformed(format!("flip_ppm is not a number: {value:?}"))
                })?)
            }
            other => return Err(Rejection::Malformed(format!("unknown field: {other:?}"))),
        }
    }
    let tenant = tenant.ok_or_else(|| Rejection::Malformed("missing tenant".into()))?;
    if tenant.is_empty() {
        return Err(Rejection::Malformed("empty tenant".into()));
    }
    let kind_name = kind.ok_or_else(|| Rejection::Malformed("missing kind".into()))?;
    let parse_cores_one = |s: &Option<String>| -> Result<usize, Rejection> {
        s.as_deref()
            .unwrap_or("1")
            .parse()
            .map_err(|_| Rejection::Malformed("cores is not a number".into()))
    };
    let kind = match kind_name.as_str() {
        "classify" | "estimate" => {
            let name = name.ok_or_else(|| Rejection::Malformed("missing name".into()))?;
            let row = row.ok_or_else(|| Rejection::Malformed("missing row".into()))?;
            if kind_name == "classify" {
                JobKind::Classify { name, row }
            } else {
                JobKind::Estimate { name, row }
            }
        }
        "simulate" => JobKind::Simulate {
            cores: parse_cores_one(&cores)?,
            iters: iters.unwrap_or(100),
            scheduler,
            fault_seed,
        },
        "sweep" => {
            let list = cores.ok_or_else(|| Rejection::Malformed("missing cores list".into()))?;
            let cores: Result<Vec<usize>, _> =
                list.split(',').map(|c| c.trim().parse::<usize>()).collect();
            JobKind::Sweep {
                cores: cores
                    .map_err(|_| Rejection::Malformed("cores list has a non-number".into()))?,
                iters: iters.unwrap_or(100),
            }
        }
        "faultsweep" => {
            let lanes = lanes.unwrap_or(4);
            let seeds = seeds.unwrap_or(16);
            if lanes == 0 {
                return Err(Rejection::Malformed(
                    "faultsweep needs at least one lane".into(),
                ));
            }
            if seeds == 0 {
                return Err(Rejection::Malformed(
                    "faultsweep needs at least one seed".into(),
                ));
            }
            JobKind::FaultSweep {
                subtype: subtype.unwrap_or(ArraySubtype::III),
                lanes,
                seeds,
                seed0: fault_seed.unwrap_or(1),
                stall_ppm: stall_ppm.unwrap_or(0),
                flip_ppm: flip_ppm.unwrap_or(0),
            }
        }
        other => return Err(Rejection::Malformed(format!("unknown kind: {other:?}"))),
    };
    Ok(JobRequest {
        tenant,
        kind,
        deadline_cycles,
    })
}

/// [`parse_request`] plus the `profile` wire key: `profile=true` (or
/// `1`) asks the service to span-profile the job and retain its trace
/// for `GET /trace/jobs`.  The key is stripped before the regular parse,
/// so [`JobRequest`] itself is unchanged and plain clients see identical
/// behaviour.
pub fn parse_request_profiled(body: &str) -> Result<(JobRequest, bool), Rejection> {
    let mut profiled = false;
    let mut rest: Vec<&str> = Vec::new();
    for pair in body.split('&').filter(|p| !p.trim().is_empty()) {
        match pair.split_once('=') {
            Some((key, value)) if key.trim() == "profile" => {
                profiled = match value.trim() {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    other => {
                        return Err(Rejection::Malformed(format!(
                            "profile is not a boolean: {other:?}"
                        )))
                    }
                };
            }
            _ => rest.push(pair),
        }
    }
    Ok((parse_request(&rest.join("&"))?, profiled))
}

/// Validate a parsed request against the hard caps.
pub fn validate(request: &JobRequest, limits: &RequestLimits) -> Result<(), Rejection> {
    let over = |what: &'static str, limit: u64, got: u64| -> Result<(), Rejection> {
        if got > limit {
            Err(Rejection::Oversized { what, limit, got })
        } else {
            Ok(())
        }
    };
    match &request.kind {
        JobKind::Classify { .. } | JobKind::Estimate { .. } => Ok(()),
        JobKind::Simulate { cores, iters, .. } => {
            over("cores", limits.max_cores as u64, *cores as u64)?;
            over("iters", limits.max_cycles, iters.unsigned_abs())
        }
        JobKind::Sweep { cores, iters } => {
            over(
                "sweep points",
                limits.max_sweep_points as u64,
                cores.len() as u64,
            )?;
            for &c in cores {
                over("cores", limits.max_cores as u64, c as u64)?;
            }
            over("iters", limits.max_cycles, iters.unsigned_abs())
        }
        JobKind::FaultSweep {
            lanes,
            seeds,
            stall_ppm,
            flip_ppm,
            ..
        } => {
            over("lanes", limits.max_cores as u64, *lanes as u64)?;
            over("seeds", limits.max_sweep_points as u64, *seeds as u64)?;
            // A probability cannot exceed one: ppm rates cap at 10^6.
            over("stall_ppm", 1_000_000, u64::from(*stall_ppm))?;
            over("flip_ppm", 1_000_000, u64::from(*flip_ppm))
        }
    }
}

/// Minimal JSON string escaping for response bodies.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stats_json(stats: &Stats) -> String {
    format!(
        "{{\"cycles\":{},\"instructions\":{},\"alu_ops\":{},\"mem_reads\":{},\
         \"mem_writes\":{},\"messages\":{},\"stalls\":{}}}",
        stats.cycles,
        stats.instructions,
        stats.alu_ops,
        stats.mem_reads,
        stats.mem_writes,
        stats.messages,
        stats.stalls
    )
}

/// Render an outcome as the JSON body the HTTP layer returns.
pub fn outcome_json(outcome: &JobOutcome) -> String {
    match outcome {
        JobOutcome::Completed { summary, stats } => match stats {
            Some(s) => format!(
                "{{\"outcome\":\"completed\",\"summary\":\"{}\",\"stats\":{}}}",
                json_escape(summary),
                stats_json(s)
            ),
            None => format!(
                "{{\"outcome\":\"completed\",\"summary\":\"{}\"}}",
                json_escape(summary)
            ),
        },
        JobOutcome::Degraded {
            stats,
            faults_injected,
            retries,
        } => format!(
            "{{\"outcome\":\"degraded\",\"faults_injected\":{faults_injected},\
             \"retries\":{retries},\"stats\":{}}}",
            stats_json(stats)
        ),
        JobOutcome::Cancelled { at_cycle, partial } => format!(
            "{{\"outcome\":\"cancelled\",\"at_cycle\":{at_cycle},\"partial\":{}}}",
            stats_json(partial)
        ),
        JobOutcome::TimedOut { limit, partial } => format!(
            "{{\"outcome\":\"timed-out\",\"limit\":{limit},\"partial\":{}}}",
            stats_json(partial)
        ),
        JobOutcome::Failed { error, retries } => format!(
            "{{\"outcome\":\"failed\",\"retries\":{retries},\"error\":\"{}\"}}",
            json_escape(error)
        ),
    }
}

/// Render a rejection as the JSON body the HTTP layer returns.
pub fn rejection_json(rejection: &Rejection) -> String {
    let mut body = format!(
        "{{\"rejected\":\"{}\",\"reason\":\"{}\"",
        match rejection {
            Rejection::QueueFull { .. } => "queue-full",
            Rejection::QuotaExhausted { .. } => "quota-exhausted",
            Rejection::Oversized { .. } => "oversized",
            Rejection::Malformed(_) => "malformed",
            Rejection::ShuttingDown => "shutting-down",
        },
        json_escape(&rejection.to_string())
    );
    if let Some(ms) = rejection.retry_after_ms() {
        body.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    body.push('}');
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simulate_request() {
        let req = parse_request(
            "tenant=acme&kind=simulate&cores=16&iters=500&scheduler=sharded:2\
             &fault_seed=7&deadline_cycles=1000",
        )
        .unwrap();
        assert_eq!(req.tenant, "acme");
        assert_eq!(req.deadline_cycles, Some(1_000));
        match req.kind {
            JobKind::Simulate {
                cores,
                iters,
                scheduler,
                fault_seed,
            } => {
                assert_eq!((cores, iters), (16, 500));
                assert_eq!(scheduler, Scheduler::Sharded(2));
                assert_eq!(fault_seed, Some(7));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parses_classify_and_sweep() {
        let req = parse_request("tenant=t&kind=classify&name=MorphoSys&row=1 | 64 | none").unwrap();
        assert!(matches!(req.kind, JobKind::Classify { .. }));
        let req = parse_request("tenant=t&kind=sweep&cores=1,2,4&iters=50").unwrap();
        match req.kind {
            JobKind::Sweep { cores, iters } => {
                assert_eq!(cores, vec![1, 2, 4]);
                assert_eq!(iters, 50);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parses_a_faultsweep_request() {
        let req = parse_request(
            "tenant=lab&kind=faultsweep&subtype=II&lanes=8&seeds=32\
             &fault_seed=5&stall_ppm=200000&flip_ppm=50000",
        )
        .unwrap();
        assert_eq!(req.kind.label(), "faultsweep");
        assert_eq!(req.kind.cost(), 33);
        assert_eq!(
            req.kind,
            JobKind::FaultSweep {
                subtype: ArraySubtype::II,
                lanes: 8,
                seeds: 32,
                seed0: 5,
                stall_ppm: 200_000,
                flip_ppm: 50_000,
            }
        );
        // Defaults: IAP-III, 4 lanes, 16 seeds, base seed 1, no faults.
        let req = parse_request("tenant=lab&kind=faultsweep").unwrap();
        assert_eq!(
            req.kind,
            JobKind::FaultSweep {
                subtype: ArraySubtype::III,
                lanes: 4,
                seeds: 16,
                seed0: 1,
                stall_ppm: 0,
                flip_ppm: 0,
            }
        );
    }

    #[test]
    fn malformed_requests_are_typed_rejections() {
        for body in [
            "kind=simulate",              // missing tenant
            "tenant=t",                   // missing kind
            "tenant=t&kind=warp",         // unknown kind
            "tenant=t&kind=simulate&x=1", // unknown field
            "tenant=t&kind=simulate&iters=zebra",
            "tenant=&kind=simulate",              // empty tenant
            "tenant=t&kind=faultsweep&subtype=V", // no such array class
            "tenant=t&kind=faultsweep&lanes=0",   // degenerate array
            "tenant=t&kind=faultsweep&seeds=0",   // empty population
            "tenant=t&kind=faultsweep&stall_ppm=-1",
        ] {
            assert!(
                matches!(parse_request(body), Err(Rejection::Malformed(_))),
                "{body:?} should be malformed"
            );
        }
    }

    #[test]
    fn profile_key_is_recognised_and_stripped() {
        let (req, profiled) =
            parse_request_profiled("tenant=acme&profile=true&kind=simulate&iters=50").unwrap();
        assert!(profiled);
        assert_eq!(req.tenant, "acme");
        let (_, profiled) = parse_request_profiled("tenant=t&kind=simulate&profile=0").unwrap();
        assert!(!profiled);
        // Absent key defaults off; plain parse still rejects the key.
        let (_, profiled) = parse_request_profiled("tenant=t&kind=simulate").unwrap();
        assert!(!profiled);
        assert!(matches!(
            parse_request("tenant=t&kind=simulate&profile=true"),
            Err(Rejection::Malformed(_))
        ));
        assert!(matches!(
            parse_request_profiled("tenant=t&kind=simulate&profile=maybe"),
            Err(Rejection::Malformed(_))
        ));
    }

    #[test]
    fn oversized_requests_are_typed_rejections() {
        let limits = RequestLimits::default();
        let req = parse_request("tenant=t&kind=simulate&cores=100000").unwrap();
        assert!(matches!(
            validate(&req, &limits),
            Err(Rejection::Oversized { what: "cores", .. })
        ));
        let req = parse_request("tenant=t&kind=sweep&cores=1,2&iters=999999999999").unwrap();
        assert!(matches!(
            validate(&req, &limits),
            Err(Rejection::Oversized { what: "iters", .. })
        ));
        for (body, what) in [
            ("tenant=t&kind=faultsweep&lanes=1000", "lanes"),
            ("tenant=t&kind=faultsweep&seeds=1000", "seeds"),
            ("tenant=t&kind=faultsweep&stall_ppm=1000001", "stall_ppm"),
            ("tenant=t&kind=faultsweep&flip_ppm=2000000", "flip_ppm"),
        ] {
            let req = parse_request(body).unwrap();
            match validate(&req, &limits) {
                Err(Rejection::Oversized { what: got, .. }) => assert_eq!(got, what),
                other => panic!("{body:?} should be oversized, got {other:?}"),
            }
        }
    }

    #[test]
    fn outcome_json_is_well_formed() {
        let json = outcome_json(&JobOutcome::Cancelled {
            at_cycle: 9,
            partial: Stats::default(),
        });
        assert!(json.starts_with("{\"outcome\":\"cancelled\""));
        assert!(json.contains("\"at_cycle\":9"));
        let json = rejection_json(&Rejection::QueueFull {
            depth: 8,
            capacity: 8,
            retry_after_ms: 40,
        });
        assert!(json.contains("\"retry_after_ms\":40"));
    }
}

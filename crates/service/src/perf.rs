//! Read-only performance endpoints for the HTTP front end.
//!
//! The perf-history store lives in `skilltax-bench` (which depends on
//! this crate — the collector benches the service), so the service
//! cannot name the store directly.  Instead the front end mounts any
//! [`PerfSource`]: a read-only provider that answers the three queries
//! as ready-to-send JSON bodies.  `skilltax-bench::history` implements
//! it over the append-only artifact store; tests stub it.
//!
//! Routes (all `GET`, mapped by [`respond`]):
//!
//! * `/perf/benchmarks` — the labels and benchmark/counter inventory.
//! * `/perf/trajectory?bench=…&counter=…[&label=…]` — one counter's
//!   value at every stored commit, significance-classified.
//! * `/perf/compare?from=…&to=…[&label=…]` — the triaged diff of two
//!   stored commits (relevant / probably-relevant / noise buckets).
//!
//! Query strings are parsed strictly: percent-escapes must be valid,
//! duplicated keys are rejected, and missing required parameters are a
//! typed 400 — the same no-silent-defaults policy the front door
//! applies to `Content-Length`.

use std::fmt;

/// Why a perf query failed.  [`respond`] maps these onto HTTP statuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// The query is malformed (bad escape, duplicate key, missing or
    /// unknown parameter) — 400.
    BadRequest(String),
    /// The store has no such label, commit, benchmark or counter — 404.
    NotFound(String),
    /// The store itself failed (unreadable or corrupt artifact) — 500.
    Internal(String),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::BadRequest(why) => write!(f, "bad perf query: {why}"),
            PerfError::NotFound(why) => write!(f, "not found: {why}"),
            PerfError::Internal(why) => write!(f, "perf store error: {why}"),
        }
    }
}

impl std::error::Error for PerfError {}

/// A read-only provider of perf-history answers, each a complete JSON
/// body.  Implementations must be cheap to query concurrently — the
/// front end calls them from per-connection threads.
pub trait PerfSource: Send + Sync {
    /// The store inventory: labels, benchmarks, counters.
    fn benchmarks(&self, label: Option<&str>) -> Result<String, PerfError>;
    /// The trajectory of `counter` for `bench` across stored commits.
    fn trajectory(
        &self,
        label: Option<&str>,
        bench: &str,
        counter: &str,
    ) -> Result<String, PerfError>;
    /// The significance-triaged comparison of two stored commits.
    fn compare(&self, label: Option<&str>, from: &str, to: &str) -> Result<String, PerfError>;
}

/// Decode one percent-encoded query component (`+` is a space).
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|pair| std::str::from_utf8(pair).ok())
                    .and_then(|pair| u8::from_str_radix(pair, 16).ok())
                    .ok_or_else(|| format!("bad percent-escape in {s:?}"))?;
                out.push(hex);
                i += 2;
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8(out).map_err(|_| format!("query component {s:?} is not UTF-8"))
}

/// Parse `key=value&…` strictly: every pair needs `=`, escapes must
/// decode, and a duplicated key is an error (never a silent
/// first-or-last-wins).
fn parse_query(query: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("query field without '=': {pair:?}"))?;
        let key = percent_decode(key)?;
        let value = percent_decode(value)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate query parameter {key:?}"));
        }
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// Look up the parameters a route allows, rejecting strangers so typos
/// fail loudly instead of silently querying the default.
fn take<'a>(
    pairs: &'a [(String, String)],
    allowed: &[&str],
) -> Result<impl Fn(&str) -> Option<&'a str>, String> {
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown query parameter {key:?}"));
        }
    }
    Ok(move |name: &str| {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    })
}

/// Answer one `GET /perf/...` request: returns the HTTP status line and
/// the JSON body.  `path` is the raw request path including any query
/// string.
pub fn respond(source: &dyn PerfSource, path: &str) -> (&'static str, String) {
    let (route, query) = path.split_once('?').unwrap_or((path, ""));
    let pairs = match parse_query(query) {
        Ok(pairs) => pairs,
        Err(why) => return error_response(&PerfError::BadRequest(why)),
    };
    let result = match route {
        "/perf/benchmarks" => match take(&pairs, &["label"]) {
            Ok(get) => source.benchmarks(get("label")),
            Err(why) => Err(PerfError::BadRequest(why)),
        },
        "/perf/trajectory" => match take(&pairs, &["label", "bench", "counter"]) {
            Ok(get) => match (get("bench"), get("counter")) {
                (Some(bench), Some(counter)) => source.trajectory(get("label"), bench, counter),
                (None, _) => Err(PerfError::BadRequest("missing parameter 'bench'".into())),
                (_, None) => Err(PerfError::BadRequest("missing parameter 'counter'".into())),
            },
            Err(why) => Err(PerfError::BadRequest(why)),
        },
        "/perf/compare" => match take(&pairs, &["label", "from", "to"]) {
            Ok(get) => match (get("from"), get("to")) {
                (Some(from), Some(to)) => source.compare(get("label"), from, to),
                (None, _) => Err(PerfError::BadRequest("missing parameter 'from'".into())),
                (_, None) => Err(PerfError::BadRequest("missing parameter 'to'".into())),
            },
            Err(why) => Err(PerfError::BadRequest(why)),
        },
        _ => Err(PerfError::NotFound(format!("no perf route {route:?}"))),
    };
    match result {
        Ok(body) => ("200 OK", body),
        Err(error) => error_response(&error),
    }
}

fn error_response(error: &PerfError) -> (&'static str, String) {
    let status = match error {
        PerfError::BadRequest(_) => "400 Bad Request",
        PerfError::NotFound(_) => "404 Not Found",
        PerfError::Internal(_) => "500 Internal Server Error",
    };
    (
        status,
        format!(
            "{{\"error\":\"{}\"}}",
            crate::proto::json_escape(&error.to_string())
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub source that echoes what it was asked.
    struct Echo;

    impl PerfSource for Echo {
        fn benchmarks(&self, label: Option<&str>) -> Result<String, PerfError> {
            Ok(format!("{{\"benchmarks\":\"{}\"}}", label.unwrap_or("*")))
        }

        fn trajectory(
            &self,
            label: Option<&str>,
            bench: &str,
            counter: &str,
        ) -> Result<String, PerfError> {
            if bench == "ghost" {
                return Err(PerfError::NotFound("no benchmark 'ghost'".into()));
            }
            Ok(format!(
                "{{\"label\":\"{}\",\"bench\":\"{bench}\",\"counter\":\"{counter}\"}}",
                label.unwrap_or("*")
            ))
        }

        fn compare(&self, _: Option<&str>, from: &str, to: &str) -> Result<String, PerfError> {
            Ok(format!("{{\"from\":\"{from}\",\"to\":\"{to}\"}}"))
        }
    }

    #[test]
    fn routes_dispatch_with_decoded_parameters() {
        let (status, body) = respond(&Echo, "/perf/benchmarks");
        assert_eq!(status, "200 OK");
        assert!(body.contains("\"*\""));
        let (status, body) = respond(
            &Echo,
            "/perf/trajectory?bench=machine%2Fvector_add&counter=cycles",
        );
        assert_eq!(status, "200 OK");
        assert!(body.contains("machine/vector_add"), "{body}");
        let (status, body) = respond(&Echo, "/perf/compare?from=a1&to=b2");
        assert_eq!(status, "200 OK");
        assert!(body.contains("\"from\":\"a1\""));
    }

    #[test]
    fn missing_and_duplicate_parameters_are_400() {
        for path in [
            "/perf/trajectory?bench=x",
            "/perf/trajectory?counter=cycles",
            "/perf/compare?from=a",
            "/perf/compare?from=a&to=b&from=c",
            "/perf/trajectory?bench=x&counter=y&verbose",
            "/perf/benchmarks?label=%zz",
            "/perf/benchmarks?mystery=1",
        ] {
            let (status, body) = respond(&Echo, path);
            assert_eq!(status, "400 Bad Request", "{path} -> {body}");
            assert!(body.starts_with("{\"error\":"), "{body}");
        }
    }

    #[test]
    fn unknown_routes_and_entities_are_404() {
        let (status, _) = respond(&Echo, "/perf/unknown");
        assert_eq!(status, "404 Not Found");
        let (status, body) = respond(&Echo, "/perf/trajectory?bench=ghost&counter=cycles");
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("ghost"));
    }
}

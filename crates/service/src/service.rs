//! The service core: a bounded worker pool draining the DRR queue, with
//! admission control at `submit` and a typed terminal outcome delivered
//! to every admitted job's ticket.
//!
//! All admission decisions run on a caller-supplied millisecond clock
//! (the HTTP layer feeds wall time, the chaos harness a scripted virtual
//! clock), so they replay bit-identically under any worker count.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skilltax_machine::{configured_threads, CancelToken, Histogram, Phase};

use crate::admission::{DrrQueue, QueuedJob};
use crate::engine::{Engine, EngineConfig, RunCapture};
use crate::proto::{validate, JobOutcome, JobRequest, Rejection};
use crate::quota::{QuotaConfig, QuotaLedger};

/// Finished job traces retained for `GET /trace/jobs` (oldest evicted).
pub const TRACE_RING: usize = 32;

/// Environment knob for the bounded queue depth.
pub const QUEUE_ENV: &str = "SKILLTAX_SERVICE_QUEUE";

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Bounded job-queue depth (`SKILLTAX_SERVICE_QUEUE` overrides the
    /// default 64 when [`ServiceConfig::default`] builds the config).
    pub queue_capacity: usize,
    /// DRR quantum (deficit granted per lane visit).
    pub drr_quantum: u64,
    /// Worker threads draining the queue (defaults to
    /// [`configured_threads`], i.e. the `SKILLTAX_THREADS` knob).
    pub workers: usize,
    /// Per-tenant token-bucket parameters.
    pub quota: QuotaConfig,
    /// Engine tuning (request limits, pool size, retry budget).
    pub engine: EngineConfig,
    /// Milliseconds of estimated service time per queued job, used for
    /// the queue-full `Retry-After` hint.
    pub est_ms_per_job: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let queue_capacity = std::env::var(QUEUE_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ServiceConfig {
            queue_capacity,
            drr_quantum: 1,
            workers: configured_threads(),
            quota: QuotaConfig::default(),
            engine: EngineConfig::default(),
            est_ms_per_job: 5,
        }
    }
}

/// Counters the service keeps (snapshot via [`Service::metrics`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Requests offered to `submit`.
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Refused: queue at capacity.
    pub rejected_queue_full: u64,
    /// Refused: tenant bucket empty.
    pub rejected_quota: u64,
    /// Refused: over a hard size cap.
    pub rejected_oversized: u64,
    /// Refused: service draining.
    pub rejected_shutdown: u64,
    /// Terminal outcomes by label.
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Deepest the queue has been.
    pub peak_depth: usize,
    /// Per-tenant `(admitted, finished)` counts.
    pub per_tenant: BTreeMap<String, (u64, u64)>,
    /// Telemetry events the bounded trace rings evicted across profiled
    /// jobs (`EventTrace::dropped`, summed).
    pub trace_events_dropped: u64,
    /// Queue-wait times in milliseconds, log2-bucketed (every job).
    pub queue_wait_ms: Histogram,
    /// Simulated cycles consumed per finished job, log2-bucketed.
    pub run_cycles: Histogram,
}

impl ServiceMetrics {
    /// Total refusals across rejection kinds.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_quota
            + self.rejected_oversized
            + self.rejected_shutdown
    }

    /// Terminal outcomes delivered in total.
    pub fn finished(&self) -> u64 {
        self.outcomes.values().sum()
    }
}

type OutcomeSlot = Arc<(Mutex<Option<JobOutcome>>, Condvar)>;

/// A span row in a job trace: `(label, start_ns, end_ns, parent index)`
/// — the same plain shape the report crate's flame/trace renderers eat.
pub type TraceSpan = (String, u64, u64, Option<usize>);

/// One finished job's assembled timeline: service-layer phases in
/// nanoseconds wrapping the machine run's cycle-domain span tree,
/// grafted at 1 cycle = 1 ns.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// The job id ([`JobTicket::id`]).
    pub id: u64,
    /// The tenant the job billed to.
    pub tenant: String,
    /// Job kind label (`classify`, `simulate`, …).
    pub kind: &'static str,
    /// Terminal outcome label (`completed`, `degraded`, …).
    pub outcome: &'static str,
    /// Simulated cycles the run consumed.
    pub cycles: u64,
    /// The strictly nested span tree, job-relative nanoseconds.
    pub spans: Vec<TraceSpan>,
    /// Instant markers (`barrier`, `delivery`, `retry`, …) as
    /// `(label, stamp_ns)`.
    pub marks: Vec<(String, u64)>,
}

/// Profiling context carried by an opted-in job.
struct ProfileCtx {
    /// Nanoseconds the HTTP layer spent parsing the request body.
    parse_ns: u64,
    /// When admission began (submit entry).
    admission_start: Instant,
}

/// One admitted job as it travels the queue.
struct Job {
    id: u64,
    request: JobRequest,
    cancel: CancelToken,
    slot: OutcomeSlot,
    /// When the job entered the queue (queue-wait accounting).
    enqueued: Instant,
    /// `Some` when the job asked to be span-profiled.
    profile: Option<ProfileCtx>,
}

/// The caller's handle to an admitted job.
#[derive(Debug, Clone)]
pub struct JobTicket {
    id: u64,
    cancel: CancelToken,
    slot: OutcomeSlot,
}

impl JobTicket {
    /// The job id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Raise the job's cancellation flag (client disconnect, impatient
    /// caller): a queued job resolves `Cancelled` without running; a
    /// running job stops at the next cycle poll.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the job reaches its typed terminal outcome.
    pub fn wait(&self) -> JobOutcome {
        let (lock, cv) = &*self.slot;
        let mut slot = lock.lock().expect("ticket lock poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = cv.wait(slot).expect("ticket lock poisoned");
        }
    }

    /// [`JobTicket::wait`] with a bound; `None` when the timeout expires
    /// first (the chaos harness uses this to turn a would-be deadlock
    /// into a reported violation instead of a hung test).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let (lock, cv) = &*self.slot;
        let mut slot = lock.lock().expect("ticket lock poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let (guard, result) = cv
                .wait_timeout(slot, timeout)
                .expect("ticket lock poisoned");
            slot = guard;
            if result.timed_out() && slot.is_none() {
                return None;
            }
        }
    }

    /// The outcome if the job already finished.
    pub fn try_wait(&self) -> Option<JobOutcome> {
        self.slot.0.lock().expect("ticket lock poisoned").clone()
    }
}

struct DispatchState {
    queue: DrrQueue<Job>,
    quotas: QuotaLedger,
    metrics: ServiceMetrics,
    next_id: u64,
    paused: bool,
    shutdown: bool,
}

struct Inner {
    config: ServiceConfig,
    state: Mutex<DispatchState>,
    work_ready: Condvar,
    engine: Engine,
    /// Bounded ring of finished profiled-job traces (oldest evicted).
    traces: Mutex<VecDeque<JobTrace>>,
}

/// The multi-tenant job service.
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.inner.config.workers)
            .field("queue_capacity", &self.inner.config.queue_capacity)
            .finish()
    }
}

fn deliver(slot: &OutcomeSlot, outcome: JobOutcome) {
    let (lock, cv) = &**slot;
    *lock.lock().expect("ticket lock poisoned") = Some(outcome);
    cv.notify_all();
}

/// Simulated cycles a terminal outcome consumed, when the job ran.
fn outcome_cycles(outcome: &JobOutcome) -> Option<u64> {
    match outcome {
        JobOutcome::Completed {
            stats: Some(stats), ..
        } => Some(stats.cycles),
        JobOutcome::Degraded { stats, .. } => Some(stats.cycles),
        JobOutcome::Cancelled { partial, .. } | JobOutcome::TimedOut { partial, .. } => {
            Some(partial.cycles)
        }
        _ => None,
    }
}

/// Build the job's nanosecond timeline: the service phases as measured
/// wall intervals, with the machine run's cycle-domain span tree grafted
/// under the `run` span at 1 cycle = 1 ns.  The `run` span extends to
/// whichever is longer — the measured wall time or the grafted cycle
/// tree — so the machine spans always nest inside it.
#[allow(clippy::too_many_arguments)]
fn assemble_trace(
    id: u64,
    request: &JobRequest,
    outcome: &JobOutcome,
    capture: &RunCapture,
    parse_ns: u64,
    admission_ns: u64,
    queue_wait_ns: u64,
    acquire_ns: u64,
    run_wall_ns: u64,
) -> JobTrace {
    let parse_end = parse_ns;
    let admission_end = parse_end + admission_ns;
    let queue_end = admission_end + queue_wait_ns;
    let run_start = queue_end + acquire_ns;
    let run_end = run_start + run_wall_ns.max(capture.profile.last_cycle());
    let mut spans: Vec<TraceSpan> = vec![
        (Phase::Job.label().to_owned(), 0, run_end, None),
        (Phase::Parse.label().to_owned(), 0, parse_end, Some(0)),
        (
            Phase::Admission.label().to_owned(),
            parse_end,
            admission_end,
            Some(0),
        ),
        (
            Phase::QueueWait.label().to_owned(),
            admission_end,
            queue_end,
            Some(0),
        ),
        (
            Phase::PoolAcquire.label().to_owned(),
            queue_end,
            run_start,
            Some(0),
        ),
        (Phase::Run.label().to_owned(), run_start, run_end, Some(0)),
    ];
    let run_idx = spans.len() - 1;
    let base = spans.len();
    for (label, start, end, parent) in capture.profile.rows() {
        spans.push((
            label,
            run_start + start,
            run_start + end,
            Some(parent.map_or(run_idx, |p| base + p)),
        ));
    }
    let marks = capture
        .profile
        .marks()
        .iter()
        .map(|m| (m.phase.label().to_owned(), run_start + m.cycle))
        .collect();
    JobTrace {
        id,
        tenant: request.tenant.clone(),
        kind: request.kind.label(),
        outcome: outcome.label(),
        cycles: outcome_cycles(outcome).unwrap_or(0),
        spans,
        marks,
    }
}

impl Service {
    /// Start the service: spawns the worker pool and prewarms the
    /// machine pool so the first requests hit the zero-allocation path.
    pub fn start(config: ServiceConfig) -> Service {
        let workers = config.workers.max(1);
        let engine = Engine::new(config.engine);
        engine
            .pool()
            .prewarm(workers.min(config.engine.pool_capacity));
        let inner = Arc::new(Inner {
            state: Mutex::new(DispatchState {
                queue: DrrQueue::new(config.queue_capacity, config.drr_quantum),
                quotas: QuotaLedger::new(config.quota),
                metrics: ServiceMetrics::default(),
                next_id: 0,
                paused: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            engine,
            config,
            traces: Mutex::new(VecDeque::new()),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || Service::worker(&inner))
            })
            .collect();
        Service {
            inner,
            workers: Mutex::new(handles),
        }
    }

    fn worker(inner: &Inner) {
        loop {
            let job = {
                let mut state = inner.state.lock().expect("service lock poisoned");
                loop {
                    if state.shutdown && state.queue.depth() == 0 {
                        return;
                    }
                    if !state.paused {
                        if let Some(queued) = state.queue.pop() {
                            state.metrics.in_flight += 1;
                            break queued.payload;
                        }
                    }
                    state = inner.work_ready.wait(state).expect("service lock poisoned");
                }
            };
            let waited = job.enqueued.elapsed();
            let picked = Instant::now();
            let mut capture: Option<(RunCapture, u64, u64)> = None;
            let outcome = if job.cancel.is_cancelled() {
                // Cancelled while queued: resolve without running.
                JobOutcome::Cancelled {
                    at_cycle: 0,
                    partial: Default::default(),
                }
            } else if job.profile.is_some() {
                let run_start = Instant::now();
                let acquire_ns = (run_start - picked).as_nanos() as u64;
                let (outcome, run) = inner.engine.execute_profiled(&job.request, &job.cancel);
                let run_wall_ns = run_start.elapsed().as_nanos() as u64;
                capture = Some((run, acquire_ns, run_wall_ns));
                outcome
            } else {
                inner.engine.execute(&job.request, &job.cancel)
            };
            {
                let mut state = inner.state.lock().expect("service lock poisoned");
                state.metrics.in_flight -= 1;
                *state.metrics.outcomes.entry(outcome.label()).or_insert(0) += 1;
                state
                    .metrics
                    .per_tenant
                    .entry(job.request.tenant.clone())
                    .or_insert((0, 0))
                    .1 += 1;
                state
                    .metrics
                    .queue_wait_ms
                    .record(waited.as_millis() as u64);
                if let Some(cycles) = outcome_cycles(&outcome) {
                    state.metrics.run_cycles.record(cycles);
                }
                if let Some((run, _, _)) = &capture {
                    state.metrics.trace_events_dropped += run.events_dropped;
                }
            }
            if let (Some(ctx), Some((run, acquire_ns, run_wall_ns))) = (&job.profile, capture) {
                let admission_ns = (job.enqueued - ctx.admission_start).as_nanos() as u64;
                let trace = assemble_trace(
                    job.id,
                    &job.request,
                    &outcome,
                    &run,
                    ctx.parse_ns,
                    admission_ns,
                    waited.as_nanos() as u64,
                    acquire_ns,
                    run_wall_ns,
                );
                let mut traces = inner.traces.lock().expect("trace ring poisoned");
                if traces.len() == TRACE_RING {
                    traces.pop_front();
                }
                traces.push_back(trace);
            }
            deliver(&job.slot, outcome);
        }
    }

    /// Offer a request at `now_ms` on the caller's clock.  Admission is
    /// all-or-nothing: a typed [`Rejection`] (with a retry hint where
    /// retrying helps) or a [`JobTicket`] that is guaranteed a typed
    /// terminal outcome.
    pub fn submit(&self, now_ms: u64, request: JobRequest) -> Result<JobTicket, Rejection> {
        self.submit_inner(now_ms, request, None)
    }

    /// [`Service::submit`] with span profiling: the job's service and
    /// machine phases are traced and the assembled timeline retained in
    /// a bounded ring ([`Service::traces`]).  `parse_ns` is how long the
    /// caller spent parsing the request (the timeline's first phase).
    pub fn submit_profiled(
        &self,
        now_ms: u64,
        request: JobRequest,
        parse_ns: u64,
    ) -> Result<JobTicket, Rejection> {
        self.submit_inner(
            now_ms,
            request,
            Some(ProfileCtx {
                parse_ns,
                admission_start: Instant::now(),
            }),
        )
    }

    fn submit_inner(
        &self,
        now_ms: u64,
        request: JobRequest,
        profile: Option<ProfileCtx>,
    ) -> Result<JobTicket, Rejection> {
        let mut state = self.inner.state.lock().expect("service lock poisoned");
        state.metrics.submitted += 1;
        if state.shutdown {
            state.metrics.rejected_shutdown += 1;
            return Err(Rejection::ShuttingDown);
        }
        if let Err(rejection) = validate(&request, &self.inner.config.engine.limits) {
            state.metrics.rejected_oversized += 1;
            return Err(rejection);
        }
        // Queue check before the quota charge, so a full queue does not
        // also drain the tenant's bucket.
        let depth = state.queue.depth();
        let capacity = state.queue.capacity();
        if depth >= capacity {
            state.metrics.rejected_queue_full += 1;
            return Err(Rejection::QueueFull {
                depth,
                capacity,
                retry_after_ms: self.inner.config.est_ms_per_job * (depth as u64 + 1),
            });
        }
        let cost = request.kind.cost();
        if let Err(wait_ms) = state.quotas.charge(&request.tenant, cost, now_ms) {
            state.metrics.rejected_quota += 1;
            return Err(Rejection::QuotaExhausted {
                needed: cost,
                retry_after_ms: wait_ms,
            });
        }
        state.next_id += 1;
        let id = state.next_id;
        let cancel = CancelToken::new();
        let slot: OutcomeSlot = Arc::new((Mutex::new(None), Condvar::new()));
        let tenant = request.tenant.clone();
        let job = QueuedJob {
            payload: Job {
                id,
                request,
                cancel: cancel.clone(),
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
                profile,
            },
            cost,
        };
        state
            .queue
            .push(&tenant, job)
            .unwrap_or_else(|_| unreachable!("depth checked under the same lock"));
        state.metrics.admitted += 1;
        state.metrics.peak_depth = state.queue.peak_depth();
        state.metrics.per_tenant.entry(tenant).or_insert((0, 0)).0 += 1;
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(JobTicket { id, cancel, slot })
    }

    /// Stop dispatching (queued jobs stay queued).  The chaos harness
    /// uses this to make queue-full shedding exactly reproducible.
    pub fn pause(&self) {
        self.inner
            .state
            .lock()
            .expect("service lock poisoned")
            .paused = true;
    }

    /// Resume dispatching.
    pub fn resume(&self) {
        self.inner
            .state
            .lock()
            .expect("service lock poisoned")
            .paused = false;
        self.inner.work_ready.notify_all();
    }

    /// A snapshot of the counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let state = self.inner.state.lock().expect("service lock poisoned");
        let mut metrics = state.metrics.clone();
        metrics.peak_depth = state.queue.peak_depth();
        metrics
    }

    /// The engine (pool inspection for tests and warm-up).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// A snapshot of the retained profiled-job traces, oldest first.
    pub fn traces(&self) -> Vec<JobTrace> {
        self.inner
            .traces
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Close job `id`'s trace with its `respond` phase: the HTTP layer
    /// calls this after writing the response, appending a `respond` span
    /// and extending the job root to cover it.  A no-op when the trace
    /// was already evicted or the id never profiled.
    pub fn finish_trace(&self, id: u64, respond_ns: u64) {
        let mut traces = self.inner.traces.lock().expect("trace ring poisoned");
        if let Some(trace) = traces.iter_mut().rev().find(|t| t.id == id) {
            let start = trace.spans[0].2;
            trace.spans.push((
                Phase::Respond.label().to_owned(),
                start,
                start + respond_ns,
                Some(0),
            ));
            trace.spans[0].2 = start + respond_ns;
        }
    }

    /// Drain and stop: refuse new work, let the workers finish every
    /// queued job (each still reaches its typed outcome), then join the
    /// pool.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("service lock poisoned");
            state.shutdown = true;
            state.paused = false;
        }
        self.inner.work_ready.notify_all();
        let mut workers = self.workers.lock().expect("worker handles poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::JobKind;

    fn config(queue: usize, workers: usize) -> ServiceConfig {
        ServiceConfig {
            queue_capacity: queue,
            workers,
            ..ServiceConfig::default()
        }
    }

    fn simulate(tenant: &str, iters: i64) -> JobRequest {
        JobRequest {
            tenant: tenant.into(),
            kind: JobKind::Simulate {
                cores: 1,
                iters,
                scheduler: crate::proto::Scheduler::Event,
                fault_seed: None,
            },
            deadline_cycles: None,
        }
    }

    #[test]
    fn a_submitted_job_completes() {
        let service = Service::start(config(8, 2));
        let ticket = service.submit(0, simulate("acme", 40)).unwrap();
        match ticket.wait() {
            JobOutcome::Completed {
                stats: Some(stats), ..
            } => assert!(stats.cycles > 40),
            other => panic!("{other:?}"),
        }
        let metrics = service.metrics();
        assert_eq!((metrics.admitted, metrics.finished()), (1, 1));
        service.shutdown();
    }

    #[test]
    fn queue_full_is_a_typed_rejection_with_a_hint() {
        let service = Service::start(config(2, 1));
        service.pause();
        let _first = service.submit(0, simulate("acme", 10)).unwrap();
        let _second = service.submit(0, simulate("acme", 10)).unwrap();
        match service.submit(0, simulate("acme", 10)) {
            Err(Rejection::QueueFull {
                depth: 2,
                capacity: 2,
                retry_after_ms,
            }) => assert!(retry_after_ms > 0),
            other => panic!("{other:?}"),
        }
        service.resume();
        service.shutdown();
        assert_eq!(service.metrics().rejected_queue_full, 1);
    }

    #[test]
    fn quota_exhaustion_rejects_with_a_refill_hint() {
        let mut cfg = config(64, 1);
        cfg.quota = QuotaConfig {
            capacity: 2,
            refill_num: 1,
            refill_den: 10,
        };
        let service = Service::start(cfg);
        service.submit(0, simulate("acme", 10)).unwrap();
        service.submit(0, simulate("acme", 10)).unwrap();
        match service.submit(0, simulate("acme", 10)) {
            Err(Rejection::QuotaExhausted { retry_after_ms, .. }) => {
                assert_eq!(retry_after_ms, 10)
            }
            other => panic!("{other:?}"),
        }
        // Another tenant is unaffected; time refills the bucket.
        service.submit(0, simulate("other", 10)).unwrap();
        service.submit(20, simulate("acme", 10)).unwrap();
        service.shutdown();
    }

    #[test]
    fn cancelling_a_queued_job_resolves_it_without_running() {
        let service = Service::start(config(8, 1));
        service.pause();
        let ticket = service.submit(0, simulate("acme", 1_000_000)).unwrap();
        ticket.cancel();
        service.resume();
        match ticket.wait() {
            JobOutcome::Cancelled { at_cycle: 0, .. } => {}
            other => panic!("{other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs_then_refuses() {
        let service = Service::start(config(8, 1));
        service.pause();
        let tickets: Vec<JobTicket> = (0..4)
            .map(|_| service.submit(0, simulate("acme", 20)).unwrap())
            .collect();
        service.resume();
        service.shutdown();
        for ticket in &tickets {
            assert!(
                matches!(ticket.wait(), JobOutcome::Completed { .. }),
                "drained job lost its outcome"
            );
        }
        assert!(matches!(
            service.submit(0, simulate("acme", 10)),
            Err(Rejection::ShuttingDown)
        ));
    }

    #[test]
    fn oversized_requests_never_reach_the_queue() {
        let service = Service::start(config(8, 1));
        let request = JobRequest {
            tenant: "t".into(),
            kind: JobKind::Simulate {
                cores: 100_000,
                iters: 10,
                scheduler: crate::proto::Scheduler::Event,
                fault_seed: None,
            },
            deadline_cycles: None,
        };
        assert!(matches!(
            service.submit(0, request),
            Err(Rejection::Oversized { .. })
        ));
        assert_eq!(service.metrics().admitted, 0);
        service.shutdown();
    }
}

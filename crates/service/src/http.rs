//! A hand-rolled HTTP/1.1 front end over [`std::net::TcpListener`] — no
//! framework, no new dependencies, and defensive by construction: every
//! connection carries a read and a write timeout, the request head and
//! body are capped, and a slow-loris client times out on its own
//! connection thread without ever pinning a job worker.
//!
//! Routes:
//!
//! * `POST /jobs` — a `key=value&…` body ([`crate::proto::parse_request`]);
//!   replies `200` with the outcome JSON, or a typed 4xx with a
//!   `Retry-After` header where retrying helps.  Add `profile=true` to
//!   the body and the job is span-profiled end to end; the assembled
//!   timeline lands in the trace ring behind `GET /trace/jobs`.
//! * `GET /metrics` — counter snapshot as JSON, or Prometheus text
//!   exposition with `?format=prometheus` (or `Accept: text/plain`).
//! * `GET /trace/jobs` — recent profiled jobs as a Chrome trace-event
//!   document (load it in `chrome://tracing` or Perfetto).
//! * `GET /healthz` — liveness probe.
//! * `GET /perf/*` — read-only perf-history queries, served when a
//!   [`PerfSource`] is mounted via [`serve_with_perf`] (see
//!   [`crate::perf`]); 404 otherwise.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skilltax_report::prometheus::{PromWriter, PROMETHEUS_CONTENT_TYPE};
use skilltax_report::trace::{chrome_trace, TraceTrack};

use crate::perf::{self, PerfSource};
use crate::proto::{outcome_json, parse_request_profiled, rejection_json, Rejection};
use crate::service::{Service, ServiceMetrics};

const JSON_CONTENT_TYPE: &str = "application/json";

/// Environment knob for the listen address.
pub const ADDR_ENV: &str = "SKILLTAX_SERVICE_ADDR";

/// HTTP front-end configuration.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Listen address (`SKILLTAX_SERVICE_ADDR` overrides the default
    /// `127.0.0.1:0` when [`HttpConfig::default`] builds the config).
    pub addr: String,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Cap on the request line plus headers.
    pub max_header_bytes: usize,
    /// Cap on the request body.
    pub max_body_bytes: usize,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            addr: std::env::var(ADDR_ENV).unwrap_or_else(|_| "127.0.0.1:0".to_string()),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 16 * 1024,
        }
    }
}

/// A running HTTP server; dropping it (or calling
/// [`HttpServer::shutdown`]) stops the accept loop.
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl HttpServer {
    /// The bound address (useful with the `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting connections and join the accept loop.  In-flight
    /// connection threads finish on their own timeouts.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `service` over HTTP.  Returns once the socket is bound and the
/// accept loop is running.
pub fn serve(service: Arc<Service>, config: HttpConfig) -> io::Result<HttpServer> {
    serve_with_perf(service, config, None)
}

/// Like [`serve`], additionally mounting the read-only `GET /perf/*`
/// endpoints on `perf` (see [`crate::perf`]).  With `None` the perf
/// routes answer 404, keeping the job-only deployment unchanged.
pub fn serve_with_perf(
    service: Arc<Service>,
    config: HttpConfig,
    perf: Option<Arc<dyn PerfSource>>,
) -> io::Result<HttpServer> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let epoch = Instant::now();
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&service);
            let config = config.clone();
            let perf = perf.clone();
            // One short-lived thread per connection: its lifetime is
            // bounded by the read/write timeouts, and it never borrows a
            // job worker, so a stalled client cannot stall the queue.
            std::thread::spawn(move || {
                let _ = handle_connection(&service, &config, epoch, perf.as_deref(), stream);
            });
        }
    });
    Ok(HttpServer {
        local_addr,
        stop,
        accept: Some(accept),
    })
}

fn metrics_json(m: &ServiceMetrics) -> String {
    let outcomes: Vec<String> = m
        .outcomes
        .iter()
        .map(|(label, count)| format!("\"{label}\":{count}"))
        .collect();
    format!(
        "{{\"submitted\":{},\"admitted\":{},\"rejected\":{},\"finished\":{},\
         \"in_flight\":{},\"peak_depth\":{},\"trace_events_dropped\":{},\"outcomes\":{{{}}}}}",
        m.submitted,
        m.admitted,
        m.rejected(),
        m.finished(),
        m.in_flight,
        m.peak_depth,
        m.trace_events_dropped,
        outcomes.join(",")
    )
}

/// Render a [`ServiceMetrics`] snapshot as Prometheus text exposition
/// (format 0.0.4) — what `GET /metrics?format=prometheus` serves.
/// Tenant ids appear as escaped label values, and the log2 wait/cycle
/// histograms flatten into cumulative `_bucket` series.
pub fn prometheus_text(m: &ServiceMetrics) -> String {
    let mut w = PromWriter::new();
    w.family(
        "skilltax_jobs_submitted_total",
        "counter",
        "Requests offered to submit.",
    )
    .sample("skilltax_jobs_submitted_total", &[], m.submitted);
    w.family(
        "skilltax_jobs_admitted_total",
        "counter",
        "Requests admitted to the queue.",
    )
    .sample("skilltax_jobs_admitted_total", &[], m.admitted);
    w.family(
        "skilltax_jobs_rejected_total",
        "counter",
        "Requests refused, by reason.",
    );
    for (reason, count) in [
        ("queue_full", m.rejected_queue_full),
        ("quota", m.rejected_quota),
        ("oversized", m.rejected_oversized),
        ("shutdown", m.rejected_shutdown),
    ] {
        w.sample("skilltax_jobs_rejected_total", &[("reason", reason)], count);
    }
    w.family(
        "skilltax_jobs_finished_total",
        "counter",
        "Terminal outcomes, by label.",
    );
    for (label, count) in &m.outcomes {
        w.sample(
            "skilltax_jobs_finished_total",
            &[("outcome", label)],
            *count,
        );
    }
    w.family(
        "skilltax_jobs_in_flight",
        "gauge",
        "Jobs currently executing.",
    )
    .sample("skilltax_jobs_in_flight", &[], m.in_flight as u64);
    w.family(
        "skilltax_queue_peak_depth",
        "gauge",
        "Deepest the queue has been.",
    )
    .sample("skilltax_queue_peak_depth", &[], m.peak_depth as u64);
    w.family(
        "skilltax_tenant_jobs_total",
        "counter",
        "Per-tenant job counts, by stage.",
    );
    for (tenant, (admitted, finished)) in &m.per_tenant {
        w.sample(
            "skilltax_tenant_jobs_total",
            &[("tenant", tenant), ("stage", "admitted")],
            *admitted,
        );
        w.sample(
            "skilltax_tenant_jobs_total",
            &[("tenant", tenant), ("stage", "finished")],
            *finished,
        );
    }
    w.family(
        "skilltax_trace_events_dropped_total",
        "counter",
        "Telemetry events evicted from bounded trace rings.",
    )
    .sample(
        "skilltax_trace_events_dropped_total",
        &[],
        m.trace_events_dropped,
    );
    w.family(
        "skilltax_queue_wait_ms",
        "histogram",
        "Queue wait per admitted job, milliseconds.",
    );
    w.log2_histogram(
        "skilltax_queue_wait_ms",
        &[],
        m.queue_wait_ms.bucket_counts(),
        m.queue_wait_ms.sum,
        m.queue_wait_ms.count,
    );
    w.family(
        "skilltax_run_cycles",
        "histogram",
        "Simulated cycles consumed per finished job.",
    );
    w.log2_histogram(
        "skilltax_run_cycles",
        &[],
        m.run_cycles.bucket_counts(),
        m.run_cycles.sum,
        m.run_cycles.count,
    );
    w.finish()
}

fn trace_jobs_json(service: &Service) -> String {
    let tracks: Vec<TraceTrack> = service
        .traces()
        .into_iter()
        .map(|t| TraceTrack {
            pid: t.id,
            tid: 0,
            name: format!("job {} {}/{} ({})", t.id, t.tenant, t.kind, t.outcome),
            spans: t.spans,
            marks: t.marks,
            // Span stamps are nanoseconds; Chrome trace ts/dur are µs.
            scale: 1e-3,
        })
        .collect();
    chrome_trace(&tracks).emit()
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    retry_after_ms: Option<u64>,
    body: &str,
) -> io::Result<()> {
    let retry_header = match retry_after_ms {
        // Retry-After is in whole seconds; round up so "soon" is never 0.
        Some(ms) => format!("Retry-After: {}\r\n", ms.div_ceil(1_000).max(1)),
        None => String::new(),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n{retry_header}\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

fn rejection_response(stream: &mut TcpStream, rejection: &Rejection) -> io::Result<()> {
    let status = match rejection {
        Rejection::QueueFull { .. } | Rejection::QuotaExhausted { .. } => "429 Too Many Requests",
        Rejection::Oversized { .. } => "413 Payload Too Large",
        Rejection::Malformed(_) => "400 Bad Request",
        Rejection::ShuttingDown => "503 Service Unavailable",
    };
    write_response(
        stream,
        status,
        JSON_CONTENT_TYPE,
        rejection.retry_after_ms(),
        &rejection_json(rejection),
    )
}

fn plain_error(stream: &mut TcpStream, status: &str, message: &str) -> io::Result<()> {
    write_response(
        stream,
        status,
        JSON_CONTENT_TYPE,
        None,
        &format!("{{\"error\":\"{message}\"}}"),
    )
}

/// Read until the end of the header block, enforcing the header cap.
/// Returns the raw bytes read so far (head plus any body prefix) and the
/// offset where the body starts.
fn read_head(
    stream: &mut TcpStream,
    max_header_bytes: usize,
) -> io::Result<Result<(Vec<u8>, usize), &'static str>> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = find_header_end(&buf) {
            return Ok(Ok((buf, pos)));
        }
        if buf.len() > max_header_bytes {
            return Ok(Err("431 Request Header Fields Too Large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            // Peer closed mid-header.
            return Ok(Err("400 Bad Request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Strict `Content-Length` extraction over the parsed header lines.
///
/// Absent means 0 (a GET without a body).  Anything else malformed is a
/// hard error, never a silent default: a non-digit value (including a
/// negative sign), a value that overflows `usize`, or duplicated
/// headers that disagree — the classic request-smuggling shapes — all
/// reject with the reason the 400 body carries.
fn parse_content_length<'a>(lines: impl Iterator<Item = &'a str>) -> Result<usize, &'static str> {
    let mut length: Option<usize> = None;
    for line in lines {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        if !key.trim().eq_ignore_ascii_case("content-length") {
            continue;
        }
        let value = value.trim();
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return Err("malformed Content-Length");
        }
        let parsed: usize = value.parse().map_err(|_| "Content-Length overflows")?;
        match length {
            Some(previous) if previous != parsed => {
                return Err("conflicting Content-Length headers");
            }
            _ => length = Some(parsed),
        }
    }
    Ok(length.unwrap_or(0))
}

fn handle_connection(
    service: &Service,
    config: &HttpConfig,
    epoch: Instant,
    perf: Option<&dyn PerfSource>,
    mut stream: TcpStream,
) -> io::Result<()> {
    let result = serve_once(service, config, epoch, perf, &mut stream);
    // Graceful close: signal EOF to the peer first, then drain whatever
    // request bytes are still in flight (bounded by the read timeout),
    // so a capped request sees the error response instead of a reset.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    result
}

fn serve_once(
    service: &Service,
    config: &HttpConfig,
    epoch: Instant,
    perf: Option<&dyn PerfSource>,
    stream: &mut TcpStream,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let (buf, body_start) = match read_head(stream, config.max_header_bytes) {
        Ok(Ok(head)) => head,
        Ok(Err(status)) => return plain_error(stream, status, "bad request head"),
        // A read timeout is the slow-loris case: answer 408 and hang up.
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return plain_error(stream, "408 Request Timeout", "request head timed out");
        }
        Err(e) => return Err(e),
    };
    let head = String::from_utf8_lossy(&buf[..body_start]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (
        parts.next().unwrap_or_default().to_string(),
        parts.next().unwrap_or_default().to_string(),
    );
    let header_lines: Vec<&str> = lines.collect();
    let content_length = match parse_content_length(header_lines.iter().copied()) {
        Ok(n) => n,
        Err(reason) => return plain_error(stream, "400 Bad Request", reason),
    };
    let accept = header_value(header_lines.iter().copied(), "accept").unwrap_or("");
    if path == "/perf" || path.starts_with("/perf/") || path.starts_with("/perf?") {
        return match (method.as_str(), perf) {
            ("GET", Some(source)) => {
                let (status, body) = perf::respond(source, &path);
                write_response(stream, status, JSON_CONTENT_TYPE, None, &body)
            }
            (_, Some(_)) => plain_error(stream, "405 Method Not Allowed", "perf routes are GET"),
            (_, None) => plain_error(stream, "404 Not Found", "no perf store mounted"),
        };
    }
    // Routing splits the query string off; handlers that care parse it.
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, query),
        None => (path.as_str(), ""),
    };
    match (method.as_str(), route) {
        ("GET", "/healthz") => {
            write_response(stream, "200 OK", JSON_CONTENT_TYPE, None, "{\"ok\":true}")
        }
        ("GET", "/metrics") => {
            let metrics = service.metrics();
            if wants_prometheus(query, accept) {
                let body = prometheus_text(&metrics);
                write_response(stream, "200 OK", PROMETHEUS_CONTENT_TYPE, None, &body)
            } else {
                let body = metrics_json(&metrics);
                write_response(stream, "200 OK", JSON_CONTENT_TYPE, None, &body)
            }
        }
        ("GET", "/trace/jobs") => {
            let body = trace_jobs_json(service);
            write_response(stream, "200 OK", JSON_CONTENT_TYPE, None, &body)
        }
        ("POST", "/jobs") => {
            if content_length > config.max_body_bytes {
                return plain_error(stream, "413 Payload Too Large", "body over cap");
            }
            let mut body = buf[body_start..].to_vec();
            while body.len() < content_length {
                let mut chunk = [0u8; 1024];
                let n = match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        // Slow-loris body: typed timeout, connection done.
                        return plain_error(
                            stream,
                            "408 Request Timeout",
                            "request body timed out",
                        );
                    }
                    Err(e) => return Err(e),
                };
                body.extend_from_slice(&chunk[..n]);
            }
            body.truncate(content_length);
            let body = String::from_utf8_lossy(&body).to_string();
            let parse_start = Instant::now();
            let (request, profiled) = match parse_request_profiled(&body) {
                Ok(parsed) => parsed,
                Err(rejection) => return rejection_response(stream, &rejection),
            };
            let parse_ns = parse_start.elapsed().as_nanos() as u64;
            let now_ms = epoch.elapsed().as_millis() as u64;
            let submitted = if profiled {
                service.submit_profiled(now_ms, request, parse_ns)
            } else {
                service.submit(now_ms, request)
            };
            match submitted {
                Ok(ticket) => {
                    let id = ticket.id();
                    let outcome = ticket.wait();
                    let respond_start = Instant::now();
                    let result = write_response(
                        stream,
                        "200 OK",
                        JSON_CONTENT_TYPE,
                        None,
                        &outcome_json(&outcome),
                    );
                    if profiled {
                        // The respond span is only knowable after the
                        // bytes are on the wire; stitch it in post-hoc.
                        service.finish_trace(id, respond_start.elapsed().as_nanos() as u64);
                    }
                    result
                }
                Err(rejection) => rejection_response(stream, &rejection),
            }
        }
        _ => plain_error(stream, "404 Not Found", "no such route"),
    }
}

/// First value of a header (case-insensitive name) among the raw lines.
fn header_value<'a>(lines: impl Iterator<Item = &'a str>, name: &str) -> Option<&'a str> {
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.trim().eq_ignore_ascii_case(name) {
                return Some(value.trim());
            }
        }
    }
    None
}

/// `?format=prometheus` wins; otherwise an `Accept` preferring
/// `text/plain` selects the exposition format.  JSON stays the default
/// so existing scrapers keep working.
fn wants_prometheus(query: &str, accept: &str) -> bool {
    if query.split('&').any(|pair| pair == "format=prometheus") {
        return true;
    }
    if query.split('&').any(|pair| pair == "format=json") {
        return false;
    }
    accept
        .split(',')
        .any(|part| part.trim().split(';').next() == Some("text/plain"))
}

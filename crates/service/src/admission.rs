//! Admission control: a bounded job queue with deficit-round-robin
//! dispatch across tenants.
//!
//! The queue is a pure data structure (no locks, no clocks) so its
//! behaviour is deterministic and unit-testable; the service wraps it in
//! a mutex.  Bounding happens at the *front door*: a push beyond
//! capacity is refused and the caller turns that into a typed
//! [`Rejection::QueueFull`](crate::proto::Rejection::QueueFull) with a
//! retry-after hint — the queue itself can never grow past its bound,
//! which is the chaos suite's bounded-depth invariant.

use std::collections::VecDeque;

/// One queued unit of work, opaque to the queue except for its DRR cost.
#[derive(Debug)]
pub struct QueuedJob<T> {
    /// The work item.
    pub payload: T,
    /// Deficit-round-robin cost (quota tokens double as service weight).
    pub cost: u64,
}

#[derive(Debug)]
struct TenantLane<T> {
    tenant: String,
    jobs: VecDeque<QueuedJob<T>>,
    deficit: u64,
}

/// A bounded multi-tenant queue served deficit-round-robin: each lane
/// accumulates `quantum` deficit per scheduling visit and pays the cost
/// of every job it dequeues, so a tenant flooding expensive jobs cannot
/// starve a tenant submitting cheap ones.
#[derive(Debug)]
pub struct DrrQueue<T> {
    lanes: Vec<TenantLane<T>>,
    cursor: usize,
    depth: usize,
    peak_depth: usize,
    capacity: usize,
    quantum: u64,
}

impl<T> DrrQueue<T> {
    /// An empty queue bounded at `capacity` jobs, with the given DRR
    /// quantum (deficit granted per lane visit; `0` is clamped to 1).
    pub fn new(capacity: usize, quantum: u64) -> DrrQueue<T> {
        DrrQueue {
            lanes: Vec::new(),
            cursor: 0,
            depth: 0,
            peak_depth: 0,
            capacity,
            quantum: quantum.max(1),
        }
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The deepest the queue has ever been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue a job for `tenant`.  Refused (returning the job) when the
    /// queue is at capacity.
    pub fn push(&mut self, tenant: &str, job: QueuedJob<T>) -> Result<(), QueuedJob<T>> {
        if self.depth >= self.capacity {
            return Err(job);
        }
        let lane = match self.lanes.iter_mut().find(|l| l.tenant == tenant) {
            Some(lane) => lane,
            None => {
                self.lanes.push(TenantLane {
                    tenant: tenant.to_string(),
                    jobs: VecDeque::new(),
                    deficit: 0,
                });
                self.lanes.last_mut().expect("lane just pushed")
            }
        };
        lane.jobs.push_back(job);
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
        Ok(())
    }

    /// Dequeue the next job under DRR.  `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<QueuedJob<T>> {
        if self.depth == 0 {
            return None;
        }
        // At most two passes with a quantum grant each are needed once
        // some lane is non-empty, because costs are bounded by the grant
        // loop below; guard with a generous visit budget anyway.
        let lanes = self.lanes.len();
        let mut visits = 0usize;
        loop {
            let lane = &mut self.lanes[self.cursor % lanes];
            if lane.jobs.is_empty() {
                // An idle lane holds no deficit — classic DRR, so a
                // tenant cannot bank credit while absent.
                lane.deficit = 0;
                self.cursor = (self.cursor + 1) % lanes;
                continue;
            }
            let cost = lane.jobs.front().expect("non-empty lane").cost;
            if lane.deficit >= cost {
                lane.deficit -= cost;
                self.depth -= 1;
                return lane.jobs.pop_front();
            }
            lane.deficit += self.quantum;
            self.cursor = (self.cursor + 1) % lanes;
            visits += 1;
            // Every `lanes` visits each busy lane gains a quantum, so a
            // head job of cost C is served within C/quantum rounds.
            debug_assert!(
                visits / lanes <= 1 + (cost / self.quantum) as usize,
                "DRR failed to converge"
            );
        }
    }

    /// Drain every queued job in lane order (used at shutdown so each
    /// admitted job can still be resolved with a typed outcome).
    pub fn drain(&mut self) -> Vec<QueuedJob<T>> {
        let mut out = Vec::with_capacity(self.depth);
        for lane in &mut self.lanes {
            out.extend(lane.jobs.drain(..));
        }
        self.depth = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tag: u32, cost: u64) -> QueuedJob<u32> {
        QueuedJob { payload: tag, cost }
    }

    #[test]
    fn capacity_bound_is_hard() {
        let mut q = DrrQueue::new(2, 1);
        q.push("a", job(1, 1)).unwrap();
        q.push("a", job(2, 1)).unwrap();
        assert!(q.push("a", job(3, 1)).is_err());
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak_depth(), 2);
        q.pop().unwrap();
        q.push("a", job(3, 1)).unwrap();
        assert_eq!(q.peak_depth(), 2, "bound never exceeded");
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut q = DrrQueue::new(16, 1);
        for i in 0..3 {
            q.push("a", job(i, 1)).unwrap();
            q.push("b", job(100 + i, 1)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|j| j.payload)).collect();
        assert_eq!(order, vec![0, 100, 1, 101, 2, 102]);
    }

    #[test]
    fn expensive_jobs_yield_the_lane() {
        // Tenant a floods cost-3 jobs, tenant b submits cost-1 jobs:
        // with quantum 1, b gets roughly three jobs through per a job.
        let mut q = DrrQueue::new(32, 1);
        for i in 0..4 {
            q.push("a", job(i, 3)).unwrap();
        }
        for i in 0..9 {
            q.push("b", job(100 + i, 1)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|j| j.payload)).collect();
        let first_a = order.iter().position(|&t| t < 100).unwrap();
        let b_before_first_a = order[..first_a].len();
        assert!(
            (2..=4).contains(&b_before_first_a),
            "expected ~3 cheap jobs before the first expensive one, got order {order:?}"
        );
        assert_eq!(order.len(), 13, "nothing lost");
    }

    #[test]
    fn idle_lanes_bank_no_deficit() {
        let mut q = DrrQueue::new(16, 1);
        q.push("a", job(0, 1)).unwrap();
        // Drain a few rounds so lane a would have banked deficit if idle
        // lanes kept it.
        assert_eq!(q.pop().unwrap().payload, 0);
        assert!(q.pop().is_none());
        q.push("b", job(1, 1)).unwrap();
        q.push("a", job(2, 2)).unwrap();
        // b's cheap job is not starved by a's banked credit.
        assert_eq!(q.pop().unwrap().payload, 1);
    }

    #[test]
    fn drain_returns_everything() {
        let mut q = DrrQueue::new(16, 1);
        q.push("a", job(0, 1)).unwrap();
        q.push("b", job(1, 1)).unwrap();
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(q.depth(), 0);
        assert!(q.pop().is_none());
    }
}

//! Per-tenant token buckets.
//!
//! Every quota decision runs on a *caller-supplied* millisecond clock:
//! the HTTP layer feeds wall time, the chaos harness feeds a scripted
//! virtual clock, so admission decisions replay bit-identically under
//! any worker count.

use std::collections::HashMap;

/// Token-bucket parameters shared by every tenant.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Bucket capacity in tokens (the burst budget).
    pub capacity: u64,
    /// Tokens refilled per millisecond, expressed as a rational
    /// `refill_num / refill_den` so the arithmetic stays exact.
    pub refill_num: u64,
    /// Denominator of the refill rate (milliseconds per `refill_num`
    /// tokens).
    pub refill_den: u64,
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        // 64-token burst, one token per 10 ms (100 jobs/second steady).
        QuotaConfig {
            capacity: 64,
            refill_num: 1,
            refill_den: 10,
        }
    }
}

/// One tenant's bucket: exact integer accounting, no floats, no drift.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Tokens available, scaled by `refill_den` (so refills of
    /// `refill_num` per ms stay integral).
    scaled_tokens: u64,
    /// Last refill timestamp.
    at_ms: u64,
}

/// The quota ledger across tenants.
#[derive(Debug)]
pub struct QuotaLedger {
    config: QuotaConfig,
    buckets: HashMap<String, Bucket>,
}

impl QuotaLedger {
    /// An empty ledger under the given config.
    pub fn new(config: QuotaConfig) -> QuotaLedger {
        QuotaLedger {
            config,
            buckets: HashMap::new(),
        }
    }

    fn scaled_capacity(&self) -> u64 {
        self.config.capacity.saturating_mul(self.config.refill_den)
    }

    /// Refill `bucket` up to `now_ms` (idempotent for equal timestamps;
    /// a caller clock that steps backwards is clamped, never panics).
    fn refill(&self, bucket: &mut Bucket, now_ms: u64) {
        let elapsed = now_ms.saturating_sub(bucket.at_ms);
        let gained = elapsed.saturating_mul(self.config.refill_num);
        bucket.scaled_tokens =
            (bucket.scaled_tokens.saturating_add(gained)).min(self.scaled_capacity());
        bucket.at_ms = bucket.at_ms.max(now_ms);
    }

    /// Try to charge `tokens` to `tenant` at `now_ms`.  On refusal,
    /// returns the milliseconds until the bucket will hold that many
    /// tokens (the client's `Retry-After` hint).
    pub fn charge(&mut self, tenant: &str, tokens: u64, now_ms: u64) -> Result<(), u64> {
        let capacity = self.scaled_capacity();
        let mut bucket = *self.buckets.get(tenant).unwrap_or(&Bucket {
            scaled_tokens: capacity,
            at_ms: now_ms,
        });
        self.refill(&mut bucket, now_ms);
        let need = tokens.saturating_mul(self.config.refill_den);
        if need > capacity {
            // A single job bigger than the whole bucket can never pass:
            // report a full-refill wait so the client backs off hard.
            let wait = capacity.div_ceil(self.config.refill_num.max(1));
            self.buckets.insert(tenant.to_string(), bucket);
            return Err(wait.max(1));
        }
        if bucket.scaled_tokens >= need {
            bucket.scaled_tokens -= need;
            self.buckets.insert(tenant.to_string(), bucket);
            Ok(())
        } else {
            let deficit = need - bucket.scaled_tokens;
            let wait = deficit.div_ceil(self.config.refill_num.max(1));
            self.buckets.insert(tenant.to_string(), bucket);
            Err(wait.max(1))
        }
    }

    /// Tokens currently available to `tenant` at `now_ms` (whole tokens).
    pub fn available(&mut self, tenant: &str, now_ms: u64) -> u64 {
        let capacity = self.scaled_capacity();
        let mut bucket = *self.buckets.get(tenant).unwrap_or(&Bucket {
            scaled_tokens: capacity,
            at_ms: now_ms,
        });
        self.refill(&mut bucket, now_ms);
        self.buckets.insert(tenant.to_string(), bucket);
        bucket.scaled_tokens / self.config.refill_den.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> QuotaLedger {
        QuotaLedger::new(QuotaConfig {
            capacity: 4,
            refill_num: 1,
            refill_den: 10,
        })
    }

    #[test]
    fn burst_spends_the_bucket_then_refuses_with_a_hint() {
        let mut q = ledger();
        for _ in 0..4 {
            q.charge("acme", 1, 0).unwrap();
        }
        let wait = q.charge("acme", 1, 0).unwrap_err();
        assert_eq!(wait, 10, "one token refills in 10 ms");
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let mut q = ledger();
        for _ in 0..4 {
            q.charge("acme", 1, 0).unwrap();
        }
        assert!(q.charge("acme", 1, 5).is_err(), "half a token is not one");
        q.charge("acme", 1, 10).unwrap();
        assert_eq!(q.available("acme", 10), 0);
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let mut q = ledger();
        for _ in 0..4 {
            q.charge("noisy", 1, 0).unwrap();
        }
        assert!(q.charge("noisy", 1, 0).is_err());
        q.charge("quiet", 1, 0).unwrap();
    }

    #[test]
    fn job_bigger_than_the_bucket_reports_a_full_refill_wait() {
        let mut q = ledger();
        let wait = q.charge("acme", 100, 0).unwrap_err();
        assert_eq!(wait, 40, "a 4-token bucket refills in 40 ms");
    }

    #[test]
    fn backwards_clock_is_clamped() {
        let mut q = ledger();
        q.charge("acme", 4, 100).unwrap();
        // Clock steps back: no refill, no panic, refusal with a hint.
        assert!(q.charge("acme", 1, 50).is_err());
        // Forward again: refill resumes from the furthest point seen.
        q.charge("acme", 1, 110).unwrap();
    }
}

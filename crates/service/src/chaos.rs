//! Deterministic chaos soak: a seeded cast of hostile and well-behaved
//! tenants hammers a real [`Service`] in rounds, and every invariant
//! violation is *reported*, not panicked, so the harness doubles as a
//! library (`tests/service_chaos.rs`) and an executable soak
//! (`examples/service_soak.rs`).
//!
//! Determinism comes from structure, not luck: the virtual millisecond
//! clock is scripted (`round * 100`), each round drains every ticket
//! before the next begins, and queue-full shedding is measured with
//! dispatch paused — so admission decisions and outcome counts replay
//! bit-identically under any `SKILLTAX_THREADS` setting.
//!
//! Invariants checked:
//!
//! * no panic, no deadlock (a stuck ticket is a reported violation);
//! * queue depth never exceeds its bound;
//! * every admitted job reaches a typed terminal outcome;
//! * hostile tenants (oversized, deadline-violating, fault-storming,
//!   flooding) get *typed* refusals or typed degraded outcomes, never
//!   collateral damage on the steady tenant;
//! * deadline cancellation is bit-identical across the dense, event and
//!   sharded schedulers.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::proto::{JobKind, JobOutcome, JobRequest, Rejection, Scheduler};
use crate::quota::QuotaConfig;
use crate::service::{JobTicket, Service, ServiceConfig};

/// Chaos-soak parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the scripted tenant mix.
    pub seed: u64,
    /// Rounds to run (each round submits, then drains).
    pub rounds: usize,
    /// Worker threads (`0` = the `SKILLTAX_THREADS` default).
    pub workers: usize,
    /// Bounded queue depth under test.
    pub queue_capacity: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC0FFEE,
            rounds: 6,
            workers: 0,
            queue_capacity: 16,
        }
    }
}

/// What the soak observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Requests offered.
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Typed refusals by kind.
    pub rejections: BTreeMap<&'static str, u64>,
    /// Typed terminal outcomes by label.
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Per-tenant `(admitted, finished)`.
    pub per_tenant: BTreeMap<String, (u64, u64)>,
    /// Per-tenant terminal-outcome counts by label.
    pub per_tenant_outcomes: BTreeMap<String, BTreeMap<&'static str, u64>>,
    /// Deepest the queue ever got.
    pub peak_depth: usize,
    /// Invariant violations (empty = the soak passed).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        let outcomes: Vec<String> = self
            .outcomes
            .iter()
            .map(|(label, count)| format!("{label}={count}"))
            .collect();
        let rejections: Vec<String> = self
            .rejections
            .iter()
            .map(|(label, count)| format!("{label}={count}"))
            .collect();
        format!(
            "rounds={} submitted={} admitted={} peak_depth={} outcomes[{}] rejections[{}] \
             violations={}",
            self.rounds,
            self.submitted,
            self.admitted,
            self.peak_depth,
            outcomes.join(" "),
            rejections.join(" "),
            self.violations.len()
        )
    }
}

fn rejection_label(rejection: &Rejection) -> &'static str {
    match rejection {
        Rejection::QueueFull { .. } => "queue-full",
        Rejection::QuotaExhausted { .. } => "quota-exhausted",
        Rejection::Oversized { .. } => "oversized",
        Rejection::Malformed(_) => "malformed",
        Rejection::ShuttingDown => "shutting-down",
    }
}

/// Deterministic split-mix style stream over (seed, round, lane).
fn mix(seed: u64, round: u64, lane: u64) -> u64 {
    let mut x =
        seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ lane.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn simulate(tenant: &str, cores: usize, iters: i64) -> JobRequest {
    JobRequest {
        tenant: tenant.into(),
        kind: JobKind::Simulate {
            cores,
            iters,
            scheduler: Scheduler::Event,
            fault_seed: None,
        },
        deadline_cycles: None,
    }
}

struct Soak {
    service: Service,
    report: ChaosReport,
    /// Tickets of the current round with the tenant and a tag for
    /// outcome expectations.
    pending: Vec<(String, &'static str, JobTicket)>,
}

impl Soak {
    fn offer(&mut self, now_ms: u64, expect: &'static str, request: JobRequest) {
        let tenant = request.tenant.clone();
        self.report.submitted += 1;
        match self.service.submit(now_ms, request) {
            Ok(ticket) => {
                self.report.admitted += 1;
                self.report.per_tenant.entry(tenant.clone()).or_default().0 += 1;
                self.pending.push((tenant, expect, ticket));
            }
            Err(rejection) => {
                *self
                    .report
                    .rejections
                    .entry(rejection_label(&rejection))
                    .or_insert(0) += 1;
            }
        }
    }

    /// Drain every pending ticket; a ticket that does not resolve within
    /// the bound is the no-deadlock invariant failing.
    fn drain(&mut self) {
        for (tenant, expect, ticket) in self.pending.drain(..) {
            let Some(outcome) = ticket.wait_timeout(Duration::from_secs(60)) else {
                self.report
                    .violations
                    .push(format!("job {} for {tenant} never resolved", ticket.id()));
                continue;
            };
            let label = outcome.label();
            *self.report.outcomes.entry(label).or_insert(0) += 1;
            self.report.per_tenant.entry(tenant.clone()).or_default().1 += 1;
            *self
                .report
                .per_tenant_outcomes
                .entry(tenant.clone())
                .or_default()
                .entry(label)
                .or_insert(0) += 1;
            let ok = match expect {
                "any" => true,
                "complete" => label == "completed",
                "cancel" => label == "cancelled",
                // Fault storms may complete clean, degrade, or exhaust
                // the retry tier — but must never trip the watchdog.
                "storm" => label != "timed-out",
                other => unreachable!("unknown expectation {other}"),
            };
            if !ok {
                self.report.violations.push(format!(
                    "{tenant} expected {expect}, got {label}: {outcome:?}"
                ));
            }
        }
    }
}

/// Run the soak and report.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    let service = Service::start(ServiceConfig {
        queue_capacity: config.queue_capacity,
        workers: if config.workers == 0 {
            skilltax_machine::configured_threads()
        } else {
            config.workers
        },
        // A generous bucket: quota pressure comes from the flood phases,
        // not from the steady cast.
        quota: QuotaConfig {
            capacity: 64,
            refill_num: 1,
            refill_den: 1,
        },
        ..ServiceConfig::default()
    });
    let mut soak = Soak {
        service,
        report: ChaosReport::default(),
        pending: Vec::new(),
    };
    for round in 0..config.rounds {
        let now_ms = round as u64 * 100;
        let roll = |lane: u64| mix(config.seed, round as u64, lane);

        // The steady tenant: a classify and a small pooled simulate.
        soak.offer(
            now_ms,
            "complete",
            JobRequest {
                tenant: "steady".into(),
                kind: JobKind::Classify {
                    name: "SIMD".into(),
                    row: "1 | 16 | none | none | 1-n | none | none".into(),
                },
                deadline_cycles: None,
            },
        );
        soak.offer(
            now_ms,
            "complete",
            simulate("steady", 1, 20 + (roll(0) % 40) as i64),
        );

        // The oversized tenant: always refused at the front door.
        soak.offer(now_ms, "any", simulate("greedy", 100_000, 10));

        // The deadline tenant: work that cannot finish inside its
        // deadline — cancelled with partial stats, never a watchdog.
        soak.offer(now_ms, "cancel", {
            let mut r = simulate("deadline", 4, 1_000_000);
            r.deadline_cycles = Some(10 + roll(1) % 40);
            r
        });

        // The fault-storm tenant: seeded stalls, dead DPs and link
        // outages through the retry and degradation tiers.
        soak.offer(now_ms, "storm", {
            let mut r = simulate("storm", 4, 30 + (roll(2) % 30) as i64);
            if let JobKind::Simulate { fault_seed, .. } = &mut r.kind {
                *fault_seed = Some(roll(3) % 64);
            }
            r
        });

        // The cast drains before any flood so queue depth is zero at a
        // known point regardless of worker count.
        soak.drain();

        // The bursty tenant: a paused-dispatch flood every third round
        // makes queue-full shedding exact — the queue is empty and
        // dispatch frozen, so exactly `burst - capacity` submissions
        // shed, independent of `SKILLTAX_THREADS`.
        if round % 3 == 2 {
            soak.service.pause();
            let burst = config.queue_capacity + 4;
            for i in 0..burst {
                soak.offer(now_ms, "complete", simulate("bursty", 1, 10 + i as i64));
            }
            let depth_now = soak.service.metrics().peak_depth;
            if depth_now > config.queue_capacity {
                soak.report.violations.push(format!(
                    "queue depth {depth_now} exceeded capacity {}",
                    config.queue_capacity
                ));
            }
            soak.service.resume();
            soak.drain();
        }
    }

    // Scheduler-identity probe: the same deadline job must cancel at the
    // same cycle with bit-identical partial stats under all schedulers.
    let mut probes = Vec::new();
    for scheduler in [Scheduler::Dense, Scheduler::Event, Scheduler::Sharded(2)] {
        let request = JobRequest {
            tenant: "probe".into(),
            kind: JobKind::Simulate {
                cores: 4,
                iters: 1_000_000,
                scheduler,
                fault_seed: None,
            },
            deadline_cycles: Some(25),
        };
        soak.report.submitted += 1;
        match soak.service.submit(config.rounds as u64 * 100, request) {
            Ok(ticket) => {
                soak.report.admitted += 1;
                probes.push(ticket.wait_timeout(Duration::from_secs(60)));
            }
            Err(rejection) => soak
                .report
                .violations
                .push(format!("identity probe rejected: {rejection}")),
        }
    }
    for outcome in &probes {
        match outcome {
            Some(JobOutcome::Cancelled { at_cycle: 25, .. }) => {}
            other => soak.report.violations.push(format!(
                "identity probe: expected Cancelled at 25, got {other:?}"
            )),
        }
        if outcome != &probes[0] {
            soak.report
                .violations
                .push("deadline outcomes diverged across schedulers".into());
        }
    }

    soak.service.shutdown();
    let metrics = soak.service.metrics();
    soak.report.rounds = config.rounds;
    soak.report.peak_depth = metrics.peak_depth;
    if metrics.peak_depth > config.queue_capacity {
        soak.report.violations.push(format!(
            "service peak depth {} exceeded capacity {}",
            metrics.peak_depth, config.queue_capacity
        ));
    }
    let unfinished = metrics.admitted.saturating_sub(metrics.finished());
    if unfinished > 0 {
        soak.report
            .violations
            .push(format!("{unfinished} admitted jobs never finished"));
    }
    // Fairness floor: the steady tenant's admitted work all finished.
    if let Some(&(admitted, finished)) = soak.report.per_tenant.get("steady") {
        if admitted != finished {
            soak.report.violations.push(format!(
                "steady tenant lost work: admitted {admitted}, finished {finished}"
            ));
        }
    }
    soak.report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_soak_passes_its_invariants() {
        let report = run_chaos(&ChaosConfig {
            rounds: 3,
            ..ChaosConfig::default()
        });
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.admitted > 0);
        assert!(report.rejections.contains_key("oversized"));
        assert!(report.rejections.contains_key("queue-full"));
    }
}

//! Bounded machine-instance pooling.
//!
//! Building a machine allocates (register file, memory banks); a service
//! that builds one per request pays that on every job.  The pool keeps
//! reset-and-reuse [`UniProcessor`] instances so the steady-state
//! request path performs **zero heap allocations**: checkout pops a
//! warm machine, the request token is installed by cloning an `Arc`
//! (a refcount bump, not an allocation), [`UniProcessor::reset`] scrubs
//! state without reallocating, and check-in restores the machine's own
//! house token the same way.  `tests/pool_alloc.rs` pins this with a
//! counting allocator, mirroring the machine crate's `shard_alloc`
//! suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use skilltax_machine::uniprocessor::UniProcessor;
use skilltax_machine::CancelToken;

/// A pooled machine plus its house token, so check-in can restore a
/// token that no past tenant holds a handle to.
struct PooledUni {
    machine: UniProcessor,
    house: CancelToken,
}

/// A bounded pool of reset-and-reuse uni-processors.
pub struct UniPool {
    slots: Mutex<Vec<PooledUni>>,
    mem_words: usize,
    capacity: usize,
    cold_builds: AtomicU64,
}

impl std::fmt::Debug for UniPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniPool")
            .field("capacity", &self.capacity)
            .field("mem_words", &self.mem_words)
            .field("cold_builds", &self.cold_builds.load(Ordering::Relaxed))
            .finish()
    }
}

impl UniPool {
    /// An empty pool holding at most `capacity` idle machines, each with
    /// `mem_words` of data memory.
    pub fn new(capacity: usize, mem_words: usize) -> UniPool {
        UniPool {
            slots: Mutex::new(Vec::with_capacity(capacity)),
            mem_words,
            capacity,
            cold_builds: AtomicU64::new(0),
        }
    }

    /// Fill the pool with `n` machines up front so the first requests
    /// already hit the warm path.
    pub fn prewarm(&self, n: usize) {
        let mut slots = self.slots.lock().expect("pool lock poisoned");
        while slots.len() < n.min(self.capacity) {
            slots.push(self.build());
        }
    }

    /// Machines built because the pool was empty at checkout (cold
    /// starts; the steady state adds none).
    pub fn cold_builds(&self) -> u64 {
        self.cold_builds.load(Ordering::Relaxed)
    }

    /// Idle machines currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.slots.lock().expect("pool lock poisoned").len()
    }

    fn build(&self) -> PooledUni {
        let house = CancelToken::new();
        PooledUni {
            machine: UniProcessor::new(self.mem_words).with_cancel(house.clone()),
            house,
        }
    }

    /// Run `work` on a pooled machine configured with the request's
    /// watchdog budget and cancellation token, then scrub and return the
    /// machine to the pool.  Steady state (warm pool) allocates nothing.
    pub fn run<R>(
        &self,
        cycle_limit: u64,
        cancel: CancelToken,
        work: impl FnOnce(&mut UniProcessor) -> R,
    ) -> R {
        let slot = self.slots.lock().expect("pool lock poisoned").pop();
        let PooledUni { machine, house } = slot.unwrap_or_else(|| {
            self.cold_builds.fetch_add(1, Ordering::Relaxed);
            self.build()
        });
        // Builder calls move the machine; `cancel` is an Arc clone from
        // the caller, so none of this touches the heap.
        let mut machine = machine.with_cycle_limit(cycle_limit).with_cancel(cancel);
        let result = work(&mut machine);
        machine.reset();
        let machine = machine.with_cancel(house.clone());
        let mut slots = self.slots.lock().expect("pool lock poisoned");
        if slots.len() < self.capacity {
            slots.push(PooledUni { machine, house });
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skilltax_machine::{Assembler, Instr, Word};

    fn spin(iters: Word) -> skilltax_machine::Program {
        let mut asm = Assembler::new();
        asm.movi(0, 0).movi(1, iters);
        asm.label("loop").unwrap();
        asm.emit(Instr::AddI(0, 0, 1));
        asm.blt(0, 1, "loop");
        asm.emit(Instr::Halt);
        asm.assemble().unwrap()
    }

    #[test]
    fn checkout_reuses_a_warm_machine() {
        let pool = UniPool::new(2, 16);
        pool.prewarm(1);
        assert_eq!(pool.idle(), 1);
        let program = spin(10);
        for _ in 0..5 {
            let stats = pool
                .run(1_000, CancelToken::new(), |m| m.run(&program))
                .unwrap();
            assert!(stats.cycles > 10);
        }
        assert_eq!(pool.cold_builds(), 0, "warm pool never builds");
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn empty_pool_cold_builds_and_parks_up_to_capacity() {
        let pool = UniPool::new(1, 16);
        let program = spin(5);
        pool.run(1_000, CancelToken::new(), |m| m.run(&program).unwrap());
        assert_eq!(pool.cold_builds(), 1);
        assert_eq!(pool.idle(), 1, "machine parked after use");
        pool.run(1_000, CancelToken::new(), |m| m.run(&program).unwrap());
        assert_eq!(pool.cold_builds(), 1, "second run reused the park");
    }

    #[test]
    fn state_never_leaks_between_checkouts() {
        let pool = UniPool::new(1, 16);
        let program = spin(10);
        pool.run(1_000, CancelToken::new(), |m| {
            m.run(&program).unwrap();
            assert_eq!(m.reg(0), 10);
        });
        pool.run(1_000, CancelToken::new(), |m| {
            assert_eq!(m.reg(0), 0, "register file leaked between tenants");
        });
    }

    #[test]
    fn a_cancelled_checkout_does_not_poison_the_next() {
        let pool = UniPool::new(1, 16);
        let token = CancelToken::new();
        token.cancel();
        let program = spin(10);
        assert!(pool.run(1_000, token, |m| m.run(&program)).is_err());
        // The raised flag belonged to the request token, not the pool.
        let stats = pool
            .run(1_000, CancelToken::new(), |m| m.run(&program))
            .unwrap();
        assert!(stats.cycles > 10);
    }
}

//! The execution engine: maps an admitted [`JobRequest`] onto the
//! model / taxonomy / estimate / machine crates and always produces a
//! typed [`JobOutcome`].
//!
//! Three resilience tiers compose here (DESIGN.md §11):
//!
//! 1. the *run* itself, cancellation-aware and watchdog-bounded at every
//!    machine loop;
//! 2. a *whole-job retry* tier using the machine crate's [`RetryState`]
//!    bounded exponential backoff — each attempt re-runs the trial with
//!    a larger in-run retry budget, so transient fault storms that
//!    exhaust one attempt can clear on the next;
//! 3. *graceful degradation* inside `run_resilient`, which remaps work
//!    off failed components where the taxonomy says a crossbar exists.
//!
//! Single-core simulations run on pooled machines (zero steady-state
//! allocations — see [`UniPool`]); multi-core machines are built per
//! request, the documented cold tier.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use skilltax_estimate::{estimate_area, estimate_config_bits, CostParams};
use skilltax_machine::array::ArraySubtype;
use skilltax_machine::fault::{FaultPlan, LinkOutage, RetryState};
use skilltax_machine::fleet::{
    array_chunked_outcomes, run_array_fleet_chunked, LaneKernels, UniFleet,
};
use skilltax_machine::multi::{MultiMachine, MultiSubtype};
use skilltax_machine::{
    Assembler, CancelToken, Instr, MachineError, NullTracer, Phase, Profiled, Program, SpanProfile,
    Stats, Telemetry, Tracer, Word,
};
use skilltax_model::dsl::parse_row;
use skilltax_taxonomy::classify;

use crate::pool::UniPool;
use crate::proto::{JobKind, JobOutcome, JobRequest, RequestLimits, Scheduler};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The hard caps requests were validated against (the watchdog
    /// budget for simulate jobs is `limits.max_cycles`).
    pub limits: RequestLimits,
    /// Data-memory words per pooled uni-processor.
    pub mem_words: usize,
    /// Idle machines the pool may park.
    pub pool_capacity: usize,
    /// Whole-job retry budget for transient faults (tier 2).
    pub max_job_retries: u32,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            limits: RequestLimits::default(),
            mem_words: 64,
            pool_capacity: 8,
            max_job_retries: 4,
        }
    }
}

/// The stateless-per-request execution engine (the pool and program
/// cache are shared, warm state).
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    pool: UniPool,
    /// Spin programs keyed by iteration count: the steady state hands
    /// out `Arc` clones, so repeat requests assemble nothing.
    programs: Mutex<HashMap<i64, Arc<Program>>>,
}

/// Count to `iters` and halt — the service's canonical spin workload.
fn spin_program(iters: Word) -> Program {
    let mut asm = Assembler::new();
    asm.movi(0, 0).movi(1, iters);
    asm.label("loop").unwrap();
    asm.emit(Instr::AddI(0, 0, 1));
    asm.blt(0, 1, "loop");
    asm.emit(Instr::Halt);
    asm.assemble().unwrap()
}

/// Backward ring-shift programs (core `i > 0` sends to `i - 1`): the
/// message traffic gives link outages something to break.
fn ring_programs(cores: usize) -> Vec<Program> {
    (0..cores)
        .map(|i| {
            let mut asm = Assembler::new();
            if i + 1 == cores {
                asm.movi(0, 100 + i as Word).emit(Instr::Send(i - 1, 0));
            } else if i == 0 {
                asm.emit(Instr::Recv(5, 1));
            } else {
                asm.movi(0, 100 + i as Word)
                    .emit(Instr::Send(i - 1, 0))
                    .emit(Instr::Recv(5, i + 1));
            }
            asm.emit(Instr::Halt);
            asm.assemble().expect("ring program assembles")
        })
        .collect()
}

fn add_stats(acc: &mut Stats, s: &Stats) {
    acc.cycles += s.cycles;
    acc.instructions += s.instructions;
    acc.alu_ops += s.alu_ops;
    acc.mem_reads += s.mem_reads;
    acc.mem_writes += s.mem_writes;
    acc.messages += s.messages;
    acc.stalls += s.stalls;
}

/// What [`Engine::execute_profiled`] captured alongside the outcome: the
/// machine-layer span tree (cycle domain, sealed) plus the trace-channel
/// loss counter, so the service can graft the run into a job timeline
/// and surface drops in its metrics.
#[derive(Debug, Clone, Default)]
pub struct RunCapture {
    /// The sealed span profile of the run (empty for classify/estimate
    /// jobs, which never touch a machine loop).
    pub profile: SpanProfile,
    /// Events the bounded telemetry ring evicted during the run.
    pub events_dropped: u64,
}

/// Is this error worth a whole-job retry under a reseeded environment?
fn is_transient(error: &MachineError) -> bool {
    matches!(
        error,
        MachineError::RetryExhausted { .. } | MachineError::LinkDown { .. }
    )
}

impl Engine {
    /// An engine with a cold pool under `config`.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            pool: UniPool::new(config.pool_capacity, config.mem_words),
            config,
            programs: Mutex::new(HashMap::new()),
        }
    }

    /// The machine pool (exposed for warm-up and allocation tests).
    pub fn pool(&self) -> &UniPool {
        &self.pool
    }

    /// The spin program for `iters`, cached so the steady state is an
    /// `Arc` clone (no assembly, no allocation).
    fn spin(&self, iters: i64) -> Arc<Program> {
        let mut cache = self.programs.lock().expect("program cache poisoned");
        cache
            .entry(iters)
            .or_insert_with(|| Arc::new(spin_program(iters)))
            .clone()
    }

    /// The effective cancellation token for a request: the job token,
    /// with the request deadline folded in.
    fn request_token(&self, cancel: &CancelToken, deadline: Option<u64>) -> CancelToken {
        match deadline {
            Some(d) => cancel.clone().with_deadline(d),
            None => cancel.clone(),
        }
    }

    /// Execute an admitted request to its typed terminal outcome.
    /// `cancel` is the job's token: raising its flag (client disconnect,
    /// shutdown) stops the run promptly with a `Cancelled` outcome.
    pub fn execute(&self, request: &JobRequest, cancel: &CancelToken) -> JobOutcome {
        let token = self.request_token(cancel, request.deadline_cycles);
        match &request.kind {
            JobKind::Classify { name, row } => Self::classify_job(name, row),
            JobKind::Estimate { name, row } => Self::estimate_job(name, row),
            JobKind::Simulate {
                cores,
                iters,
                scheduler,
                fault_seed,
            } => match fault_seed {
                Some(seed) if *cores >= 2 => {
                    self.faulted_simulate(*cores, *iters, *scheduler, *seed, &token)
                }
                // Fault plans live on the multi-core fabric; a 1-core
                // request with a seed runs the plain pooled path.
                _ => self.plain_simulate(*cores, *iters, *scheduler, &token),
            },
            JobKind::Sweep { cores, iters } => self.sweep(cores, *iters, &token),
            JobKind::FaultSweep {
                subtype,
                lanes,
                seeds,
                seed0,
                stall_ppm,
                flip_ppm,
            } => self.fault_sweep(
                *subtype, *lanes, *seeds, *seed0, *stall_ppm, *flip_ppm, &token,
            ),
        }
    }

    /// [`Engine::execute`] with span profiling: the same typed outcome,
    /// plus a sealed cycle-domain [`SpanProfile`] of the machine run and
    /// the telemetry ring's drop count.  Events and counters still flow
    /// (into a job-local [`Telemetry`]), so profiled jobs observe the
    /// identical machine behaviour — the profile rides the same tracer.
    pub fn execute_profiled(
        &self,
        request: &JobRequest,
        cancel: &CancelToken,
    ) -> (JobOutcome, RunCapture) {
        let token = self.request_token(cancel, request.deadline_cycles);
        let mut t = Profiled::new(Telemetry::new());
        let outcome = match &request.kind {
            JobKind::Classify { name, row } => Self::classify_job(name, row),
            JobKind::Estimate { name, row } => Self::estimate_job(name, row),
            JobKind::Simulate {
                cores,
                iters,
                scheduler,
                fault_seed,
            } => match fault_seed {
                Some(seed) if *cores >= 2 => {
                    self.faulted_simulate_traced(*cores, *iters, *scheduler, *seed, &token, &mut t)
                }
                _ => self.plain_simulate_traced(*cores, *iters, *scheduler, &token, &mut t),
            },
            JobKind::Sweep { cores, iters } => self.sweep_traced(cores, *iters, &token, &mut t),
            // Fault sweeps always run fleet-batched; the lockstep cohort
            // loop has no per-instance tracer hooks, so a profiled fault
            // sweep reports the same typed outcome with an empty machine
            // span tree.
            JobKind::FaultSweep {
                subtype,
                lanes,
                seeds,
                seed0,
                stall_ppm,
                flip_ppm,
            } => self.fault_sweep(
                *subtype, *lanes, *seeds, *seed0, *stall_ppm, *flip_ppm, &token,
            ),
        };
        t.profile.seal();
        (
            outcome,
            RunCapture {
                events_dropped: t.inner.trace.dropped(),
                profile: t.profile,
            },
        )
    }

    fn classify_job(name: &str, row: &str) -> JobOutcome {
        let spec = match parse_row(name, row) {
            Ok(spec) => spec,
            Err(e) => {
                return JobOutcome::Failed {
                    error: e.to_string(),
                    retries: 0,
                }
            }
        };
        match classify(&spec) {
            Ok(c) => JobOutcome::Completed {
                summary: format!("{name}: class {} (serial {})", c.name(), c.serial()),
                stats: None,
            },
            Err(e) => JobOutcome::Failed {
                error: e.to_string(),
                retries: 0,
            },
        }
    }

    fn estimate_job(name: &str, row: &str) -> JobOutcome {
        let spec = match parse_row(name, row) {
            Ok(spec) => spec,
            Err(e) => {
                return JobOutcome::Failed {
                    error: e.to_string(),
                    retries: 0,
                }
            }
        };
        let params = CostParams::default();
        let area = estimate_area(&spec, &params);
        let bits = estimate_config_bits(&spec, &params);
        JobOutcome::Completed {
            summary: format!(
                "{name}: area={:.0}, config_bits={}",
                area.total(),
                bits.total()
            ),
            stats: None,
        }
    }

    fn build_multi(&self, cores: usize, subtype: u8, scheduler: Scheduler) -> MultiMachine {
        let m = MultiMachine::new(
            MultiSubtype::from_index(subtype).expect("engine subtypes are valid"),
            cores,
            self.config.mem_words,
        )
        .with_cycle_limit(self.config.limits.max_cycles);
        match scheduler {
            Scheduler::Dense => m.with_dense_reference(true),
            Scheduler::Event => m,
            Scheduler::Sharded(n) => m.with_shards(n),
        }
    }

    fn plain_simulate(
        &self,
        cores: usize,
        iters: i64,
        scheduler: Scheduler,
        token: &CancelToken,
    ) -> JobOutcome {
        self.plain_simulate_traced(cores, iters, scheduler, token, &mut NullTracer)
    }

    fn plain_simulate_traced<T: Tracer>(
        &self,
        cores: usize,
        iters: i64,
        scheduler: Scheduler,
        token: &CancelToken,
        tracer: &mut T,
    ) -> JobOutcome {
        let program = self.spin(iters);
        if cores <= 1 {
            let result = self
                .pool
                .run(self.config.limits.max_cycles, token.clone(), |m| {
                    m.run_traced(&program, tracer)
                });
            return match result {
                Ok(stats) => JobOutcome::Completed {
                    // `String::new` allocates nothing; clients read stats.
                    summary: String::new(),
                    stats: Some(stats),
                },
                Err(e) => JobOutcome::from_error(e, 0),
            };
        }
        let mut m = self
            .build_multi(cores, 1, scheduler)
            .with_cancel(token.clone());
        let programs = vec![(*program).clone(); cores];
        match m.run_traced(&programs, tracer) {
            Ok(stats) => JobOutcome::Completed {
                summary: String::new(),
                stats: Some(stats),
            },
            Err(e) => JobOutcome::from_error(e, 0),
        }
    }

    /// One fault trial: the workload, plan, and machine sub-type for a
    /// given seed and whole-job attempt number.  Reseeding by attempt
    /// models a transient environment; the in-run retry budget grows
    /// with the attempt so tier 2 genuinely escalates.
    fn fault_trial(
        &self,
        seed: u64,
        cores: usize,
        iters: i64,
        attempt: u32,
    ) -> (Vec<Program>, FaultPlan, u8) {
        let attempt_seed = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match seed % 3 {
            // A stall storm on a plain shared-nothing multi.
            0 => {
                let rate = 0.1 + 0.2 * ((seed / 3) % 4) as f64;
                let plan = FaultPlan::seeded(attempt_seed).stall_dps(rate);
                (vec![(*self.spin(iters)).clone(); cores], plan, 1)
            }
            // A dead DP on an IP–DP-crossbar machine: degradation remaps
            // the work and the job completes `Degraded`.
            1 => {
                let plan = FaultPlan::seeded(attempt_seed)
                    .stall_dps(0.1)
                    .fail_dp((seed / 3) as usize % cores);
                (vec![(*self.spin(iters)).clone(); cores], plan, 10)
            }
            // A link outage under ring traffic on a DP–DP machine: the
            // in-run backoff must outlast the outage, so early attempts
            // can exhaust (`RetryExhausted`) and later ones clear.
            _ => {
                let outage_until = 4 + seed % 32;
                let plan = FaultPlan::seeded(attempt_seed)
                    .fail_link(LinkOutage {
                        from: 1,
                        to: 0,
                        from_cycle: 0,
                        until_cycle: outage_until,
                    })
                    .with_max_retries(1 + 2 * attempt);
                (ring_programs(cores), plan, 2)
            }
        }
    }

    fn faulted_simulate(
        &self,
        cores: usize,
        iters: i64,
        scheduler: Scheduler,
        seed: u64,
        token: &CancelToken,
    ) -> JobOutcome {
        self.faulted_simulate_traced(cores, iters, scheduler, seed, token, &mut NullTracer)
    }

    fn faulted_simulate_traced<T: Tracer>(
        &self,
        cores: usize,
        iters: i64,
        scheduler: Scheduler,
        seed: u64,
        token: &CancelToken,
        tracer: &mut T,
    ) -> JobOutcome {
        let mut retry = RetryState::default();
        loop {
            let (programs, plan, subtype) = self.fault_trial(seed, cores, iters, retry.attempts);
            let mut m = self
                .build_multi(cores, subtype, scheduler)
                .with_cancel(token.clone());
            match m.run_resilient_traced(&programs, plan, tracer) {
                Ok(out) => {
                    return if out.degraded || out.faults_injected > 0 {
                        JobOutcome::Degraded {
                            stats: out.stats,
                            faults_injected: out.faults_injected,
                            retries: retry.attempts,
                        }
                    } else {
                        JobOutcome::Completed {
                            summary: String::new(),
                            stats: Some(out.stats),
                        }
                    };
                }
                Err(e) if is_transient(&e) => {
                    // Tier 2: bounded backoff, then a fresh attempt.  The
                    // delay is in simulated cycles — the service does not
                    // sleep, the bound is what matters.
                    if retry
                        .back_off(0, 0, 0, self.config.max_job_retries)
                        .is_err()
                    {
                        return JobOutcome::from_error(e, retry.attempts);
                    }
                    // A whole-job retry is a profile instant between runs.
                    tracer.span_mark(0, Phase::Retry);
                }
                Err(e) => return JobOutcome::from_error(e, retry.attempts),
            }
        }
    }

    fn sweep(&self, cores: &[usize], iters: i64, token: &CancelToken) -> JobOutcome {
        self.sweep_traced(cores, iters, token, &mut NullTracer)
    }

    /// Each sweep point runs as its own sequential root span in the
    /// profile, so the exported timeline shows the points end to end.
    fn sweep_traced<T: Tracer>(
        &self,
        cores: &[usize],
        iters: i64,
        token: &CancelToken,
        tracer: &mut T,
    ) -> JobOutcome {
        // Fleet fast path (DESIGN.md §14): when every point is a
        // single-core run, the sweep is N instances of the same uni
        // architecture — exactly the structure-of-arrays shape, so one
        // decode drives all points and per-point stats stay bit-identical
        // to the pooled sequential runs.  Profiled sweeps keep the
        // sequential path so the span timeline still shows one root span
        // per point.
        if cores.len() >= 2 && cores.iter().all(|&c| c <= 1) && !tracer.enabled() {
            return self.sweep_fleet(cores, iters, token);
        }
        let mut total = Stats::default();
        let mut points = String::new();
        for &c in cores {
            let outcome = self.plain_simulate_traced(c, iters, Scheduler::Event, token, tracer);
            match outcome {
                JobOutcome::Completed {
                    stats: Some(stats), ..
                } => {
                    if !points.is_empty() {
                        points.push(' ');
                    }
                    points.push_str(&format!("{c}:{}", stats.cycles));
                    add_stats(&mut total, &stats);
                }
                // The first point that does not complete ends the sweep
                // with that point's typed outcome.
                other => return other,
            }
        }
        JobOutcome::Completed {
            summary: points,
            stats: Some(total),
        }
    }

    /// All-single-core sweeps as one [`UniFleet`] run: same watchdog
    /// budget, cancellation token and per-point outcome semantics as the
    /// sequential loop (the first point that does not complete ends the
    /// sweep with that point's typed outcome).
    fn sweep_fleet(&self, cores: &[usize], iters: i64, token: &CancelToken) -> JobOutcome {
        let program = self.spin(iters);
        let mut fleet = UniFleet::new(cores.len(), self.config.mem_words)
            .with_cycle_limit(self.config.limits.max_cycles)
            .with_cancel(token.clone());
        let mut total = Stats::default();
        let mut points = String::new();
        for (&c, result) in cores.iter().zip(fleet.run(&program)) {
            match result {
                Ok(stats) => {
                    if !points.is_empty() {
                        points.push(' ');
                    }
                    points.push_str(&format!("{c}:{}", stats.cycles));
                    add_stats(&mut total, &stats);
                }
                Err(e) => return JobOutcome::from_error(e, 0),
            }
        }
        JobOutcome::Completed {
            summary: points,
            stats: Some(total),
        }
    }

    /// Seeded Monte-Carlo fault study, executed as one chunked
    /// [`ArrayFleet`](skilltax_machine::fleet::ArrayFleet) batch
    /// (DESIGN.md §14): seed `k` is fleet instance `k` running fault
    /// plan `seed0 + k`, and per-seed stats/faults are bit-identical to
    /// per-seed `run_resilient` loops.  The request token — deadline
    /// folded in — threads through to every worker chunk, so client
    /// disconnects and deadlines stop the whole fleet promptly.  The
    /// first seed (in seed order) that does not complete ends the job
    /// with that seed's typed outcome, matching sweep semantics.
    #[allow(clippy::too_many_arguments)]
    fn fault_sweep(
        &self,
        subtype: ArraySubtype,
        lanes: usize,
        seeds: usize,
        seed0: u64,
        stall_ppm: u32,
        flip_ppm: u32,
        token: &CancelToken,
    ) -> JobOutcome {
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 100)
            .emit(Instr::Add(1, 1, 0))
            .emit(Instr::Store(0, 1))
            .emit(Instr::Halt);
        let program = asm.assemble().expect("fault-sweep kernel is well formed");
        let chunks = run_array_fleet_chunked(
            subtype,
            lanes,
            lanes.max(4),
            seeds,
            self.config.limits.max_cycles,
            token,
            &program,
            LaneKernels::default(),
            |_, _, _| {},
            |g| {
                FaultPlan::seeded(seed0.wrapping_add(g as u64))
                    .stall_dps(f64::from(stall_ppm) / 1e6)
                    .flip_memory_bits(f64::from(flip_ppm) / 1e6)
            },
            0,
        );
        let mut total = Stats::default();
        let (mut faults, mut retries, mut degraded) = (0u64, 0u64, 0usize);
        for outcome in array_chunked_outcomes(chunks) {
            match outcome {
                Ok(run) => {
                    add_stats(&mut total, &run.stats);
                    faults += run.faults_injected;
                    retries += run.retries;
                    degraded += usize::from(run.degraded);
                }
                Err(e) => return JobOutcome::from_error(e, 0),
            }
        }
        JobOutcome::Completed {
            summary: format!(
                "faultsweep {}x{lanes}: {seeds} seeds, {faults} faults injected, \
                 {retries} retries, {degraded} degraded",
                subtype.class_name()
            ),
            stats: Some(total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    fn request(kind: JobKind, deadline: Option<u64>) -> JobRequest {
        JobRequest {
            tenant: "t".into(),
            kind,
            deadline_cycles: deadline,
        }
    }

    #[test]
    fn classify_and_estimate_complete_with_summaries() {
        let e = engine();
        let token = CancelToken::new();
        let row = "1 | 16 | none | none | 1-n | none | none";
        let out = e.execute(
            &request(
                JobKind::Classify {
                    name: "SIMD".into(),
                    row: row.into(),
                },
                None,
            ),
            &token,
        );
        match &out {
            JobOutcome::Completed { summary, stats } => {
                assert!(summary.contains("class"), "summary {summary:?}");
                assert!(stats.is_none());
            }
            other => panic!("classify: {other:?}"),
        }
        let out = e.execute(
            &request(
                JobKind::Estimate {
                    name: "SIMD".into(),
                    row: row.into(),
                },
                None,
            ),
            &token,
        );
        match &out {
            JobOutcome::Completed { summary, .. } => {
                assert!(summary.contains("area="), "summary {summary:?}");
            }
            other => panic!("estimate: {other:?}"),
        }
    }

    #[test]
    fn bad_rows_fail_with_a_typed_error() {
        let out = engine().execute(
            &request(
                JobKind::Classify {
                    name: "x".into(),
                    row: "not a row".into(),
                },
                None,
            ),
            &CancelToken::new(),
        );
        assert!(matches!(out, JobOutcome::Failed { retries: 0, .. }));
    }

    #[test]
    fn pooled_simulate_completes_with_stats() {
        let e = engine();
        let out = e.execute(
            &request(
                JobKind::Simulate {
                    cores: 1,
                    iters: 50,
                    scheduler: Scheduler::Event,
                    fault_seed: None,
                },
                None,
            ),
            &CancelToken::new(),
        );
        match out {
            JobOutcome::Completed {
                stats: Some(stats), ..
            } => assert!(stats.cycles > 50),
            other => panic!("{other:?}"),
        }
        assert_eq!(e.pool().idle(), 1, "machine returned to the pool");
    }

    #[test]
    fn deadline_cancels_a_simulate_deterministically() {
        let e = engine();
        let run = || {
            e.execute(
                &request(
                    JobKind::Simulate {
                        cores: 4,
                        iters: 1_000_000,
                        scheduler: Scheduler::Event,
                        fault_seed: None,
                    },
                    Some(25),
                ),
                &CancelToken::new(),
            )
        };
        match run() {
            JobOutcome::Cancelled { at_cycle, partial } => {
                assert_eq!(at_cycle, 25);
                assert_eq!(partial.cycles, 25);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(run(), run(), "deadline outcomes replay bit-identically");
    }

    #[test]
    fn scheduler_choices_agree_on_the_answer() {
        let e = engine();
        let run = |s: Scheduler| {
            e.execute(
                &request(
                    JobKind::Simulate {
                        cores: 4,
                        iters: 100,
                        scheduler: s,
                        fault_seed: None,
                    },
                    None,
                ),
                &CancelToken::new(),
            )
        };
        let dense = run(Scheduler::Dense);
        assert_eq!(dense, run(Scheduler::Event));
        assert_eq!(dense, run(Scheduler::Sharded(2)));
        assert_eq!(dense, run(Scheduler::Sharded(0)));
    }

    #[test]
    fn fault_seeds_reach_typed_outcomes_deterministically() {
        let e = engine();
        for seed in 0..12u64 {
            let run = || {
                e.execute(
                    &request(
                        JobKind::Simulate {
                            cores: 4,
                            iters: 60,
                            scheduler: Scheduler::Event,
                            fault_seed: Some(seed),
                        },
                        None,
                    ),
                    &CancelToken::new(),
                )
            };
            let first = run();
            assert_eq!(first, run(), "seed {seed} not deterministic");
            match seed % 3 {
                1 => assert!(
                    matches!(first, JobOutcome::Degraded { .. }),
                    "seed {seed}: dead DP should degrade, got {first:?}"
                ),
                _ => assert!(
                    !matches!(first, JobOutcome::TimedOut { .. }),
                    "seed {seed}: unexpected watchdog, got {first:?}"
                ),
            }
        }
    }

    #[test]
    fn fleet_sweep_matches_sequential_sweep() {
        // All-single-core sweeps route through the fleet executor only
        // when the tracer is disabled; an enabled tracer keeps the
        // sequential per-point path.  Both must produce the same summary
        // and totals — the service-level face of the §14 identity
        // contract.
        let e = engine();
        let token = CancelToken::new();
        let cores = vec![1usize; 96];
        let fleet = e.sweep_traced(&cores, 75, &token, &mut NullTracer);
        let mut telemetry = Telemetry::new();
        let sequential = e.sweep_traced(&cores, 75, &token, &mut telemetry);
        match (fleet, sequential) {
            (
                JobOutcome::Completed {
                    summary: fs,
                    stats: Some(fstats),
                },
                JobOutcome::Completed {
                    summary: ss,
                    stats: Some(sstats),
                },
            ) => {
                assert_eq!(fs, ss);
                assert_eq!(fstats, sstats);
                assert_eq!(fs.split(' ').count(), 96);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fleet_sweep_honours_deadline_cancellation() {
        let e = engine();
        let out = e.execute(
            &request(
                JobKind::Sweep {
                    cores: vec![1; 8],
                    iters: 1_000_000,
                },
                Some(50),
            ),
            &CancelToken::new(),
        );
        assert!(
            matches!(out, JobOutcome::Cancelled { .. }),
            "expected cancellation, got {out:?}"
        );
    }

    #[test]
    fn fault_sweep_matches_sequential_resilient_runs() {
        use skilltax_machine::array::ArrayMachine;
        let e = engine();
        let out = e.execute(
            &request(
                JobKind::FaultSweep {
                    subtype: ArraySubtype::III,
                    lanes: 4,
                    seeds: 12,
                    seed0: 7,
                    stall_ppm: 250_000,
                    flip_ppm: 100_000,
                },
                None,
            ),
            &CancelToken::new(),
        );
        // Rebuild the identical study as twelve sequential resilient
        // runs — the fleet path must aggregate bit-identical stats.
        let mut asm = Assembler::new();
        asm.emit(Instr::LaneId(0))
            .movi(1, 100)
            .emit(Instr::Add(1, 1, 0))
            .emit(Instr::Store(0, 1))
            .emit(Instr::Halt);
        let program = asm.assemble().unwrap();
        let mut total = Stats::default();
        let mut faults = 0;
        for k in 0..12u64 {
            let mut m = ArrayMachine::new(ArraySubtype::III, 4, 4)
                .with_cycle_limit(RequestLimits::default().max_cycles);
            let run = m
                .run_resilient(
                    &program,
                    FaultPlan::seeded(7 + k)
                        .stall_dps(0.25)
                        .flip_memory_bits(0.1),
                )
                .unwrap();
            add_stats(&mut total, &run.stats);
            faults += run.faults_injected;
        }
        match out {
            JobOutcome::Completed { summary, stats } => {
                assert_eq!(stats, Some(total));
                assert!(
                    summary.contains(&format!("{faults} faults injected")),
                    "{summary}"
                );
            }
            other => panic!("fault sweep should complete: {other:?}"),
        }
    }

    #[test]
    fn fault_sweep_respects_request_deadline() {
        let e = engine();
        let out = e.execute(
            &request(
                JobKind::FaultSweep {
                    subtype: ArraySubtype::I,
                    lanes: 4,
                    seeds: 8,
                    seed0: 1,
                    stall_ppm: 900_000,
                    flip_ppm: 0,
                },
                Some(1),
            ),
            &CancelToken::new(),
        );
        assert!(
            matches!(out, JobOutcome::Cancelled { .. }),
            "deadline must cancel the fleet: {out:?}"
        );
    }

    #[test]
    fn sweep_reports_cycles_per_point() {
        let out = engine().execute(
            &request(
                JobKind::Sweep {
                    cores: vec![1, 2, 4],
                    iters: 40,
                },
                None,
            ),
            &CancelToken::new(),
        );
        match out {
            JobOutcome::Completed {
                summary,
                stats: Some(_),
            } => {
                assert_eq!(summary.split(' ').count(), 3, "summary {summary:?}");
                assert!(summary.starts_with("1:"), "summary {summary:?}");
            }
            other => panic!("{other:?}"),
        }
    }
}
